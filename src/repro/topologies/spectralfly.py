"""Spectralfly (Young et al. 2022): LPS Ramanujan graphs as interconnects.

Spectralfly is not a fixed-diameter family; Fig. 1 only admits design
points whose diameter happens to be ≤ 3.  :func:`spectralfly_design_points`
scans (p, q) pairs, builds the graph, and measures the diameter exactly
(LPS graphs are vertex-transitive, so a single BFS suffices).
"""

from __future__ import annotations

from functools import lru_cache

from repro.analysis.distances import bfs_distances
from repro.fields.primes import primes_up_to
from repro.graphs.lps import lps_graph, lps_order
from repro.store.registry import register_topology
from repro.topologies.base import Topology, uniform_endpoints

__all__ = [
    "spectralfly_topology",
    "spectralfly_design_points",
]


def spectralfly_topology(p_gen: int, q: int, p: int | None = None) -> Topology:
    """Build Spectralfly on the LPS graph ``X^{p_gen, q}`` (radix
    ``p_gen + 1``)."""
    graph = lps_graph(p_gen, q)
    radix = p_gen + 1
    if p is None:
        p = max(1, radix // 3)
    return Topology(
        graph=graph,
        endpoint_router=uniform_endpoints(graph.n, p),
        name="SF",
        groups=None,
        meta={"p_gen": p_gen, "q": q, "p": p},
    )


@lru_cache(maxsize=None)
def spectralfly_design_points(
    max_radix: int,
    max_diameter: int = 3,
    max_order: int = 60_000,
) -> tuple[tuple[int, int, int, int], ...]:
    """All LPS design points ``(radix, order, p_gen, q)`` with diameter
    ≤ ``max_diameter``, largest order per radix.

    ``max_order`` bounds the graphs we are willing to build for the scan;
    beyond it the diameter always exceeds 3 for the radixes of interest
    anyway (order would exceed the Moore bound otherwise).
    """
    best: dict[int, tuple[int, int, int]] = {}
    gens = [p for p in primes_up_to(max_radix - 1) if p > 2]
    qs = [q for q in primes_up_to(200) if q % 4 == 1 and q > 2]
    for p_gen in gens:
        radix = p_gen + 1
        if radix > max_radix:
            continue
        # Moore-bound ceiling for a diameter-3 candidate.
        moore3 = radix**3 - radix**2 + radix + 1
        for q in qs:
            if q == p_gen or not (q * q > 4 * p_gen):
                continue
            order = lps_order(p_gen, q)
            if order > min(max_order, moore3):
                continue
            graph = lps_graph(p_gen, q)
            diam = int(bfs_distances(graph, 0).max())  # vertex-transitive
            if diam <= max_diameter:
                cur = best.get(radix)
                if cur is None or order > cur[0]:
                    best[radix] = (order, p_gen, q)
    return tuple(
        (radix, order, p_gen, q)
        for radix, (order, p_gen, q) in sorted(best.items())
    )


register_topology("spectralfly", spectralfly_topology)
