"""Export topologies to external simulator formats.

* :func:`write_booksim_anynet` — Booksim2 ``anynet`` topology files
  (``router R node N ... router R2 ...`` adjacency lines), so any topology
  built here can be fed to the original cycle-accurate simulator used in
  §9.
* :func:`write_sst_edge_csv` — a flat CSV (src_router, dst_router) plus an
  endpoint map, the form SST/Merlin custom-topology loaders consume.
"""

from __future__ import annotations

from pathlib import Path

from repro.topologies.base import Topology

__all__ = [
    "write_booksim_anynet",
    "write_sst_edge_csv",
    "read_booksim_anynet",
]


def write_booksim_anynet(topology: Topology, path: str | Path) -> None:
    """Write a Booksim2 anynet_file describing this topology.

    Each line: ``router <r> [node <e>]* [router <neighbor>]*``.  Endpoint
    (node) ids follow the topology's endpoint numbering.
    """
    path = Path(path)
    eps_of: dict[int, list[int]] = {}
    for e, r in enumerate(topology.endpoint_router):
        eps_of.setdefault(int(r), []).append(e)

    with path.open("w") as fh:
        for r in range(topology.num_routers):
            parts = [f"router {r}"]
            for e in eps_of.get(r, []):
                parts.append(f"node {e}")
            for v in topology.graph.neighbors(r):
                parts.append(f"router {int(v)}")
            fh.write(" ".join(parts) + "\n")


def write_sst_edge_csv(topology: Topology, links_path: str | Path, endpoints_path: str | Path) -> None:
    """Write (src,dst) link CSV and (endpoint,router) map CSV."""
    links_path, endpoints_path = Path(links_path), Path(endpoints_path)
    with links_path.open("w") as fh:
        fh.write("src_router,dst_router\n")
        for u, v in topology.graph.edges():
            fh.write(f"{u},{v}\n")
    with endpoints_path.open("w") as fh:
        fh.write("endpoint,router\n")
        for e, r in enumerate(topology.endpoint_router):
            fh.write(f"{e},{int(r)}\n")


def read_booksim_anynet(path: str | Path) -> Topology:
    """Parse an anynet file back into a :class:`Topology` (round-trip aid)."""
    import numpy as np

    from repro.graphs.base import Graph

    path = Path(path)
    edges = []
    ep_router: dict[int, int] = {}
    max_router = -1
    for line in path.read_text().splitlines():
        tokens = line.split()
        if not tokens:
            continue
        if tokens[0] != "router":
            raise ValueError(f"bad anynet line: {line!r}")
        r = int(tokens[1])
        max_router = max(max_router, r)
        i = 2
        while i < len(tokens):
            kind, val = tokens[i], int(tokens[i + 1])
            if kind == "node":
                ep_router[val] = r
            elif kind == "router":
                edges.append((min(r, val), max(r, val)))
                max_router = max(max_router, val)
            else:
                raise ValueError(f"bad anynet token {kind!r}")
            i += 2
    n = max_router + 1
    endpoint_router = np.array([ep_router[e] for e in sorted(ep_router)], dtype=np.int64)
    return Topology(
        graph=Graph(n, edges, name=path.stem),
        endpoint_router=endpoint_router,
        name=path.stem,
    )
