"""Three-level Fat-tree, Booksim-style (Leiserson 1985; §9.1).

The Booksim construction for router radix ``2p``: three layers of ``p²``
routers each.  Edge routers host *p* endpoints and link up to every
aggregation router of their pod (pods have *p* edge + *p* aggregation
routers, so there are *p* pods); aggregation router *j* of each pod links
up to the *p* core routers of core group *j*.  Core routers use only *p*
(down) ports — "top layer routers having half the radix".  Capacity:
``p³`` endpoints on ``3p²`` routers.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import Graph
from repro.store.registry import register_topology
from repro.topologies.base import Topology

__all__ = [
    "fattree_topology",
]


def fattree_topology(p: int) -> Topology:
    """Build the 3-level Fat-tree for half-radix *p* (router radix ``2p``)."""
    if p < 1:
        raise ValueError("Fat-tree needs p >= 1")
    pods = p
    n_edge = n_agg = n_core = p * p

    def edge(pod, i):
        return pod * p + i

    def agg(pod, j):
        return n_edge + pod * p + j

    def core(j, m):
        return n_edge + n_agg + j * p + m

    edges = []
    for pod in range(pods):
        for i in range(p):
            for j in range(p):
                edges.append((edge(pod, i), agg(pod, j)))
        for j in range(p):
            for m in range(p):
                edges.append((agg(pod, j), core(j, m)))

    graph = Graph(n_edge + n_agg + n_core, edges, name=f"FatTree(p={p})")
    endpoint_router = np.repeat([edge(pod, i) for pod in range(pods) for i in range(p)], p)
    groups = np.concatenate(
        [
            np.repeat(np.arange(pods), p),  # edge layer: pod id
            np.repeat(np.arange(pods), p),  # agg layer: pod id
            np.full(n_core, pods),  # core: its own group
        ]
    )
    return Topology(
        graph=graph,
        endpoint_router=endpoint_router,
        name="FT",
        groups=groups,
        meta={"p": p, "levels": 3},
    )


register_topology("fattree", fattree_topology)
