"""PolarStar as a deployable topology (PS-IQ / PS-Pal of Table 3)."""

from __future__ import annotations

from repro.core.polarstar import PolarStarConfig, best_config, build_polarstar
from repro.store.registry import register_topology
from repro.topologies.base import Topology, uniform_endpoints

__all__ = [
    "polarstar_topology",
]


def polarstar_topology(
    config: PolarStarConfig | int,
    p: int | None = None,
    kinds: tuple[str, ...] = ("iq", "paley"),
) -> Topology:
    """Build a PolarStar network.

    Parameters
    ----------
    config:
        Either an explicit :class:`PolarStarConfig` or a network radix, in
        which case the largest feasible configuration is chosen.
    p:
        Endpoints per router; defaults to the paper's rule of one third of
        the network radix (¼ of total ports).

    The returned topology carries the supernode id of each router in
    ``groups`` and the star-product factorization in ``meta["star"]`` (the
    analytic router of §9.2 needs it).
    """
    if isinstance(config, int):
        cfg = best_config(config, kinds=kinds)
        if cfg is None:
            raise ValueError(f"no feasible PolarStar at radix {config}")
    else:
        cfg = config
    if p is None:
        p = max(1, cfg.radix // 3)

    sp = build_polarstar(cfg)
    kind = "IQ" if cfg.supernode_kind == "iq" else "Pal"
    return Topology(
        graph=sp.graph,
        endpoint_router=uniform_endpoints(sp.graph.n, p),
        name=f"PS-{kind}",
        groups=sp.supernode_of,
        meta={"config": cfg, "star": sp, "p": p},
    )


def _registered_polarstar(
    q: int | None = None,
    dprime: int | None = None,
    supernode_kind: str | None = None,
    radix: int | None = None,
    p: int | None = None,
) -> Topology:
    """Key-safe registry entry point: explicit ``(q, dprime, supernode_kind)``
    or a ``radix`` budget, all JSON primitives (``PolarStarConfig`` objects
    cannot appear in artifact keys)."""
    if radix is not None:
        if q is not None or dprime is not None or supernode_kind is not None:
            raise ValueError("pass either radix or (q, dprime, supernode_kind)")
        return polarstar_topology(radix, p=p)
    if q is None or dprime is None or supernode_kind is None:
        raise ValueError("polarstar builder needs q, dprime and supernode_kind")
    cfg = PolarStarConfig(q=q, dprime=dprime, supernode_kind=supernode_kind)
    return polarstar_topology(cfg, p=p)


register_topology("polarstar", _registered_polarstar)
