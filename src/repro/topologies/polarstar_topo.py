"""PolarStar as a deployable topology (PS-IQ / PS-Pal of Table 3)."""

from __future__ import annotations

from repro.core.polarstar import PolarStarConfig, best_config, build_polarstar
from repro.topologies.base import Topology, uniform_endpoints

__all__ = [
    "polarstar_topology",
]


def polarstar_topology(
    config: PolarStarConfig | int,
    p: int | None = None,
    kinds: tuple[str, ...] = ("iq", "paley"),
) -> Topology:
    """Build a PolarStar network.

    Parameters
    ----------
    config:
        Either an explicit :class:`PolarStarConfig` or a network radix, in
        which case the largest feasible configuration is chosen.
    p:
        Endpoints per router; defaults to the paper's rule of one third of
        the network radix (¼ of total ports).

    The returned topology carries the supernode id of each router in
    ``groups`` and the star-product factorization in ``meta["star"]`` (the
    analytic router of §9.2 needs it).
    """
    if isinstance(config, int):
        cfg = best_config(config, kinds=kinds)
        if cfg is None:
            raise ValueError(f"no feasible PolarStar at radix {config}")
    else:
        cfg = config
    if p is None:
        p = max(1, cfg.radix // 3)

    sp = build_polarstar(cfg)
    kind = "IQ" if cfg.supernode_kind == "iq" else "Pal"
    return Topology(
        graph=sp.graph,
        endpoint_router=uniform_endpoints(sp.graph.n, p),
        name=f"PS-{kind}",
        groups=sp.supernode_of,
        meta={"config": cfg, "star": sp, "p": p},
    )
