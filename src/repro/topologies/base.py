"""The Topology abstraction shared by simulation, routing and analysis.

A topology is a router :class:`~repro.graphs.base.Graph` plus:

* ``endpoint_router`` — which router each compute endpoint attaches to
  (indirect networks like Fat-tree and Megafly leave some routers bare);
* ``groups`` — optional hierarchical group / supernode id per router, used
  by group-local traffic patterns, the adversarial pattern of §9.6, and the
  bundling analysis of §8;
* ``meta`` — constructor parameters, echoed into experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.graphs.base import Graph

__all__ = [
    "Topology",
    "uniform_endpoints",
]


@dataclass
class Topology:
    """A network topology with endpoint attachment."""

    graph: Graph
    endpoint_router: np.ndarray
    name: str
    groups: np.ndarray | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        self.endpoint_router = np.asarray(self.endpoint_router, dtype=np.int64)
        if len(self.endpoint_router) and (
            self.endpoint_router.min() < 0 or self.endpoint_router.max() >= self.graph.n
        ):
            raise ValueError("endpoint attached to nonexistent router")
        if self.groups is not None:
            self.groups = np.asarray(self.groups, dtype=np.int64)
            if len(self.groups) != self.graph.n:
                raise ValueError("groups must assign a group to every router")

    # -- sizes ---------------------------------------------------------------

    @property
    def num_routers(self) -> int:
        return self.graph.n

    @property
    def num_endpoints(self) -> int:
        return len(self.endpoint_router)

    @property
    def network_radix(self) -> int:
        """Max router-to-router ports (the paper's "network radix")."""
        return self.graph.max_degree

    @property
    def endpoints_per_router(self) -> np.ndarray:
        counts = np.zeros(self.graph.n, dtype=np.int64)
        np.add.at(counts, self.endpoint_router, 1)
        return counts

    @property
    def router_radix(self) -> int:
        """Max total ports on any router (network links + endpoint links)."""
        return int((self.graph.degrees + self.endpoints_per_router).max())

    @property
    def is_direct(self) -> bool:
        """Every router hosts at least one endpoint (Table 1 "Direct")."""
        return bool((self.endpoints_per_router > 0).all())

    def routers_of_group(self, g: int) -> np.ndarray:
        if self.groups is None:
            raise ValueError(f"{self.name} has no group structure")
        return np.nonzero(self.groups == g)[0]

    @property
    def num_groups(self) -> int:
        if self.groups is None:
            return 0
        return int(self.groups.max()) + 1

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}, routers={self.num_routers}, "
            f"radix={self.network_radix}, endpoints={self.num_endpoints})"
        )


def uniform_endpoints(num_routers: int, p: int) -> np.ndarray:
    """Endpoint map with *p* endpoints on every router, contiguously numbered
    (endpoint ids are contiguous per router, as the paper's §9.4 requires)."""
    return np.repeat(np.arange(num_routers), p)
