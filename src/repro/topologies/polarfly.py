"""PolarFly and SlimFly — the diameter-2 predecessors (§2.3, Fig. 4).

PolarFly (Lakhotia et al. 2022) is the Erdős–Rényi polarity graph used
directly as a network; SlimFly (Besta & Hoefler 2014) is the MMS graph used
directly.  Both approach the diameter-2 Moore bound but top out at a few
thousand routers — the scalability gap PolarStar exists to close.

PolarFly admits fully analytic routing: the common neighbor of any two
vertices is their *cross product* in the underlying projective space, so a
router needs no tables at all — :class:`PolarFlyRouter` implements it and
is oracle-tested.
"""

from __future__ import annotations

import numpy as np

from repro.fields import GF, is_prime_power
from repro.graphs.er_polarity import er_polarity_graph, projective_points
from repro.graphs.mms import mms_graph
from repro.routing.base import Router
from repro.store.registry import register_topology
from repro.topologies.base import Topology, uniform_endpoints

__all__ = [
    "polarfly_topology",
    "slimfly_topology",
    "PolarFlyRouter",
]


def polarfly_topology(q: int, p: int | None = None) -> Topology:
    """PolarFly: the ER_q graph as a direct network (radix q+1)."""
    graph = er_polarity_graph(q)
    if p is None:
        p = max(1, (q + 1) // 2)  # diameter-2 rule of thumb: p = radix/2
    return Topology(
        graph=graph,
        endpoint_router=uniform_endpoints(graph.n, p),
        name="PF",
        meta={"q": q, "p": p},
    )


def slimfly_topology(q: int, p: int | None = None) -> Topology:
    """SlimFly: the MMS graph as a direct network."""
    graph = mms_graph(q)
    if p is None:
        p = max(1, graph.max_degree // 2)
    return Topology(
        graph=graph,
        endpoint_router=uniform_endpoints(graph.n, p),
        name="SlimFly",
        meta={"q": q, "p": p},
    )


class PolarFlyRouter(Router):
    """Table-free analytic minimal routing on PolarFly.

    Distance is 1 when the endpoint vectors are orthogonal, else 2 via the
    cross-product vertex ``w = u x v`` (which may equal *u* or *v* when one
    is quadric — then the true middle is found among the few orthogonal
    candidates).  State: just the point coordinates, O(n).
    """

    def __init__(self, topology: Topology):
        q = topology.meta.get("q")
        if q is None or not is_prime_power(q):
            raise ValueError("PolarFlyRouter needs a polarfly_topology network")
        self.topology = topology
        self.graph = topology.graph
        self.field = GF(q)
        self.points = projective_points(q)

    def _normalize(self, vec: np.ndarray) -> int:
        """Left-normalize a projective vector and return its vertex id."""
        F = self.field
        v = vec.copy()
        for i in range(3):
            if v[i]:
                inv = int(F.inv(int(v[i])))
                v = F.mul(v, inv)
                break
        else:
            raise ValueError("zero vector has no projective class")
        q = F.q
        if v[0] == 1:
            return q * int(v[1]) + int(v[2])
        if v[1] == 1:
            return q * q + int(v[2])
        return q * q + q

    def _cross(self, u: int, v: int) -> int:
        F = self.field
        a, b = self.points[u], self.points[v]
        w = np.array(
            [
                F.sub(F.mul(a[1], b[2]), F.mul(a[2], b[1])),
                F.sub(F.mul(a[2], b[0]), F.mul(a[0], b[2])),
                F.sub(F.mul(a[0], b[1]), F.mul(a[1], b[0])),
            ],
            dtype=np.int64,
        )
        return self._normalize(w)

    def distance(self, current: int, dest: int) -> int:
        if current == dest:
            return 0
        F = self.field
        if int(F.dot3(self.points[current], self.points[dest])) == 0:
            return 1
        return 2

    def next_hops(self, current: int, dest: int) -> list[int]:
        if current == dest:
            return []
        if self.distance(current, dest) == 1:
            return [dest]
        w = self._cross(current, dest)
        if w not in (current, dest):
            return [w]
        # Degenerate cross product (collinear w/ a quadric endpoint): find a
        # common orthogonal neighbor directly among current's neighbors.
        F = self.field
        for cand in self.graph.neighbors(current):
            if int(F.dot3(self.points[cand], self.points[dest])) == 0 and cand != current:
                return [int(cand)]
        raise RuntimeError(f"no 2-hop path from {current} to {dest}")


register_topology("polarfly", polarfly_topology)
register_topology("slimfly", slimfly_topology)
