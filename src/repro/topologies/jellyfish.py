"""Jellyfish (Singla et al. 2012): random-regular-graph networking.

Used in Fig. 12 as a bisection upper-reference at the same radix and scale
as PolarStar.  Note its diameter generally exceeds 3.
"""

from __future__ import annotations

from repro.graphs.random_regular import random_regular_graph
from repro.store.registry import register_topology
from repro.topologies.base import Topology, uniform_endpoints

__all__ = [
    "jellyfish_topology",
]


def jellyfish_topology(n: int, radix: int, p: int | None = None, seed: int = 0) -> Topology:
    """Random ``radix``-regular network on *n* routers."""
    if p is None:
        p = max(1, radix // 3)
    graph = random_regular_graph(n, radix, seed=seed)
    return Topology(
        graph=graph,
        endpoint_router=uniform_endpoints(n, p),
        name="JF",
        groups=None,
        meta={"seed": seed, "p": p},
    )


register_topology("jellyfish", jellyfish_topology)
