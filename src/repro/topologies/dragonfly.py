"""Dragonfly (Kim et al. 2008).

Canonical single-link-per-group-pair Dragonfly: ``g = a·h + 1`` fully
connected groups of *a* routers; each router has ``a - 1`` local ports,
*h* global ports and *p* endpoint ports.  Global links use the standard
"absolute" arrangement: the ``a·h`` global ports of a group are numbered
consecutively and port *k* connects to group *k* (skipping the group
itself), which pairs up consistently because each group pair consumes
exactly one port on each side.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import Graph
from repro.store.registry import register_topology
from repro.topologies.base import Topology, uniform_endpoints

__all__ = [
    "dragonfly_topology",
    "dragonfly_max_order",
]


def dragonfly_topology(a: int, h: int, p: int | None = None) -> Topology:
    """Build Dragonfly(a, h) with ``a·h + 1`` groups."""
    if a < 1 or h < 1:
        raise ValueError("Dragonfly needs a >= 1, h >= 1")
    g = a * h + 1
    n = g * a
    if p is None:
        p = h  # the canonical balanced choice (a = 2h, p = h)

    def rid(grp, r):
        return grp * a + r

    edges = []
    # Local: complete graph within each group.
    for grp in range(g):
        for r1 in range(a):
            for r2 in range(r1 + 1, a):
                edges.append((rid(grp, r1), rid(grp, r2)))
    # Global: port k of group grp (router k // h, slot k % h) -> group tgt.
    for grp in range(g):
        for k in range(a * h):
            tgt = k if k < grp else k + 1
            if tgt <= grp:
                continue  # add each inter-group link once, from lower group
            back = grp  # index of grp in tgt's skip-self port list (grp < tgt)
            edges.append((rid(grp, k // h), rid(tgt, back // h)))

    graph = Graph(n, edges, name=f"Dragonfly(a={a},h={h})")
    groups = np.repeat(np.arange(g), a)
    return Topology(
        graph=graph,
        endpoint_router=uniform_endpoints(n, p),
        name="DF",
        groups=groups,
        meta={"a": a, "h": h, "p": p, "num_groups": g},
    )


def dragonfly_max_order(radix: int) -> int:
    """Largest Dragonfly router count at a network radix (Fig. 1 curve):
    maximize ``a(ah + 1)`` over ``(a - 1) + h == radix``."""
    best = 0
    for a in range(2, radix + 1):
        h = radix - (a - 1)
        if h < 1:
            continue
        best = max(best, a * (a * h + 1))
    return best


register_topology("dragonfly", dragonfly_topology)
