"""The simulated configurations of Table 3.

Each builder reproduces one row of Table 3 exactly (router count, network
radix, endpoint count), except PS-Pal, where the stated construction
(``d=9, d'=6`` → ``ER_8 * Paley(13)``) yields 949 routers rather than the
printed 993 — the table's router count is not attainable from any
``(q²+q+1)·(2d'+1)`` product at radix 15, so we take the construction as
authoritative (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Callable

from repro.core.polarstar import PolarStarConfig
from repro.store.registry import register_topology
from repro.topologies.base import Topology
from repro.topologies.bundlefly import bundlefly_topology
from repro.topologies.dragonfly import dragonfly_topology
from repro.topologies.fattree import fattree_topology
from repro.topologies.hyperx import hyperx_topology
from repro.topologies.megafly import megafly_topology
from repro.topologies.polarstar_topo import polarstar_topology
from repro.topologies.spectralfly import spectralfly_topology

__all__ = [
    "TABLE3_BUILDERS",
    "build_table3_topology",
    "REDUCED_BUILDERS",
    "build_reduced_topology",
]


def _ps_iq() -> Topology:
    return polarstar_topology(PolarStarConfig(q=11, dprime=3, supernode_kind="iq"), p=5)


def _ps_pal() -> Topology:
    return polarstar_topology(PolarStarConfig(q=8, dprime=6, supernode_kind="paley"), p=5)


def _bf() -> Topology:
    return bundlefly_topology(q=7, dprime=4, p=5)


def _hx() -> Topology:
    return hyperx_topology((9, 9, 8), p=8)


def _df() -> Topology:
    return dragonfly_topology(a=12, h=6, p=6)


def _sf() -> Topology:
    return spectralfly_topology(p_gen=23, q=13, p=8)


def _mf() -> Topology:
    return megafly_topology(rho=8, a=16, p=8)


def _ft() -> Topology:
    return fattree_topology(p=18)


#: name -> (builder, expected routers, expected network radix, expected endpoints)
TABLE3_BUILDERS: dict[str, tuple[Callable[[], Topology], int, int, int]] = {
    "PS-IQ": (_ps_iq, 1064, 15, 5320),
    "PS-Pal": (_ps_pal, 949, 15, 4745),  # paper prints 993/4965; see module doc
    "BF": (_bf, 882, 15, 4410),
    "HX": (_hx, 648, 23, 5184),
    "DF": (_df, 876, 17, 5256),
    "SF": (_sf, 1092, 24, 8736),
    "MF": (_mf, 1040, 16, 4160),
    "FT": (_ft, 972, 36, 5832),
}


def build_table3_topology(name: str) -> Topology:
    """Build one of the Table 3 networks by its paper label."""
    if name not in TABLE3_BUILDERS:
        raise KeyError(f"unknown Table 3 topology {name!r}; options: {list(TABLE3_BUILDERS)}")
    return TABLE3_BUILDERS[name][0]()


#: Reduced-scale analogues with the same structure, small enough for the
#: pure-Python cycle-level simulator (§9.4 shape studies).
REDUCED_BUILDERS: dict[str, Callable[[], Topology]] = {
    "PS-IQ": lambda: polarstar_topology(
        PolarStarConfig(q=5, dprime=3, supernode_kind="iq"), p=3
    ),
    "PS-Pal": lambda: polarstar_topology(
        PolarStarConfig(q=4, dprime=4, supernode_kind="paley"), p=3
    ),
    "BF": lambda: bundlefly_topology(q=3, dprime=2, p=3),
    "HX": lambda: hyperx_topology((4, 4, 3), p=3),
    "DF": lambda: dragonfly_topology(a=6, h=3, p=3),
    "MF": lambda: megafly_topology(rho=3, a=8, p=3),
    "FT": lambda: fattree_topology(p=6),
}


def build_reduced_topology(name: str) -> Topology:
    """Build the reduced-scale analogue used by the cycle-level simulator."""
    if name not in REDUCED_BUILDERS:
        raise KeyError(f"no reduced config for {name!r}; options: {list(REDUCED_BUILDERS)}")
    return REDUCED_BUILDERS[name]()


register_topology("table3", build_table3_topology)
register_topology("table3-reduced", build_reduced_topology)
