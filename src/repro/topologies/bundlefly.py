"""Bundlefly (Lei et al. 2020) — the state-of-the-art diameter-3 baseline.

Bundlefly is the star product of a McKay–Miller–Širáň structure graph
(order ``2q²``) and a Property-P_1 supernode — a Paley graph (order
``2d'+1``) in the configurations that matter.  Theorem 5 gives diameter 3.
The Table 3 instance is ``MMS(7) * Paley(9)``: 882 routers of radix 15.
"""

from __future__ import annotations

from repro.graphs.mms import mms_degree, mms_feasible_degrees, mms_graph, mms_order
from repro.graphs.paley import paley_feasible_degrees, paley_graph, paley_order
from repro.core.star_product import star_product
from repro.store.registry import register_topology
from repro.topologies.base import Topology, uniform_endpoints

__all__ = [
    "bundlefly_topology",
    "bundlefly_max_order",
]


def bundlefly_topology(q: int, dprime: int, p: int | None = None) -> Topology:
    """Build Bundlefly with structure ``MMS(q)`` and supernode
    ``Paley(2·dprime + 1)``."""
    structure = mms_graph(q)
    supernode, f = paley_graph(2 * dprime + 1)
    sp = star_product(structure, supernode, f, name=f"Bundlefly(q={q},d'={dprime})")
    radix = mms_degree(q) + dprime
    if p is None:
        p = max(1, radix // 3)
    return Topology(
        graph=sp.graph,
        endpoint_router=uniform_endpoints(sp.graph.n, p),
        name="BF",
        groups=sp.supernode_of,
        meta={"q": q, "dprime": dprime, "star": sp, "p": p, "radix": radix},
    )


def bundlefly_max_order(radix: int, bdf_fallback: bool = False) -> int:
    """Largest Bundlefly order at a network radix (Fig. 1 curve).

    Maximizes ``2q² · (2d' + 1)`` over feasible MMS parameters *q* and Paley
    supernode degrees *d'* with ``mms_degree(q) + d' == radix``.  With Paley
    supernodes only, the geometric-mean PolarStar/Bundlefly scale ratio over
    radix [8, 128] is 1.31x — the paper's 1.3x — and the efficiency
    fluctuates exactly as Fig. 1 shows.  ``bdf_fallback`` additionally
    admits order-``2d'`` P_1 supernodes at Paley-infeasible degrees.
    """
    best = 0
    paley_ok = set(paley_feasible_degrees(radix))
    for q, deg in mms_feasible_degrees(radix):
        dp = radix - deg
        if dp < 0:
            continue
        if dp in paley_ok:
            best = max(best, mms_order(q) * paley_order(dp))
        if bdf_fallback and dp >= 1:
            best = max(best, mms_order(q) * 2 * dp)
        if dp == 0:
            best = max(best, mms_order(q))
    return best


register_topology("bundlefly", bundlefly_topology)
