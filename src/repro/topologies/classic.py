"""Classic baselines the paper screens out in §9.1.

Torus, hypercube and Flattened Butterfly "have been shown to have lower
performance than these baselines" — we implement them so that claim is
checkable (they also serve as sanity baselines for the simulators).
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.graphs.base import Graph
from repro.store.registry import register_topology
from repro.topologies.base import Topology, uniform_endpoints

__all__ = [
    "torus_topology",
    "hypercube_topology",
    "flattened_butterfly_topology",
]


def torus_topology(dims: tuple[int, ...], p: int = 1) -> Topology:
    """k-ary n-dimensional torus (ring per dimension)."""
    dims = tuple(int(d) for d in dims)
    if any(d < 2 for d in dims):
        raise ValueError("torus dimensions must be >= 2")
    n = int(np.prod(dims))
    strides = np.empty(len(dims), dtype=np.int64)
    acc = 1
    for i in reversed(range(len(dims))):
        strides[i] = acc
        acc *= dims[i]

    edges = []
    for coord in product(*(range(d) for d in dims)):
        base = int(np.dot(coord, strides))
        for axis, size in enumerate(dims):
            nxt = list(coord)
            nxt[axis] = (coord[axis] + 1) % size
            other = int(np.dot(nxt, strides))
            if other != base:
                edges.append((min(base, other), max(base, other)))
    graph = Graph(n, edges, name=f"Torus{dims}")
    return Topology(
        graph=graph,
        endpoint_router=uniform_endpoints(n, p),
        name="Torus",
        meta={"dims": dims, "p": p, "strides": strides},
    )


def hypercube_topology(dim: int, p: int = 1) -> Topology:
    """Binary hypercube Q_dim."""
    if dim < 1:
        raise ValueError("hypercube needs dim >= 1")
    n = 1 << dim
    edges = [(v, v ^ (1 << b)) for v in range(n) for b in range(dim) if v < v ^ (1 << b)]
    graph = Graph(n, edges, name=f"Q{dim}")
    return Topology(
        graph=graph,
        endpoint_router=uniform_endpoints(n, p),
        name="Hypercube",
        meta={"dim": dim, "p": p},
    )


def flattened_butterfly_topology(k: int, n_dims: int, p: int | None = None) -> Topology:
    """Flattened Butterfly (Kim et al. 2007): the k-ary n-flat — routers on a
    ``k^n`` grid with a full mesh in every dimension (a HyperX with equal
    dimensions and concentration k)."""
    from repro.topologies.hyperx import hyperx_topology

    topo = hyperx_topology(tuple([k] * n_dims), p=p if p is not None else k)
    topo.name = "FlattenedButterfly"
    topo.meta["k"] = k
    return topo


register_topology("torus", torus_topology)
register_topology("hypercube", hypercube_topology)
register_topology("flattened-butterfly", flattened_butterfly_topology)
