"""Megafly / Dragonfly+ (Flajslik et al. 2018; Shpiner et al. 2017).

An *indirect* hierarchical topology: each group is a two-level bipartite
fat-tree with ``a/2`` leaf routers (hosting endpoints) and ``a/2`` spine
routers (hosting the global ports).  Each spine has ``ρ`` global links and
each group pair is joined by exactly one global link, so there are
``(a/2)·ρ + 1`` groups.  The Table 3 instance (``ρ=8, a=16, p=8``) has
65 groups, 1040 routers of radix 16, and 4160 endpoints on the leaves.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import Graph
from repro.store.registry import register_topology
from repro.topologies.base import Topology

__all__ = [
    "megafly_topology",
]


def megafly_topology(rho: int, a: int, p: int) -> Topology:
    """Build Megafly(ρ, a) with *p* endpoints per **leaf** router."""
    if a % 2 != 0:
        raise ValueError("Megafly group size a must be even")
    half = a // 2
    g = half * rho + 1
    n = g * a

    # Router ids: group grp has leaves [grp*a, grp*a + half) and spines
    # [grp*a + half, grp*a + a).
    def leaf(grp, i):
        return grp * a + i

    def spine(grp, j):
        return grp * a + half + j

    edges = []
    for grp in range(g):
        for i in range(half):
            for j in range(half):
                edges.append((leaf(grp, i), spine(grp, j)))
    # Global links: same absolute arrangement as Dragonfly, ports living on
    # the spines (spine j owns ports [j*rho, (j+1)*rho)).
    for grp in range(g):
        for k in range(half * rho):
            tgt = k if k < grp else k + 1
            if tgt <= grp:
                continue
            edges.append((spine(grp, k // rho), spine(tgt, grp // rho)))

    graph = Graph(n, edges, name=f"Megafly(rho={rho},a={a})")
    groups = np.repeat(np.arange(g), a)
    endpoint_router = np.concatenate(
        [np.repeat([leaf(grp, i) for i in range(half)], p) for grp in range(g)]
    )
    return Topology(
        graph=graph,
        endpoint_router=endpoint_router,
        name="MF",
        groups=groups,
        meta={"rho": rho, "a": a, "p": p, "num_groups": g},
    )


register_topology("megafly", megafly_topology)
