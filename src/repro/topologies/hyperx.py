"""HyperX (Ahn et al. 2009).

Routers sit on a multidimensional integer lattice and each dimension is a
full mesh: two routers are linked iff their coordinates differ in exactly
one position.  The paper's baseline is the 3-D ``9 x 9 x 8`` instance
(648 routers, radix 23).
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.graphs.base import Graph
from repro.store.registry import register_topology
from repro.topologies.base import Topology, uniform_endpoints

__all__ = [
    "hyperx_topology",
    "hyperx_max_order",
]


def hyperx_topology(dims: tuple[int, ...], p: int | None = None) -> Topology:
    """Build a HyperX with the given per-dimension sizes."""
    dims = tuple(int(d) for d in dims)
    if any(d < 1 for d in dims):
        raise ValueError("HyperX dimensions must be positive")
    n = int(np.prod(dims))
    radix = sum(d - 1 for d in dims)
    if p is None:
        p = max(1, radix // 3)

    strides = np.empty(len(dims), dtype=np.int64)
    acc = 1
    for i in reversed(range(len(dims))):
        strides[i] = acc
        acc *= dims[i]

    def rid(coord):
        return int(np.dot(coord, strides))

    edges = []
    for coord in product(*(range(d) for d in dims)):
        base = rid(coord)
        for axis, size in enumerate(dims):
            for other in range(coord[axis] + 1, size):
                alt = list(coord)
                alt[axis] = other
                edges.append((base, rid(alt)))

    graph = Graph(n, edges, name=f"HyperX{dims}")
    return Topology(
        graph=graph,
        endpoint_router=uniform_endpoints(n, p),
        name="HX",
        groups=None,
        meta={"dims": dims, "p": p, "strides": strides},
    )


def hyperx_max_order(radix: int, ndims: int = 3) -> int:
    """Largest router count of an ``ndims``-D HyperX at a network radix:
    maximize ``prod(d_i)`` over ``sum(d_i - 1) == radix`` (balanced split)."""
    best = 0
    if ndims == 3:
        for d1 in range(1, radix + 1):
            for d2 in range(d1, radix + 1):
                rem = radix - (d1 - 1) - (d2 - 1)
                d3 = rem + 1
                if d3 >= d2:
                    best = max(best, d1 * d2 * d3)
    else:  # pragma: no cover - general fallback
        base = radix // ndims + 1
        best = base**ndims
    return best


register_topology("hyperx", hyperx_topology)
