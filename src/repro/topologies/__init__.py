"""Network topologies: PolarStar plus every baseline of §9–§11.

Each constructor returns a :class:`Topology` — a router graph plus an
endpoint→router attachment map and (for hierarchical networks) a group id
per router, which the traffic patterns (§9.4) and bundling analysis (§8)
consume.
"""

from repro.topologies.base import Topology
from repro.topologies.polarstar_topo import polarstar_topology
from repro.topologies.bundlefly import bundlefly_max_order, bundlefly_topology
from repro.topologies.dragonfly import dragonfly_max_order, dragonfly_topology
from repro.topologies.hyperx import hyperx_max_order, hyperx_topology
from repro.topologies.megafly import megafly_topology
from repro.topologies.fattree import fattree_topology
from repro.topologies.spectralfly import spectralfly_design_points, spectralfly_topology
from repro.topologies.jellyfish import jellyfish_topology
from repro.topologies.polarfly import PolarFlyRouter, polarfly_topology, slimfly_topology
from repro.topologies.classic import (
    flattened_butterfly_topology,
    hypercube_topology,
    torus_topology,
)
from repro.topologies.table3 import TABLE3_BUILDERS, build_table3_topology

__all__ = [
    "Topology",
    "polarstar_topology",
    "bundlefly_topology",
    "bundlefly_max_order",
    "dragonfly_topology",
    "dragonfly_max_order",
    "hyperx_topology",
    "hyperx_max_order",
    "megafly_topology",
    "fattree_topology",
    "spectralfly_topology",
    "spectralfly_design_points",
    "jellyfish_topology",
    "polarfly_topology",
    "slimfly_topology",
    "PolarFlyRouter",
    "torus_topology",
    "hypercube_topology",
    "flattened_butterfly_topology",
    "TABLE3_BUILDERS",
    "build_table3_topology",
]
