"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro topology ps --radix 15          # build + report
    python -m repro topology df --a 12 --h 6
    python -m repro design-space 24                 # feasible configs
    python -m repro experiment fig01                # regenerate an artifact
    python -m repro experiment tab03 --metrics-out m.json
    python -m repro route --radix 15 --src 0 --dst 900
    python -m repro route --topology PS-IQ --pair 0 7 --pairs-file pairs.txt
    python -m repro serve start --topology PS-IQ --port 7070
    python -m repro serve bench --topology PS-IQ --out BENCH_serve.json
    python -m repro serve chaos --topology PS-IQ --scale reduced --out chaos.json
    python -m repro bench packet --out BENCH_packet.json   # fig09 sweep, both engines
    python -m repro bench packet --quick --min-speedup 3   # CI perf-smoke gate
    python -m repro bench serve --topology PS-IQ --out BENCH_serve.json
    python -m repro sim --radix 7 --load 0.3 --adaptive --metrics-out m.json
    python -m repro sim --radix 7 --load 0.3 --fail-links 0.1
    python -m repro faults inject --fail-links 0.1 --fail-nodes 2
    python -m repro faults sweep --topo PS-IQ --out sweep.json
    python -m repro faults crashpoints --out crash-report.json
    python -m repro run fig14_dynamic --jobs 4 --timeout 120
    python -m repro run fig14_dynamic --jobs 4 --resume  # continue a run
    python -m repro run status                      # list run journals
    python -m repro obs summary m.json              # inspect an artifact
    python -m repro store ls                        # on-disk artifacts
    python -m repro store warm --topo DF --dist     # pre-build a topology
    python -m repro store gc --dry-run              # reclaim cache space

``experiment`` accepts any module name from :mod:`repro.experiments`
(fig01, fig04, fig07, fig09, fig10, fig11, fig12, fig13, fig14,
fig14_dynamic, tab01, tab02, tab03, eq12, sec08).  ``run`` executes a
trial-decomposed experiment (see ``repro.runtime.PLANNED_EXPERIMENTS``)
on the crash-safe supervised worker pool: ``--jobs N`` workers,
``--timeout S`` per-trial wall budget, checkpoint journal under the runs
directory (or ``--journal PATH``), and ``--resume`` to skip trials the
journal already has — an interrupted sweep continues where it stopped
and reproduces the uninterrupted artifact byte-for-byte.  ``run status``
lists every journal and its progress.  See ``docs/RUNTIME.md``.
``--metrics-out PATH`` (on ``experiment``, ``sim``, ``run``, and
``faults``) enables the :mod:`repro.obs` subsystem for the run and
writes the metrics + span-profile + manifest JSON artifact; ``obs
summary`` renders such an artifact for humans (see
``docs/OBSERVABILITY.md``).  ``faults`` runs fault-injected simulations
(see ``docs/FAULT_TOLERANCE.md``): ``inject`` for one scenario with
per-kind knobs, ``sweep`` for the fig14_dynamic delivered-fraction sweep
with a byte-deterministic ``--out`` JSON artifact, and ``crashpoints``
to simulate a power cut at every durability-relevant I/O operation of a
store-populate + journaled-sweep workload and verify the recovery
invariants (no corrupt artifact served, byte-identical resume, gc never
deletes live entries — the "Durability contract" in
``docs/ARCHITECTURE.md``).  ``store`` manages the content-addressed
artifact cache every construction flows through
(``docs/ARCHITECTURE.md``): ``ls`` lists on-disk entries, ``warm``
pre-builds topologies (and, with ``--dist``, their BFS distance tables)
so later runs skip construction, ``gc`` reclaims broken or excess
entries and reaps stray ``.tmp-*`` files older than ``--reap-tmp-age``.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys

__all__ = [
    "EXPERIMENTS",
    "build_parser",
    "main",
]

EXPERIMENTS = [
    "fig01",
    "fig04",
    "fig07",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig14_dynamic",
    "tab01",
    "tab02",
    "tab03",
    "eq12",
    "sec08",
]


def _cmd_topology(args) -> int:
    from repro import store

    if args.kind == "ps":
        topo = store.topology("polarstar", radix=args.radix, p=args.p)
    elif args.kind == "df":
        topo = store.topology("dragonfly", a=args.a, h=args.h, p=args.p)
    elif args.kind == "hx":
        dims = tuple(int(x) for x in args.dims.split("x"))
        topo = store.topology("hyperx", dims=dims, p=args.p)
    else:
        raise SystemExit(f"unknown topology kind {args.kind!r}")

    g = topo.graph
    print(f"{topo.name}: {g.n} routers, {g.m} links, network radix "
          f"{topo.network_radix}, {topo.num_endpoints} endpoints")
    print(f"diameter: {store.diameter(g, sample=min(g.n, 64)):.0f}")
    if topo.groups is not None:
        print(f"groups: {topo.num_groups}")
    return 0


def _cmd_design_space(args) -> int:
    from repro.core.polarstar import design_space

    for cfg in design_space(args.radix):
        marker = " <- largest" if cfg == design_space(args.radix)[0] else ""
        print(f"{cfg.name:36s} {cfg.order:8d} routers{marker}")
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments.common import obs_session

    if args.name not in EXPERIMENTS:
        raise SystemExit(f"unknown experiment {args.name!r}; options: {EXPERIMENTS}")
    mod = importlib.import_module(f"repro.experiments.{args.name}")
    with obs_session(args.metrics_out, experiment=args.name):
        result = mod.run()
    print(mod.format_figure(result))
    if args.metrics_out:
        print(f"\nmetrics written to {args.metrics_out}")
    return 0


def _cmd_sim(args) -> int:
    """Instrumented packet-sim run on a small PolarStar (smoke/CI workload)."""
    from repro import store
    from repro.experiments.common import obs_session
    from repro.sim.packet import PacketSimConfig, PacketSimulator
    from repro.traffic import RandomPermutationPattern, UniformRandomPattern

    topo = store.topology("polarstar", radix=args.radix, p=args.p)
    router = store.table_router(topo)
    if args.pattern == "uniform":
        pattern = UniformRandomPattern(topo)
    else:
        pattern = RandomPermutationPattern(topo, seed=args.seed)
    cfg = PacketSimConfig(
        warmup_cycles=args.warmup_cycles,
        measure_cycles=args.measure_cycles,
        drain_cycles=args.drain_cycles,
        seed=args.seed,
    )
    faults = None
    if args.fail_links > 0:
        from repro.faults import permanent_link_failures

        faults = permanent_link_failures(topo.graph, args.fail_links, seed=args.seed)
    with obs_session(
        args.metrics_out,
        seed=args.seed,
        config=cfg,
        topology=topo,
        load=args.load,
        pattern=args.pattern,
        adaptive=args.adaptive,
        faults=faults.summary() if faults is not None else None,
    ):
        sim = PacketSimulator(
            topo, router, pattern, cfg, adaptive=args.adaptive, faults=faults,
            engine=args.engine,
        )
        res = sim.run(args.load)
    print(
        f"{topo.name}: load={res.offered_load:.2f} avg_lat={res.avg_latency:.1f} "
        f"p99={res.p99_latency:.1f} thr={res.throughput:.3f} "
        f"delivered={res.delivered}/{res.injected} stable={res.stable}"
    )
    if faults is not None:
        print(
            f"faults: {len(faults)} failed links, delivered fraction "
            f"{res.delivered_fraction:.3f}, dropped={res.dropped} "
            f"{res.drop_causes}, reroutes={res.reroutes}"
        )
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


def _build_schedule(graph, args):
    """Compose a FaultSchedule from the ``faults inject`` CLI knobs."""
    from repro.faults import (
        FaultSchedule,
        degraded_links,
        link_flaps,
        node_failures,
        permanent_link_failures,
    )

    sched = FaultSchedule()
    if args.fail_links > 0:
        sched = sched + permanent_link_failures(
            graph, args.fail_links, seed=args.seed, time=args.fault_time
        )
    if args.fail_nodes > 0:
        sched = sched + node_failures(
            graph, args.fail_nodes, seed=args.seed + 1, time=args.fault_time
        )
    if args.flap_links > 0:
        horizon = args.warmup_cycles + args.measure_cycles
        sched = sched + link_flaps(
            graph, args.flap_links, horizon=horizon, seed=args.seed + 2
        )
    if args.degrade_links > 0:
        sched = sched + degraded_links(
            graph,
            args.degrade_links,
            factor=args.degrade_factor,
            seed=args.seed + 3,
            time=args.fault_time,
        )
    return sched


def _cmd_faults_inject(args) -> int:
    """One fault-injected packet-sim run on a small PolarStar instance."""
    from repro import store
    from repro.experiments.common import obs_session
    from repro.sim.packet import PacketSimConfig, PacketSimulator
    from repro.traffic import UniformRandomPattern

    topo = store.topology("polarstar", radix=args.radix, p=args.p)
    cfg = PacketSimConfig(
        warmup_cycles=args.warmup_cycles,
        measure_cycles=args.measure_cycles,
        drain_cycles=args.drain_cycles,
        seed=args.seed,
    )
    sched = _build_schedule(topo.graph, args)
    with obs_session(
        args.metrics_out,
        seed=args.seed,
        config=cfg,
        topology=topo,
        load=args.load,
        faults=sched.summary(),
    ):
        sim = PacketSimulator(
            topo, store.table_router(topo), UniformRandomPattern(topo), cfg,
            faults=sched, engine=args.engine,
        )
        res = sim.run(args.load)
    print(f"{topo.name}: {sched!r}")
    print(
        f"load={res.offered_load:.2f} delivered={res.delivered}/{res.injected} "
        f"delivered_fraction={res.delivered_fraction:.3f} "
        f"avg_lat={res.avg_latency:.1f} thr={res.throughput:.3f}"
    )
    print(
        f"dropped={res.dropped} {res.drop_causes} reroutes={res.reroutes} "
        f"rungs={sim.router.rung_counts}"
    )
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


def _cmd_faults_schedule(args) -> int:
    """Generate a deterministic fault-schedule JSON for ``serve start``."""
    from repro import store
    from repro.faults import FaultSchedule, node_failures, permanent_link_failures
    from repro.runtime import atomic_write_text

    topo = store.resolve_topology(args.topology, scale=args.scale)
    sched = FaultSchedule()
    if args.fail_links > 0:
        sched = sched + permanent_link_failures(
            topo.graph, args.fail_links, seed=args.seed
        )
    if args.fail_nodes > 0:
        sched = sched + node_failures(
            topo.graph, args.fail_nodes, seed=args.seed + 1
        )
    doc = {
        "schema": "repro.faults.schedule/v1",
        "topology": args.topology,
        "scale": args.scale,
        "label": args.label,
        "events": sched.to_jsonable(),
    }
    text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if args.out:
        atomic_write_text(args.out, text)
        print(
            f"schedule with {len(sched)} events written to {args.out} "
            f"(epoch label {args.label})"
        )
    else:
        print(text, end="")
    return 0


def _cmd_faults_sweep(args) -> int:
    """Delivered-fraction sweep over failed-link fractions (fig14_dynamic)."""
    import json

    from repro.experiments import fig14_dynamic
    from repro.experiments.common import obs_session

    topos = tuple(args.topo) if args.topo else ("PS-IQ",)
    fractions = tuple(float(x) for x in args.fractions.split(","))
    with obs_session(
        args.metrics_out,
        seed=args.seed,
        load=args.load,
        topologies=list(topos),
        fractions=list(fractions),
    ):
        result = fig14_dynamic.run(
            names=topos, fractions=fractions, load=args.load, seed=args.seed
        )
    print(fig14_dynamic.format_figure(result))
    if args.out:
        from repro.runtime import atomic_write_text

        # sort_keys + no timestamps anywhere => byte-identical across reruns
        # of the same (topo, fractions, load, seed); atomic replace so an
        # interrupt never leaves a half-written artifact behind.
        atomic_write_text(
            args.out, json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
        print(f"\nsweep artifact written to {args.out}")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


def _cmd_faults_crashpoints(args) -> int:
    """Crash-point exploration over the durability layer (see
    :mod:`repro.runtime.crashpoints`)."""
    import json

    from repro.runtime import atomic_write_text, crashpoints

    report = crashpoints.explore(
        base_dir=args.workdir, max_points=args.max_points, keep=args.keep
    )
    by_op: dict = {}
    for p in report.points:
        by_op[p["op"]] = by_op.get(p["op"], 0) + 1
    ops = ", ".join(f"{k}={v}" for k, v in sorted(by_op.items()))
    print(
        f"explored {report.crash_points} crash points over "
        f"{report.ops} durability ops ({ops})"
    )
    bad = [p for p in report.points if p["violations"]]
    for p in bad:
        print(
            f"  VIOLATION at op #{p['seq']} ({p['op']} {p['path']}, "
            f"mode={p['mode']}): {'; '.join(p['violations'])}",
            file=sys.stderr,
        )
    if args.out:
        atomic_write_text(
            args.out, json.dumps(report.to_dict(), indent=1, sort_keys=True) + "\n"
        )
        print(f"report written to {args.out}")
    if report.ok:
        print("every crash point recovered: store clean, resume byte-identical")
        return 0
    print(f"{report.violations} invariant violation(s)", file=sys.stderr)
    return 1


def _parse_run_opts(pairs) -> dict:
    """``--opt key=value`` pairs; values parse as JSON, else stay strings."""
    import json

    opts = {}
    for item in pairs or ():
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise SystemExit(f"--opt expects key=value, got {item!r}")
        try:
            opts[key] = json.loads(raw)
        except json.JSONDecodeError:
            opts[key] = raw
    return opts


def _cmd_run_status(args) -> int:
    """List run journals and their progress (``repro run status``)."""
    from pathlib import Path

    from repro import runtime

    if args.journal:
        paths = [Path(args.journal)]
    else:
        root = runtime.runs_root()
        paths = sorted(root.glob("*.jsonl")) if root.is_dir() else []
        if not paths:
            print(f"no run journals under {root}")
            return 0
    for path in paths:
        records = runtime.load_records(path)
        headers = runtime.run_headers(records)
        if not headers:
            print(f"{path.name}: empty or unreadable journal")
            continue
        head = headers[-1]
        total = int(head.get("trials", 0))
        done = len(runtime.completed_trials(records))
        quarantined = len(
            {
                r["trial"]
                for r in records
                if r.get("type") == "trial" and r.get("status") == "quarantined"
            }
        )
        last = records[-1].get("type")
        if last == "complete":
            state = "complete"
        elif last == "interrupted":
            state = "interrupted (resumable)"
        else:
            state = "incomplete (resumable)"
        line = (
            f"{path.name}: {head.get('experiment')} gen {head.get('generation')} "
            f"{done}/{total} done"
        )
        if quarantined:
            line += f", {quarantined} quarantined"
        print(f"{line} — {state}")
    return 0


def _cmd_run(args) -> int:
    """Supervised, journaled, resumable experiment execution."""
    import json
    from pathlib import Path

    from repro import runtime
    from repro.experiments.common import obs_session

    if args.experiment == "status":
        return _cmd_run_status(args)
    if args.experiment not in runtime.PLANNED_EXPERIMENTS:
        raise SystemExit(
            f"unknown runnable experiment {args.experiment!r}; options: "
            f"{list(runtime.PLANNED_EXPERIMENTS)} (or 'status')"
        )
    plan = runtime.build_plan(args.experiment, _parse_run_opts(args.opt))
    if args.journal:
        journal_path = Path(args.journal)
    else:
        journal_path = (
            runtime.runs_root() / f"{args.experiment}-{plan.digest[:12]}.jsonl"
        )
    journal_path.parent.mkdir(parents=True, exist_ok=True)
    config = runtime.PoolConfig(
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        backoff_base=args.backoff_base,
        backoff_cap=args.backoff_cap,
        degrade_after=args.degrade_after,
        watchdog_grace=args.watchdog_grace,
        seed=args.seed,
    )
    runtime_manifest: dict = {}
    with obs_session(
        args.metrics_out, experiment=args.experiment, runtime=runtime_manifest
    ):
        try:
            report = runtime.run_plan(
                plan, journal_path, config, resume=args.resume
            )
        except runtime.RunInterruptedWithReport as exc:
            report = exc.report
        runtime_manifest.update(report.manifest_info())

    counts = report.counts()
    if report.interrupted:
        print(
            f"interrupted: {counts['done']}/{counts['total']} trials "
            f"checkpointed in {journal_path}",
            file=sys.stderr,
        )
        print(
            f"resume with: python -m repro run {args.experiment} --resume "
            + (f"--journal {journal_path}" if args.journal else ""),
            file=sys.stderr,
        )
        return 130

    mod = runtime.experiment_module(args.experiment)
    merged = mod.merge_trials(plan.opts, report.merge_outcomes())
    print(mod.format_figure(merged))
    if report.journal_degraded:
        print(
            f"warning: journal {journal_path} hit an I/O error mid-run; the "
            "run finished memory-only and cannot be resumed",
            file=sys.stderr,
        )
    quarantined = [o for o in report.outcomes if o.status == "quarantined"]
    print(
        f"\n{counts['done']}/{counts['total']} trials done "
        f"({counts['skipped']} resumed from journal, {counts['degraded']} "
        f"degraded, {len(quarantined)} quarantined); journal: {journal_path}"
    )
    for o in quarantined:
        print(
            f"  quarantined {o.digest[:12]} after {o.attempts} attempts: "
            f"{o.error}",
            file=sys.stderr,
        )
    if args.out:
        # Deterministic payload only: params/results, no timings or attempt
        # counts, so interrupted-then-resumed == uninterrupted, byte for byte.
        payload = {
            "experiment": plan.experiment,
            "opts": plan.opts,
            "plan": plan.digest,
            "result": merged,
            "quarantined": sorted(o.digest for o in quarantined),
        }
        runtime.atomic_write_text(
            args.out, json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"result artifact written to {args.out}")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 1 if quarantined else 0


def _cmd_store(args) -> int:
    """Inspect and manage the content-addressed artifact store."""
    from repro import store

    s = store.get_store()
    if args.action == "ls":
        if s.root is None:
            print("disk tier disabled (REPRO_STORE_DISABLE is set)")
            return 0
        entries = s.entries()
        print(f"store root: {s.root}")
        for e in entries:
            kind = e.meta.get("kind", "?")
            builder = e.meta.get("builder", "?")
            print(f"  {e.digest[:16]}  {kind:<16} {builder:<16} {e.size_bytes:>10} B")
        print(f"{len(entries)} entries, {s.total_bytes()} bytes")
        return 0
    if args.action == "gc":
        report = s.gc(
            max_bytes=args.max_bytes,
            clear=args.clear,
            dry_run=args.dry_run,
            reap_tmp_age=args.reap_tmp_age,
        )
        verb = "would remove" if report["dry_run"] else "removed"
        line = (
            f"{verb} {len(report['removed'])} entries "
            f"({report['freed_bytes']} bytes), kept {len(report['kept'])}"
        )
        if report["reaped_tmp"]:
            line += f", reaped {len(report['reaped_tmp'])} stray temp file(s)"
        print(line)
        return 0
    if args.action == "warm":
        from repro.experiments.common import obs_session

        names = list(args.topo) if args.topo else ["PS-IQ"]
        with obs_session(args.metrics_out, warm=names, scale=args.scale):
            for name in names:
                topo = store.table3_topology(name, scale=args.scale)
                line = f"{name}: {topo.graph.n} routers, {topo.graph.m} links"
                if args.dist:
                    dist = store.distance_table(topo)
                    line += f", distance table {dist.nbytes} bytes"
                print(line)
        for rec in s.resolved():
            print(f"  {rec['tier']:<6} {rec['kind']:<12} {rec['digest'][:16]}")
        if args.metrics_out:
            print(f"metrics written to {args.metrics_out}")
        return 0
    raise SystemExit(f"unknown store action {args.action!r}")


def _cmd_obs(args) -> int:
    from repro.obs import console_summary, load_json

    if args.action != "summary":
        raise SystemExit(f"unknown obs action {args.action!r}")
    print(console_summary(load_json(args.path)))
    return 0


def _collect_route_pairs(args) -> list[list[int]]:
    """Merge ``--src/--dst``, repeated ``--pair`` and ``--pairs-file``."""
    pairs: list[list[int]] = []
    if args.src is not None or args.dst is not None:
        if args.src is None or args.dst is None:
            raise SystemExit("--src and --dst must be given together")
        pairs.append([args.src, args.dst])
    for s, d in args.pair or []:
        pairs.append([int(s), int(d)])
    if args.pairs_file:
        from pathlib import Path

        for lineno, line in enumerate(
            Path(args.pairs_file).read_text().splitlines(), 1
        ):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            fields = line.replace(",", " ").split()
            if len(fields) != 2:
                raise SystemExit(
                    f"{args.pairs_file}:{lineno}: expected 'src dst', "
                    f"got {line!r}"
                )
            pairs.append([int(fields[0]), int(fields[1])])
    if not pairs:
        raise SystemExit(
            "no pairs given; use --src/--dst, --pair, or --pairs-file"
        )
    return pairs


def _cmd_route(args) -> int:
    """Batched route queries through the serve engine (any topology)."""
    from repro.runtime import atomic_write_text
    from repro.serve import BadBatchError, QueryEngine, ShardRegistry

    spec = args.topology
    if spec is None:
        # Legacy invocation: the largest PolarStar at --radix.
        spec = f"polarstar:radix={args.radix}"
    registry = ShardRegistry()
    try:
        shard = registry.load(spec, scale=args.scale)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"cannot resolve topology {spec!r}: {exc}")
    engine = QueryEngine(registry)
    pairs = _collect_route_pairs(args)
    try:
        dists = engine.distances(spec, pairs)
        paths = engine.paths(spec, pairs) if args.op == "path" else None
    except BadBatchError as exc:
        raise SystemExit(str(exc))
    if args.out:
        doc = {
            "schema": "repro.route/v1",
            "topology": spec,
            "scale": args.scale,
            "op": args.op,
            "pairs": [[int(s), int(d)] for s, d in pairs],
            "distances": [int(x) for x in dists],
        }
        if paths is not None:
            doc["paths"] = paths
        atomic_write_text(
            args.out, json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"route artifact written to {args.out}")
        return 0
    star = shard.topology.meta.get("star") if shard.topology else None
    for i, ((s, d), dist) in enumerate(zip(pairs, dists)):
        if dist < 0:
            print(f"{shard.name}: {s} -> {d} unreachable")
            continue
        print(f"{shard.name}: {s} -> {d} in {dist} hops")
        if paths is not None:
            for v in paths[i] or []:
                if star is not None:
                    x, xp = star.split(v)
                    print(f"  router {v} = (supernode {x}, local {xp})")
                else:
                    print(f"  router {v}")
    return 0


def _cmd_serve(args) -> int:
    """Serve subcommands: start the query server / run the bench."""
    if args.action == "start":
        from repro.serve import ServerConfig, run_server

        return run_server(
            ServerConfig(
                topologies=tuple(args.topology),
                scale=args.scale,
                host=args.host,
                port=args.port,
                max_batch=args.max_batch,
                max_delay=args.max_delay,
                max_inflight=args.max_inflight,
                metrics_out=args.metrics_out,
                fault_schedule=args.fault_schedule,
            )
        )
    if args.action == "chaos":
        from repro.runtime import atomic_write_text
        from repro.serve import ChaosConfig, format_chaos, run_chaos

        doc = run_chaos(
            ChaosConfig(
                topology=args.topology[0],
                scale=args.scale,
                batches=args.batches,
                batch_size=args.batch_size,
                epochs=args.epochs,
                kills=args.kills,
                fail_fraction=args.fail_fraction,
                fail_nodes=args.fail_nodes,
                seed=args.seed,
                deadline_ms=args.deadline_ms,
            )
        )
        print(format_chaos(doc))
        if args.out:
            atomic_write_text(
                args.out, json.dumps(doc, indent=2, sort_keys=True) + "\n"
            )
            print(f"chaos report written to {args.out}")
        return 0 if doc["ok"] else 1
    if args.action == "bench":
        return _run_serve_bench(args)
    raise SystemExit(f"unknown serve action {args.action!r}")


def _run_serve_bench(args) -> int:
    """Shared body of ``repro serve bench`` and ``repro bench serve``."""
    from repro.runtime import atomic_write_text
    from repro.serve import format_bench, run_bench

    doc = run_bench(
        args.topology[0],
        scale=args.scale,
        pairs=args.pairs,
        batch_sizes=tuple(args.batch_sizes),
        concurrency=args.concurrency,
        seed=args.seed,
        host=args.host,
        port=args.port,
    )
    print(format_bench(doc))
    if args.out:
        atomic_write_text(
            args.out, json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"bench report written to {args.out}")
    return 0


def _cmd_bench(args) -> int:
    """Bench subcommands: schema-versioned perf reports (``repro bench``)."""
    if args.action == "serve":
        return _run_serve_bench(args)
    if args.action == "packet":
        from repro.bench import format_bench, quick_preset, run_bench
        from repro.runtime import atomic_write_text
        from repro.sim.packet import PacketSimConfig

        if args.quick:
            preset = quick_preset()
            names = tuple(args.names) if args.names else preset["names"]
            loads = tuple(args.loads) if args.loads else preset["loads"]
            config = preset["config"]
            if args.seed is not None:
                config.seed = args.seed
        else:
            from repro.bench import FIG09_LOADS, FIG09_NAMES

            names = tuple(args.names) if args.names else FIG09_NAMES
            loads = tuple(args.loads) if args.loads else FIG09_LOADS
            config = PacketSimConfig(
                seed=args.seed if args.seed is not None else 1
            )
        doc = run_bench(
            names=names,
            loads=loads,
            scale=args.scale,
            pattern=args.pattern,
            config=config,
            repeats=args.repeats,
        )
        print(format_bench(doc))
        if args.out:
            atomic_write_text(
                args.out, json.dumps(doc, indent=2, sort_keys=True) + "\n"
            )
            print(f"bench report written to {args.out}")
        if not doc["parity"]:
            print(
                "ENGINE PARITY FAILURE: SoA and reference results diverged",
                file=sys.stderr,
            )
            return 1
        if doc["totals"]["speedup"] < args.min_speedup:
            print(
                f"speedup {doc['totals']['speedup']:.2f}x is below the "
                f"--min-speedup floor {args.min_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        return 0
    raise SystemExit(f"unknown bench action {args.action!r}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    t = sub.add_parser("topology", help="build a topology and report basics")
    t.add_argument("kind", choices=["ps", "df", "hx"])
    t.add_argument("--radix", type=int, default=15)
    t.add_argument("--p", type=int, default=None, help="endpoints per router")
    t.add_argument("--a", type=int, default=12, help="dragonfly group size")
    t.add_argument("--h", type=int, default=6, help="dragonfly global links")
    t.add_argument("--dims", default="9x9x8", help="hyperx dims, e.g. 9x9x8")
    t.set_defaults(fn=_cmd_topology)

    d = sub.add_parser("design-space", help="list feasible PolarStar configs")
    d.add_argument("radix", type=int)
    d.set_defaults(fn=_cmd_design_space)

    e = sub.add_parser("experiment", help="regenerate a paper table/figure")
    e.add_argument("name", help=f"one of {EXPERIMENTS}")
    e.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable repro.obs for the run and export the JSON artifact here",
    )
    e.set_defaults(fn=_cmd_experiment)

    r = sub.add_parser(
        "route", help="batched route queries on any store-resolvable topology"
    )
    r.add_argument(
        "--topology",
        default=None,
        metavar="SPEC",
        help="topology spec: a Table 3 label (PS-IQ, DF, ...) or "
        "builder:key=value,... (default: polarstar:radix=RADIX)",
    )
    r.add_argument(
        "--scale", choices=["full", "reduced"], default="full",
        help="Table 3 instance scale",
    )
    r.add_argument("--radix", type=int, default=15,
                   help="legacy shorthand for --topology polarstar:radix=N")
    r.add_argument("--src", type=int, default=None)
    r.add_argument("--dst", type=int, default=None)
    r.add_argument(
        "--pair", nargs=2, type=int, action="append", metavar=("SRC", "DST"),
        help="query pair (repeatable)",
    )
    r.add_argument(
        "--pairs-file", default=None, metavar="PATH",
        help="file of 'src dst' lines (comments with #)",
    )
    r.add_argument("--op", choices=["distance", "path"], default="path")
    r.add_argument(
        "--out", default=None, metavar="PATH",
        help="write a byte-deterministic JSON artifact instead of text",
    )
    r.set_defaults(fn=_cmd_route)

    sv = sub.add_parser(
        "serve", help="batched route-query service over shared tables"
    )
    svsub = sv.add_subparsers(dest="action", required=True)

    svs = svsub.add_parser("start", help="start the NDJSON query server")
    svs.add_argument(
        "--topology", action="append", required=True, metavar="SPEC",
        help="topology spec to serve (repeatable)",
    )
    svs.add_argument("--scale", choices=["full", "reduced"], default="full")
    svs.add_argument("--host", default="127.0.0.1")
    svs.add_argument("--port", type=int, default=0,
                     help="TCP port (0 = ephemeral, printed in the ready banner)")
    svs.add_argument("--max-batch", type=int, default=4096,
                     help="coalescing window flushes at this many pairs")
    svs.add_argument("--max-delay", type=float, default=0.002,
                     help="coalescing window flushes after this many seconds")
    svs.add_argument("--max-inflight", type=int, default=65536,
                     help="admitted-pair cap before 429 rejection")
    svs.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="enable repro.obs for the server lifetime, export JSON here",
    )
    svs.add_argument(
        "--fault-schedule", default=None, metavar="PATH",
        help="apply this fault-schedule JSON (repro faults schedule) as the "
        "initial epoch before accepting queries",
    )
    svs.set_defaults(fn=_cmd_serve)

    svc = svsub.add_parser(
        "chaos",
        help="chaos harness: query burst vs fault epochs + SIGKILL/restart",
    )
    svc.add_argument(
        "--topology", action="append", required=True, metavar="SPEC",
        help="topology spec to serve and verify against the offline oracle",
    )
    svc.add_argument("--scale", choices=["full", "reduced"], default="full")
    svc.add_argument("--batches", type=int, default=40,
                     help="query batches in the burst")
    svc.add_argument("--batch-size", type=int, default=64,
                     help="pairs per batch")
    svc.add_argument("--epochs", type=int, default=2,
                     help="fault epochs applied mid-burst")
    svc.add_argument("--kills", type=int, default=1,
                     help="SIGKILL/restart cycles injected mid-burst")
    svc.add_argument("--fail-fraction", type=float, default=0.02,
                     help="links failed per epoch (seeded)")
    svc.add_argument("--fail-nodes", type=int, default=1,
                     help="routers downed in the first epoch")
    svc.add_argument("--seed", type=int, default=0)
    svc.add_argument("--deadline-ms", type=float, default=5000.0,
                     help="per-request deadline propagated to the server")
    svc.add_argument("--out", default=None, metavar="PATH",
                     help="write the chaos report JSON here")
    svc.set_defaults(fn=_cmd_serve)

    svb = svsub.add_parser("bench", help="throughput bench / load generator")
    svb.add_argument(
        "--topology", action="append", required=True, metavar="SPEC",
        help="topology spec to bench",
    )
    svb.add_argument("--scale", choices=["full", "reduced"], default="full")
    svb.add_argument("--pairs", type=int, default=65536,
                     help="random pairs per measured run")
    svb.add_argument(
        "--batch-sizes", type=int, nargs="+", default=[1, 64, 4096],
        metavar="N",
    )
    svb.add_argument("--concurrency", type=int, default=4,
                     help="client threads in server mode")
    svb.add_argument("--seed", type=int, default=0)
    svb.add_argument("--host", default="127.0.0.1")
    svb.add_argument("--port", type=int, default=None,
                     help="also drive a live server at this port")
    svb.add_argument("--out", default=None, metavar="PATH",
                     help="write the BENCH_serve.json report here")
    svb.set_defaults(fn=_cmd_serve)

    b = sub.add_parser(
        "bench", help="performance benchmarks with checked-in JSON reports"
    )
    bsub = b.add_subparsers(dest="action", required=True)

    bp = bsub.add_parser(
        "packet",
        help="SoA packet engine vs the scalar reference on the fig09 sweep",
    )
    bp.add_argument(
        "--names", nargs="+", default=None, metavar="NAME",
        help="Table 3 topology labels (default: the fig09 packet set)",
    )
    bp.add_argument(
        "--loads", nargs="+", type=float, default=None, metavar="LOAD",
        help="offered-load grid (default: the fig09 grid 0.1..0.9)",
    )
    bp.add_argument("--scale", choices=["full", "reduced"], default="reduced")
    bp.add_argument("--pattern", default="uniform",
                    help="fig09 traffic pattern name")
    bp.add_argument("--seed", type=int, default=None,
                    help="simulator seed (default 1)")
    bp.add_argument("--repeats", type=int, default=1,
                    help="timed runs per engine per point; best is kept")
    bp.add_argument(
        "--quick", action="store_true",
        help="CI perf-smoke preset: one PS-IQ point with shortened cycles",
    )
    bp.add_argument(
        "--min-speedup", type=float, default=0.0, metavar="X",
        help="exit non-zero unless total speedup >= X (CI floor)",
    )
    bp.add_argument("--out", default=None, metavar="PATH",
                    help="write the BENCH_packet.json report here")
    bp.set_defaults(fn=_cmd_bench)

    bs = bsub.add_parser(
        "serve", help="alias of `repro serve bench` under the bench umbrella"
    )
    bs.add_argument(
        "--topology", action="append", required=True, metavar="SPEC",
        help="topology spec to bench",
    )
    bs.add_argument("--scale", choices=["full", "reduced"], default="full")
    bs.add_argument("--pairs", type=int, default=65536,
                    help="random pairs per measured run")
    bs.add_argument(
        "--batch-sizes", type=int, nargs="+", default=[1, 64, 4096],
        metavar="N",
    )
    bs.add_argument("--concurrency", type=int, default=4,
                    help="client threads in server mode")
    bs.add_argument("--seed", type=int, default=0)
    bs.add_argument("--host", default="127.0.0.1")
    bs.add_argument("--port", type=int, default=None,
                    help="also drive a live server at this port")
    bs.add_argument("--out", default=None, metavar="PATH",
                    help="write the BENCH_serve.json report here")
    bs.set_defaults(fn=_cmd_bench)

    s = sub.add_parser(
        "sim", help="run the packet simulator on a small PolarStar instance"
    )
    s.add_argument("--radix", type=int, default=7, help="PolarStar network radix")
    s.add_argument("--p", type=int, default=2, help="endpoints per router")
    s.add_argument("--load", type=float, default=0.3, help="offered load in [0, 1]")
    s.add_argument("--pattern", choices=["uniform", "permutation"], default="uniform")
    s.add_argument("--adaptive", action="store_true", help="UGAL-L injection choice")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--warmup-cycles", type=int, default=300)
    s.add_argument("--measure-cycles", type=int, default=1500)
    s.add_argument("--drain-cycles", type=int, default=1500)
    s.add_argument(
        "--fail-links",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="fail this fraction of links at t=0 (seeded by --seed)",
    )
    s.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable repro.obs for the run and export the JSON artifact here",
    )
    s.add_argument(
        "--engine",
        choices=["soa", "reference"],
        default="soa",
        help="packet-sim execution strategy: the struct-of-arrays kernel "
        "(default) or the pinned scalar reference loop (byte-identical "
        "results; the reference exists for parity checks and benchmarks)",
    )
    s.set_defaults(fn=_cmd_sim)

    f = sub.add_parser("faults", help="fault-injection runs and sweeps")
    fsub = f.add_subparsers(dest="action", required=True)

    fi = fsub.add_parser(
        "inject", help="one fault-injected packet-sim run on a small PolarStar"
    )
    fi.add_argument("--radix", type=int, default=7, help="PolarStar network radix")
    fi.add_argument("--p", type=int, default=2, help="endpoints per router")
    fi.add_argument("--load", type=float, default=0.3)
    fi.add_argument("--seed", type=int, default=0)
    fi.add_argument("--warmup-cycles", type=int, default=300)
    fi.add_argument("--measure-cycles", type=int, default=1500)
    fi.add_argument("--drain-cycles", type=int, default=1500)
    fi.add_argument(
        "--fail-links", type=float, default=0.0, metavar="FRAC",
        help="fraction of links failed permanently at --fault-time",
    )
    fi.add_argument(
        "--fail-nodes", type=int, default=0, metavar="N",
        help="routers failed permanently at --fault-time",
    )
    fi.add_argument(
        "--flap-links", type=int, default=0, metavar="N",
        help="links flapping (down 200 / up 800 cycles) until measurement ends",
    )
    fi.add_argument(
        "--degrade-links", type=float, default=0.0, metavar="FRAC",
        help="fraction of links serializing --degrade-factor x slower",
    )
    fi.add_argument("--degrade-factor", type=float, default=2.0)
    fi.add_argument(
        "--fault-time", type=int, default=0,
        help="injection cycle for permanent failures and degrades",
    )
    fi.add_argument("--metrics-out", default=None, metavar="PATH")
    fi.add_argument(
        "--engine",
        choices=["soa", "reference"],
        default="soa",
        help="packet-sim execution strategy (results are byte-identical)",
    )
    fi.set_defaults(fn=_cmd_faults_inject)

    fg = fsub.add_parser(
        "schedule",
        help="generate a deterministic fault-schedule JSON for serve start",
    )
    fg.add_argument(
        "--topology", default="PS-IQ", metavar="SPEC",
        help="topology spec the schedule is validated against",
    )
    fg.add_argument("--scale", choices=["full", "reduced"], default="full")
    fg.add_argument(
        "--fail-links", type=float, default=0.05, metavar="FRAC",
        help="fraction of links failed (seeded)",
    )
    fg.add_argument(
        "--fail-nodes", type=int, default=0, metavar="N",
        help="routers failed (seeded with --seed + 1)",
    )
    fg.add_argument("--seed", type=int, default=0)
    fg.add_argument(
        "--label", type=int, default=1,
        help="epoch label the server installs the schedule under",
    )
    fg.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the schedule JSON here (default: stdout)",
    )
    fg.set_defaults(fn=_cmd_faults_schedule)

    fs = fsub.add_parser(
        "sweep",
        help="delivered fraction vs failed-link fraction (fig14_dynamic)",
    )
    fs.add_argument(
        "--topo", action="append", default=None,
        help="Table 3 topology name (repeatable; default PS-IQ)",
    )
    fs.add_argument(
        "--fractions", default="0,0.05,0.1,0.15,0.2,0.3",
        help="comma-separated failed-link fractions",
    )
    fs.add_argument("--load", type=float, default=0.3)
    fs.add_argument("--seed", type=int, default=0)
    fs.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the deterministic JSON sweep artifact here",
    )
    fs.add_argument("--metrics-out", default=None, metavar="PATH")
    fs.set_defaults(fn=_cmd_faults_sweep)

    fc = fsub.add_parser(
        "crashpoints",
        help="simulate a power cut at every durability op (store populate + "
        "journaled sweep) and verify recovery invariants",
    )
    fc.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the deterministic crash-point report JSON here",
    )
    fc.add_argument(
        "--max-points", type=int, default=None, metavar="N",
        help="explore only the first N crash points (smoke mode)",
    )
    fc.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="sandbox directory (default: a fresh temp dir, removed on exit)",
    )
    fc.add_argument(
        "--keep", action="store_true",
        help="keep every crash sandbox on disk for post-mortems",
    )
    fc.set_defaults(fn=_cmd_faults_crashpoints)

    ru = sub.add_parser(
        "run",
        help="run a trial-decomposed experiment on the supervised worker "
        "pool with checkpoint/resume (or 'status' to list journals)",
    )
    ru.add_argument(
        "experiment",
        help="experiment to run (fig09, fig10, fig14_dynamic, tab03, chaos) "
        "or 'status'",
    )
    ru.add_argument("--jobs", type=int, default=1, help="worker processes")
    ru.add_argument(
        "--timeout", type=float, default=300.0,
        help="per-trial wall-clock budget in seconds (0 disables)",
    )
    ru.add_argument(
        "--retries", type=int, default=3,
        help="extra attempts per trial before quarantine",
    )
    ru.add_argument(
        "--resume", action="store_true",
        help="skip trials already checkpointed in the journal",
    )
    ru.add_argument(
        "--journal", default=None, metavar="PATH",
        help="checkpoint journal (default: runs dir, keyed by plan digest)",
    )
    ru.add_argument(
        "--opt", action="append", default=None, metavar="KEY=VALUE",
        help="experiment option (value parsed as JSON; repeatable), e.g. "
        "--opt names='[\"PS-IQ\"]' --opt cycles='[30,80,80]'",
    )
    ru.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the deterministic merged-result JSON artifact here",
    )
    ru.add_argument("--backoff-base", type=float, default=0.5)
    ru.add_argument("--backoff-cap", type=float, default=30.0)
    ru.add_argument(
        "--degrade-after", type=int, default=2,
        help="timeout-class failures before degrading trial fidelity",
    )
    ru.add_argument(
        "--watchdog-grace", type=float, default=15.0,
        help="stale-heartbeat seconds before a worker counts as hung",
    )
    ru.add_argument("--seed", type=int, default=0, help="retry-jitter seed")
    ru.add_argument("--metrics-out", default=None, metavar="PATH")
    ru.set_defaults(fn=_cmd_run)

    st = sub.add_parser("store", help="inspect/manage the artifact store")
    stsub = st.add_subparsers(dest="action", required=True)

    sls = stsub.add_parser("ls", help="list complete on-disk artifacts")
    sls.set_defaults(fn=_cmd_store)

    sgc = stsub.add_parser("gc", help="reclaim broken or excess entries")
    sgc.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="evict least-recently-used entries until the store fits N bytes",
    )
    sgc.add_argument("--clear", action="store_true", help="remove every entry")
    sgc.add_argument(
        "--dry-run", action="store_true", help="report only; delete nothing"
    )
    sgc.add_argument(
        "--reap-tmp-age", type=float, default=3600.0, metavar="SECONDS",
        help="also reap stray .tmp-* files older than this (crashed writers; "
        "default 1 hour — old enough to never race a live writer)",
    )
    sgc.set_defaults(fn=_cmd_store)

    sw = stsub.add_parser(
        "warm", help="pre-build Table 3 artifacts so later runs start warm"
    )
    sw.add_argument(
        "--topo", action="append", default=None,
        help="Table 3 topology name (repeatable; default PS-IQ)",
    )
    sw.add_argument("--scale", choices=["full", "reduced"], default="full")
    sw.add_argument(
        "--dist", action="store_true",
        help="also build (and persist) the BFS distance table",
    )
    sw.add_argument("--metrics-out", default=None, metavar="PATH")
    sw.set_defaults(fn=_cmd_store)

    o = sub.add_parser("obs", help="inspect an exported observability artifact")
    o.add_argument("action", choices=["summary"], help="summary: render for humans")
    o.add_argument("path", help="JSON artifact written by --metrics-out")
    o.set_defaults(fn=_cmd_obs)

    return p


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        # Commands that manage their own signal policy (repro run) never get
        # here; everything else exits with the conventional SIGINT code.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
