"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro topology ps --radix 15          # build + report
    python -m repro topology df --a 12 --h 6
    python -m repro design-space 24                 # feasible configs
    python -m repro experiment fig01                # regenerate an artifact
    python -m repro experiment tab03
    python -m repro route --radix 15 --src 0 --dst 900

``experiment`` accepts any module name from :mod:`repro.experiments`
(fig01, fig04, fig07, fig09, fig10, fig11, fig12, fig13, fig14, tab01,
tab02, tab03, eq12, sec08).
"""

from __future__ import annotations

import argparse
import importlib
import sys

__all__ = [
    "EXPERIMENTS",
    "build_parser",
    "main",
]

EXPERIMENTS = [
    "fig01",
    "fig04",
    "fig07",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "tab01",
    "tab02",
    "tab03",
    "eq12",
    "sec08",
]


def _cmd_topology(args) -> int:
    from repro.analysis import diameter
    from repro.topologies import (
        dragonfly_topology,
        hyperx_topology,
        polarstar_topology,
    )

    if args.kind == "ps":
        topo = polarstar_topology(args.radix, p=args.p)
    elif args.kind == "df":
        topo = dragonfly_topology(a=args.a, h=args.h, p=args.p)
    elif args.kind == "hx":
        dims = tuple(int(x) for x in args.dims.split("x"))
        topo = hyperx_topology(dims, p=args.p)
    else:
        raise SystemExit(f"unknown topology kind {args.kind!r}")

    g = topo.graph
    print(f"{topo.name}: {g.n} routers, {g.m} links, network radix "
          f"{topo.network_radix}, {topo.num_endpoints} endpoints")
    print(f"diameter: {diameter(g, sample=min(g.n, 64)):.0f}")
    if topo.groups is not None:
        print(f"groups: {topo.num_groups}")
    return 0


def _cmd_design_space(args) -> int:
    from repro.core.polarstar import design_space

    for cfg in design_space(args.radix):
        marker = " <- largest" if cfg == design_space(args.radix)[0] else ""
        print(f"{cfg.name:36s} {cfg.order:8d} routers{marker}")
    return 0


def _cmd_experiment(args) -> int:
    if args.name not in EXPERIMENTS:
        raise SystemExit(f"unknown experiment {args.name!r}; options: {EXPERIMENTS}")
    mod = importlib.import_module(f"repro.experiments.{args.name}")
    result = mod.run()
    print(mod.format_figure(result))
    return 0


def _cmd_route(args) -> int:
    from repro.core.polarstar import best_config, build_polarstar
    from repro.routing import PolarStarRouter, route_path

    cfg = best_config(args.radix)
    if cfg is None:
        raise SystemExit(f"no PolarStar at radix {args.radix}")
    star = build_polarstar(cfg)
    router = PolarStarRouter(star)
    path = route_path(router, args.src, args.dst)
    print(f"{cfg.name}: {args.src} -> {args.dst} in {len(path) - 1} hops")
    for v in path:
        x, xp = star.split(v)
        print(f"  router {v} = (supernode {x}, local {xp})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    t = sub.add_parser("topology", help="build a topology and report basics")
    t.add_argument("kind", choices=["ps", "df", "hx"])
    t.add_argument("--radix", type=int, default=15)
    t.add_argument("--p", type=int, default=None, help="endpoints per router")
    t.add_argument("--a", type=int, default=12, help="dragonfly group size")
    t.add_argument("--h", type=int, default=6, help="dragonfly global links")
    t.add_argument("--dims", default="9x9x8", help="hyperx dims, e.g. 9x9x8")
    t.set_defaults(fn=_cmd_topology)

    d = sub.add_parser("design-space", help="list feasible PolarStar configs")
    d.add_argument("radix", type=int)
    d.set_defaults(fn=_cmd_design_space)

    e = sub.add_parser("experiment", help="regenerate a paper table/figure")
    e.add_argument("name", help=f"one of {EXPERIMENTS}")
    e.set_defaults(fn=_cmd_experiment)

    r = sub.add_parser("route", help="route analytically on a PolarStar")
    r.add_argument("--radix", type=int, default=15)
    r.add_argument("--src", type=int, required=True)
    r.add_argument("--dst", type=int, required=True)
    r.set_defaults(fn=_cmd_route)

    return p


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
