"""Canonical content-addressed keys for derived artifacts.

An :class:`ArtifactKey` is the identity of one cached artifact: the kind of
artifact (``"topology"``, ``"dist_table"``, ...), the builder or algorithm
name that produces it, its parameters, and the store schema version.  The
key digest is a SHA-256 over the *canonical JSON* encoding of those four
fields, so it is stable across processes, platforms and dict orderings —
two processes asking for the same ``(builder, params)`` always land on the
same on-disk entry.

Derived artifacts of a concrete graph (distance tables, bisection cuts)
are keyed by :func:`graph_digest` — a content hash of the graph's canonical
edge array — so they are shared between any two topologies or runs that
produce the same structure graph (e.g. the ER_q graphs PolarStar shares
with PolarFly, arXiv:2208.01695).

Invalidation contract: bump :data:`SCHEMA_VERSION` whenever the serialized
layout *or the semantics of any builder* changes; old entries then simply
miss (they are reclaimed by ``repro store gc``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.graphs.base import Graph

__all__ = [
    "SCHEMA_VERSION",
    "ArtifactKey",
    "canonical_params",
    "graph_digest",
]

#: Store-wide schema version, hashed into every key.  Bump on any change to
#: artifact serialization or builder semantics (see module docstring).
SCHEMA_VERSION = 1


def canonical_params(obj: Any) -> Any:
    """Recursively coerce *obj* to a canonical JSON-safe structure.

    Tuples become lists, NumPy scalars become Python scalars, dict keys are
    stringified (ordering is handled by ``sort_keys`` at hash time).  Any
    value outside that vocabulary raises ``TypeError`` — artifact keys must
    never depend on ``repr`` of arbitrary objects, which is not stable.
    """
    if isinstance(obj, dict):
        return {str(k): canonical_params(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical_params(v) for v in obj]
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        if obj != obj or obj in (float("inf"), float("-inf")):
            raise TypeError("non-finite floats cannot appear in artifact keys")
        return obj
    raise TypeError(
        f"artifact key parameter of type {type(obj).__name__!r} is not "
        "canonical-JSON-safe; pass primitives (or lists/tuples of them)"
    )


@dataclass(frozen=True)
class ArtifactKey:
    """Identity of one cached artifact; ``digest`` is its content address."""

    kind: str
    builder: str
    params: dict = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.kind or not self.builder:
            raise ValueError("ArtifactKey needs a non-empty kind and builder")
        object.__setattr__(self, "params", canonical_params(self.params))

    def canonical_json(self) -> str:
        """Deterministic JSON encoding (the hashed bytes)."""
        return json.dumps(
            {
                "kind": self.kind,
                "builder": self.builder,
                "params": self.params,
                "schema": self.schema,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @property
    def digest(self) -> str:
        """SHA-256 hex digest of the canonical encoding."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def describe(self) -> dict:
        """Sidecar-metadata / manifest form of the key."""
        return {
            "kind": self.kind,
            "builder": self.builder,
            "params": self.params,
            "schema": self.schema,
            "digest": self.digest,
        }


def graph_digest(graph: Graph) -> str:
    """Content hash of a graph's canonical structure.

    Hashes ``n``, the lexicographically-sorted canonical ``(u < v)`` edge
    array and the self-loop set — exactly the fields :class:`Graph`
    normalizes on construction — so isomorphic-but-relabeled graphs hash
    differently (routing tables are label-sensitive) while any two ways of
    *building* the same labeled graph hash identically.
    """
    h = hashlib.sha256()
    h.update(b"repro.graph/v1")
    h.update(int(graph.n).to_bytes(8, "little"))
    h.update(np.ascontiguousarray(graph.edge_array, dtype=np.int64).tobytes())
    h.update(b"|loops|")
    h.update(np.ascontiguousarray(graph.self_loops, dtype=np.int64).tobytes())
    return h.hexdigest()
