"""Topology-builder registry: the name half of the artifact key scheme.

Every topology constructor in :mod:`repro.topologies` registers itself
here under a stable builder name (``"polarstar"``, ``"table3"``, ...).
Consumers never import constructors directly any more — they ask
:func:`repro.store.topology` for ``(builder, params)`` and the store
resolves the name through this registry, caching the result in the
content-addressed artifact store.

This module is deliberately a *leaf*: it imports nothing from the rest of
``repro``, so the topology modules (which sit below the store in the layer
diagram, see ``docs/ARCHITECTURE.md``) can import it at module scope to
self-register without creating an import cycle.

Registered builder parameters must be canonical-JSON-safe (primitives and
nested lists/tuples of primitives) because they are hashed into the
artifact key — see :mod:`repro.store.keys`.
"""

from __future__ import annotations

from typing import Callable, Iterable

__all__ = [
    "register_topology",
    "resolve_builder",
    "registered_builders",
]

#: builder name -> constructor taking keyword params and returning a Topology.
_BUILDERS: dict[str, Callable] = {}


def register_topology(name: str, fn: Callable) -> Callable:
    """Register *fn* as the topology builder called *name*.

    Idempotent for the same function object (modules may be re-imported);
    registering a *different* function under an existing name is an error —
    silently replacing a builder would change what an artifact key means.
    """
    if not name or not name.replace("-", "").replace("_", "").isalnum():
        raise ValueError(f"builder name {name!r} is not a valid registry key")
    existing = _BUILDERS.get(name)
    if existing is not None and existing is not fn:
        raise ValueError(
            f"builder {name!r} already registered as {existing!r}; "
            f"refusing to replace it with {fn!r}"
        )
    _BUILDERS[name] = fn
    return fn


def resolve_builder(name: str) -> Callable:
    """The registered constructor for *name* (KeyError lists the options)."""
    try:
        return _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown topology builder {name!r}; registered: "
            f"{sorted(_BUILDERS)}"
        ) from None


def registered_builders() -> Iterable[str]:
    """Sorted names of every registered builder."""
    return sorted(_BUILDERS)
