"""Deterministic serialization of store artifacts.

A codec turns one artifact value into ``(arrays, payload)`` — a dict of
NumPy arrays (written as one ``.npz`` file) plus a JSON-safe payload dict
(written into the entry's sidecar metadata) — and back.  Decoded values
must be *semantically byte-identical* to the originals: same dtypes, same
shapes, same scalar types where downstream code is sensitive to them.
That is what makes a warm run reproduce a cold run exactly.

Codecs are looked up by name at load time (the sidecar records which codec
wrote the entry), so adding a codec never invalidates existing entries and
removing one degrades to a cache miss.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.graphs.base import Graph
from repro.topologies.base import Topology

__all__ = [
    "Codec",
    "ARRAY",
    "BISECTION",
    "GRAPH",
    "JSON_VALUE",
    "TOPOLOGY",
    "get_codec",
]

#: Meta values that survive a JSON round trip unchanged; anything richer
#: (StarProduct objects, dataclasses, NumPy arrays) makes the owning
#: topology memory-tier-only (see TopologyCodec.can_encode).
_JSON_PRIMITIVES = (str, int, float, bool, type(None))


def _json_safe(value: Any) -> bool:
    if isinstance(value, bool) or isinstance(value, _JSON_PRIMITIVES):
        return True
    return False


class Codec:
    """Base codec: subclasses set ``name`` and implement encode/decode."""

    name = ""

    def can_encode(self, value: Any) -> bool:
        """Whether *value* survives a lossless round trip (default: yes)."""
        return True

    def encode(self, value: Any) -> tuple[dict, dict]:
        """Return ``(arrays, payload)`` for *value*."""
        raise NotImplementedError

    def decode(self, arrays: dict, payload: dict) -> Any:
        """Reconstruct the value from ``(arrays, payload)``."""
        raise NotImplementedError

    def nbytes(self, value: Any) -> int:
        """Approximate in-memory footprint (for metrics / LRU accounting)."""
        arrays, payload = self.encode(value)
        return int(
            sum(a.nbytes for a in arrays.values())
            + len(json.dumps(payload, sort_keys=True))
        )


class ArrayCodec(Codec):
    """A single NumPy array (distance tables, masks); dtype-preserving."""

    name = "array"

    def encode(self, value: Any) -> tuple[dict, dict]:
        arr = np.asarray(value)
        return {"arr": arr}, {"dtype": arr.dtype.str}

    def decode(self, arrays: dict, payload: dict) -> Any:
        arr = arrays["arr"]
        if payload.get("dtype") and arr.dtype.str != payload["dtype"]:
            raise ValueError(
                f"array artifact dtype drifted: {arr.dtype.str} != {payload['dtype']}"
            )
        return arr

    def nbytes(self, value: Any) -> int:
        return int(np.asarray(value).nbytes)


class GraphCodec(Codec):
    """A :class:`Graph` as its canonical arrays plus its name."""

    name = "graph"

    def encode(self, value: Graph) -> tuple[dict, dict]:
        return (
            {
                "edges": value.edge_array,
                "self_loops": value.self_loops,
            },
            {"n": int(value.n), "name": value.name},
        )

    def decode(self, arrays: dict, payload: dict) -> Graph:
        return Graph(
            int(payload["n"]),
            arrays["edges"].reshape(-1, 2),
            arrays["self_loops"],
            name=str(payload["name"]),
        )

    def nbytes(self, value: Graph) -> int:
        return int(value.edge_array.nbytes + value.self_loops.nbytes)


class TopologyCodec(Codec):
    """A :class:`Topology`: graph arrays + endpoint map + groups + meta.

    Only topologies whose ``meta`` holds JSON primitives round-trip; the
    PolarStar/BundleFly topologies carry live star-product objects in
    ``meta["star"]`` (the analytic router needs them), so ``can_encode``
    rejects them and the store keeps those in the memory tier only.
    """

    name = "topology"
    _graph = GraphCodec()

    def can_encode(self, value: Topology) -> bool:
        return all(_json_safe(v) for v in value.meta.values())

    def encode(self, value: Topology) -> tuple[dict, dict]:
        if not self.can_encode(value):
            raise ValueError(
                f"topology {value.name!r} carries non-JSON meta values and "
                "cannot be persisted; cache it in the memory tier only"
            )
        arrays, payload = self._graph.encode(value.graph)
        arrays = dict(arrays)
        arrays["endpoint_router"] = value.endpoint_router
        if value.groups is not None:
            arrays["groups"] = value.groups
        payload = {
            "graph": payload,
            "name": value.name,
            "meta": dict(value.meta),
            "has_groups": value.groups is not None,
        }
        return arrays, payload

    def decode(self, arrays: dict, payload: dict) -> Topology:
        graph = self._graph.decode(
            {"edges": arrays["edges"], "self_loops": arrays["self_loops"]},
            payload["graph"],
        )
        return Topology(
            graph=graph,
            endpoint_router=arrays["endpoint_router"],
            name=str(payload["name"]),
            groups=arrays["groups"] if payload.get("has_groups") else None,
            meta=dict(payload.get("meta", {})),
        )

    def nbytes(self, value: Topology) -> int:
        total = self._graph.nbytes(value.graph) + value.endpoint_router.nbytes
        if value.groups is not None:
            total += value.groups.nbytes
        return int(total)


class BisectionCodec(Codec):
    """A ``(cut_edges, side)`` minimum-bisection estimate."""

    name = "bisection"

    def encode(self, value: Any) -> tuple[dict, dict]:
        cut, side = value
        return {"side": np.asarray(side, dtype=np.int8)}, {"cut": int(cut)}

    def decode(self, arrays: dict, payload: dict) -> Any:
        return int(payload["cut"]), arrays["side"]

    def nbytes(self, value: Any) -> int:
        return int(np.asarray(value[1]).nbytes) + 8


class JsonCodec(Codec):
    """A small JSON-safe value (scalar summaries, distributions as lists)."""

    name = "json"

    def encode(self, value: Any) -> tuple[dict, dict]:
        return {}, {"value": json.loads(json.dumps(value))}

    def decode(self, arrays: dict, payload: dict) -> Any:
        return payload["value"]

    def nbytes(self, value: Any) -> int:
        return len(json.dumps(value, sort_keys=True))


ARRAY = ArrayCodec()
GRAPH = GraphCodec()
TOPOLOGY = TopologyCodec()
BISECTION = BisectionCodec()
JSON_VALUE = JsonCodec()

_BY_NAME = {c.name: c for c in (ARRAY, GRAPH, TOPOLOGY, BISECTION, JSON_VALUE)}


def get_codec(name: str) -> Codec:
    """Codec registered under *name* (KeyError when unknown)."""
    return _BY_NAME[name]
