"""Content-addressed artifact store and the unified construction provider.

``repro.store`` is the single path through which topologies, routing
tables, distance sweeps and bisection cuts are built.  Artifacts are keyed
by a canonical hash of ``(kind, builder, params, schema)`` and cached in
two tiers — a process-wide LRU that preserves object identity, and an
on-disk ``.npz``/JSON layout under ``$REPRO_STORE_DIR`` (default
``~/.cache/repro-store``) shared across processes.

Typical use::

    from repro import store

    topo = store.table3_topology("PS-IQ")      # cached Topology
    router, mode = store.paper_router(topo)    # cached router policy
    dist = store.distance_table(topo)          # cached BFS table

See ``docs/ARCHITECTURE.md`` for the layer diagram, the key scheme and
the fault-epoch invalidation contract.
"""

from repro.store.core import (
    ArtifactStore,
    StoreEntry,
    configure,
    default_root,
    get_store,
)
from repro.store.keys import SCHEMA_VERSION, ArtifactKey, graph_digest
from repro.store.provider import (
    average_path_length,
    bisection_fraction,
    diameter,
    distance_distribution,
    distance_table,
    min_bisection,
    paper_router,
    resolve_topology,
    table3_router,
    table3_topology,
    table_router,
    topology,
)
from repro.store.registry import (
    register_topology,
    registered_builders,
    resolve_builder,
)

__all__ = [
    "ArtifactKey",
    "ArtifactStore",
    "SCHEMA_VERSION",
    "StoreEntry",
    "average_path_length",
    "bisection_fraction",
    "configure",
    "default_root",
    "diameter",
    "distance_distribution",
    "distance_table",
    "get_store",
    "graph_digest",
    "min_bisection",
    "paper_router",
    "register_topology",
    "registered_builders",
    "resolve_builder",
    "resolve_topology",
    "table3_router",
    "table3_topology",
    "table_router",
    "topology",
]
