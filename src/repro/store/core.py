"""The content-addressed, two-tier artifact store.

:class:`ArtifactStore` resolves an :class:`~repro.store.keys.ArtifactKey`
through two tiers:

1. **memory** — a process-wide LRU of decoded values (object identity is
   preserved: two callers asking for the same topology get the *same*
   instance, like the ``lru_cache`` it replaces);
2. **disk** — one ``<digest>.npz`` (arrays) + ``<digest>.json`` (key
   echo, codec name, JSON payload) pair per artifact under the store root,
   written atomically, shared by every process pointed at the same root.
   Concurrent writers are safe without locks: content addressing makes
   racing writes byte-identical, each goes through a process-unique
   O_EXCL temp file and an atomic rename, and a complete sidecar lets
   later writers skip the redundant store (the worker pool in
   :mod:`repro.runtime` leans on this — N workers warming one topology
   cost one build each at worst, never a corrupt entry).

All disk-tier OS calls go through the :class:`repro.faults.io.DiskIo`
seam (temp file is fsync'd before the rename, the parent directory
after it — the full commit protocol is the "Durability contract" table
in ``docs/ARCHITECTURE.md``), so tests and ``repro faults crashpoints``
can substitute :class:`repro.faults.io.FaultyIo` and prove every crash
point recoverable.

On a miss the builder runs once and the result is persisted to both tiers
(disk only when the codec can round-trip it — see
:class:`~repro.store.codecs.TopologyCodec`).  A corrupted disk entry is
never fatal: the load failure is logged, the entry deleted, and the value
rebuilt — cold-run behavior, warm-run price forfeited.

Every resolution increments the ambient :mod:`repro.obs` counters
``store.hit`` (labels ``kind``, ``tier``), ``store.miss`` (label ``kind``)
and ``store.bytes`` (label ``op``), and is recorded in the per-process
digest log that :class:`~repro.obs.RunManifest` embeds as ``artifacts``.

The store root defaults to ``$REPRO_STORE_DIR``, else
``$XDG_CACHE_HOME/repro-store``, else ``~/.cache/repro-store``; setting
``REPRO_STORE_DISABLE=1`` turns the disk tier off entirely.
"""

from __future__ import annotations

import json
import logging
import os
import time
import zipfile
from collections import OrderedDict
from io import BytesIO
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro import obs
from repro.faults.io import DiskIo
from repro.store.codecs import Codec, get_codec
from repro.store.keys import ArtifactKey

__all__ = [
    "ArtifactStore",
    "CORRUPT_ERRORS",
    "StoreEntry",
    "configure",
    "default_root",
    "get_store",
]

logger = logging.getLogger(__name__)

_META_SUFFIX = ".json"
_DATA_SUFFIX = ".npz"


def default_root() -> Path | None:
    """Resolve the disk-tier root from the environment (``None`` = disabled)."""
    if os.environ.get("REPRO_STORE_DISABLE"):
        return None
    explicit = os.environ.get("REPRO_STORE_DIR")
    if explicit:
        return Path(explicit)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-store"


class StoreEntry:
    """One on-disk artifact: its sidecar metadata plus file sizes."""

    __slots__ = ("digest", "meta", "data_path", "meta_path")

    def __init__(
        self, digest: str, meta: dict, data_path: Path, meta_path: Path
    ) -> None:
        self.digest = digest
        self.meta = meta
        self.data_path = data_path
        self.meta_path = meta_path

    @property
    def size_bytes(self) -> int:
        total = 0
        for p in (self.data_path, self.meta_path):
            try:
                total += p.stat().st_size
            except OSError:
                pass
        return total

    @property
    def mtime(self) -> float:
        try:
            return self.meta_path.stat().st_mtime
        except OSError:
            return 0.0


#: Exceptions treated as "this disk entry is corrupt" rather than bugs
#: (public so the crash-point explorer can probe entries read-only).
CORRUPT_ERRORS = (
    OSError,
    ValueError,
    KeyError,
    json.JSONDecodeError,
    zipfile.BadZipFile,
)
_CORRUPT_ERRORS = CORRUPT_ERRORS


class ArtifactStore:
    """Two-tier (memory LRU + on-disk) content-addressed artifact cache."""

    def __init__(
        self,
        root: str | Path | None = None,
        memory_items: int = 256,
        io: DiskIo | None = None,
    ) -> None:
        if memory_items < 1:
            raise ValueError("memory_items must be >= 1")
        self.root = Path(root) if root is not None else None
        self.memory_items = memory_items
        #: the OS-call seam; tests inject :class:`repro.faults.io.FaultyIo`.
        self._io = io if io is not None else DiskIo()
        self._memory: OrderedDict[str, object] = OrderedDict()
        #: digest -> key.describe() + resolution tier, in first-touch order.
        self._resolved: OrderedDict[str, dict] = OrderedDict()

    # -- observability -------------------------------------------------------

    def _count_hit(self, key: ArtifactKey, tier: str) -> None:
        reg = obs.get_registry()
        reg.counter(
            "store.hit",
            help="artifact-store resolutions served from a cache tier",
            labels=("kind", "tier"),
        ).labels(kind=key.kind, tier=tier).inc()

    def _count_miss(self, key: ArtifactKey) -> None:
        reg = obs.get_registry()
        reg.counter(
            "store.miss",
            help="artifact-store resolutions that had to run the builder",
            labels=("kind",),
        ).labels(kind=key.kind).inc()

    def _count_bytes(self, op: str, n: int) -> None:
        reg = obs.get_registry()
        reg.counter(
            "store.bytes",
            help="bytes moved through the artifact store's disk tier",
            labels=("op",),
        ).labels(op=op).inc(n)

    def _record(self, key: ArtifactKey, tier: str) -> None:
        if key.digest not in self._resolved:
            info = key.describe()
            info["tier"] = tier
            self._resolved[key.digest] = info

    def resolved(self) -> list[dict]:
        """Digest log of every artifact resolved by this store instance,
        in first-touch order (embedded into :class:`~repro.obs.RunManifest`)."""
        return [dict(v) for v in self._resolved.values()]

    # -- memory tier ---------------------------------------------------------

    def _memory_get(self, digest: str) -> Any:
        if digest in self._memory:
            self._memory.move_to_end(digest)
            return self._memory[digest]
        return None

    def _memory_put(self, digest: str, value: Any) -> None:
        self._memory[digest] = value
        self._memory.move_to_end(digest)
        while len(self._memory) > self.memory_items:
            self._memory.popitem(last=False)

    # -- disk tier -----------------------------------------------------------

    def _paths(self, digest: str) -> tuple[Path, Path]:
        if self.root is None:
            raise RuntimeError("disk tier is disabled for this store")
        return self.root / (digest + _DATA_SUFFIX), self.root / (digest + _META_SUFFIX)

    def _disk_load(self, key: ArtifactKey) -> Any:
        """Load from disk, or ``None``; deletes and logs corrupt entries."""
        if self.root is None:
            return None
        data_path, meta_path = self._paths(key.digest)
        if not meta_path.is_file():
            return None
        try:
            meta = json.loads(meta_path.read_text())
            codec = get_codec(meta["codec"])
            arrays: dict = {}
            nread = len(meta_path.read_bytes())
            if meta.get("has_arrays"):
                with np.load(data_path, allow_pickle=False) as npz:
                    arrays = {k: npz[k] for k in npz.files}
                nread += data_path.stat().st_size
            value = codec.decode(arrays, meta.get("payload", {}))
        except _CORRUPT_ERRORS as exc:
            logger.warning(
                "store: corrupt entry %s (%s: %s); deleting and rebuilding",
                key.digest[:12],
                type(exc).__name__,
                exc,
            )
            obs.get_registry().counter(
                "store.corrupt_recovered",
                help="corrupt disk entries detected on load, deleted and rebuilt",
                labels=("kind",),
            ).labels(kind=key.kind).inc()
            self._delete_entry(key.digest)
            return None
        self._count_bytes("read", nread)
        return value

    def _disk_store(self, key: ArtifactKey, value: Any, codec: Codec) -> None:
        """Persist one entry; safe under concurrent multi-process writers.

        Entries are content-addressed, so two processes racing on the same
        key write byte-identical files: each writes to its own unique temp
        file (``mkstemp`` — O_EXCL names, never shared) and publishes with
        an atomic ``os.replace``, so whichever rename lands last simply
        re-installs equivalent content and readers never observe a partial
        file.  The sidecar is written after the array blob, and a complete
        sidecar already on disk means some process finished the whole
        entry — this writer skips the redundant I/O (first writer wins).
        """
        if self.root is None:
            return
        data_path, meta_path = self._paths(key.digest)
        if meta_path.is_file():
            return  # a concurrent writer (or an earlier run) beat us to it
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            arrays, payload = codec.encode(value)
            meta = dict(key.describe())
            meta["codec"] = codec.name
            meta["payload"] = payload
            meta["has_arrays"] = bool(arrays)
            nwritten = 0
            if arrays:
                buf = BytesIO()
                np.savez(buf, **arrays)
                nwritten += self._atomic_write(data_path, buf.getvalue())
            # Sidecar last: its presence marks the entry complete.
            blob = json.dumps(meta, sort_keys=True, indent=1).encode("utf-8")
            nwritten += self._atomic_write(meta_path, blob)
            self._count_bytes("write", nwritten)
        except OSError as exc:
            # A read-only or full store root degrades to memory-only caching.
            logger.warning(
                "store: could not persist %s under %s (%s); continuing without "
                "the disk tier for this entry",
                key.digest[:12],
                self.root,
                exc,
            )

    def _atomic_write(self, path: Path, blob: bytes) -> int:
        """Durably publish *blob* at *path* via temp file + atomic rename.

        The full commit protocol (the "Durability contract" in
        ``docs/ARCHITECTURE.md``): an O_EXCL temp file (concurrent writers
        can never interleave into one file), ``fsync`` of the temp so the
        *content* is on media before it becomes reachable, an atomic
        ``replace`` (readers see the old entry, the new one, never a torn
        one), then ``fsync`` of the parent directory so the *rename*
        itself survives power loss.  The temp file is unlinked on any
        failure; one a crash strands anyway is reaped by :meth:`gc`.
        """
        f = self._io.exclusive_create(path.parent, prefix=".tmp-")
        tmp = f.path
        try:
            self._io.write(f, blob)
            self._io.fsync(f)
            self._io.close(f)
            self._io.replace(tmp, path)
            self._io.fsync_dir(path.parent)
            return len(blob)
        except BaseException:
            self._io.close(f)
            try:
                self._io.unlink(tmp)
            except FileNotFoundError:
                pass  # already renamed into place (failure was post-replace)
            except OSError:
                logger.warning("store: stray temp file left behind: %s", tmp)
            raise

    def _delete_entry(self, digest: str) -> None:
        if self.root is None:
            return
        for p in self._paths(digest):
            try:
                self._io.unlink(p)
            except FileNotFoundError:
                pass
            except OSError as exc:
                logger.warning("store: could not delete %s: %s", p, exc)

    # -- resolution ----------------------------------------------------------

    def get_or_build(
        self,
        key: ArtifactKey,
        build: Callable,
        codec: Codec,
        persist: bool | None = None,
    ) -> Any:
        """Resolve *key*: memory tier, then disk tier, then ``build()``.

        ``persist`` controls the disk tier for a freshly built value;
        ``None`` defers to ``codec.can_encode(value)`` (the automatic rule
        that keeps non-round-trippable topologies memory-only).
        """
        digest = key.digest
        value = self._memory_get(digest)
        if value is not None:
            self._count_hit(key, "memory")
            self._record(key, "memory")
            return value
        value = self._disk_load(key)
        if value is not None:
            self._count_hit(key, "disk")
            self._record(key, "disk")
            self._memory_put(digest, value)
            return value
        self._count_miss(key)
        self._record(key, "build")
        value = build()
        self._memory_put(digest, value)
        if persist is None:
            persist = codec.can_encode(value)
        if persist:
            self._disk_store(key, value, codec)
        return value

    # -- inspection & maintenance -------------------------------------------

    def entries(self) -> list[StoreEntry]:
        """Every complete on-disk entry, sorted by digest."""
        if self.root is None or not self.root.is_dir():
            return []
        out = []
        for meta_path in sorted(self.root.glob("*" + _META_SUFFIX)):
            digest = meta_path.name[: -len(_META_SUFFIX)]
            try:
                meta = json.loads(meta_path.read_text())
            except _CORRUPT_ERRORS:
                meta = {}
            out.append(
                StoreEntry(
                    digest, meta, self.root / (digest + _DATA_SUFFIX), meta_path
                )
            )
        return out

    def total_bytes(self) -> int:
        """Disk footprint of every complete entry."""
        return sum(e.size_bytes for e in self.entries())

    def gc(
        self,
        max_bytes: int | None = None,
        clear: bool = False,
        dry_run: bool = False,
        reap_tmp_age: float = 3600.0,
    ) -> dict:
        """Reclaim disk entries; returns a report dict.

        With no arguments only broken entries go: sidecars that fail to
        parse, and entries whose sidecar promises arrays but whose ``.npz``
        is missing.  ``max_bytes`` additionally evicts
        least-recently-modified complete entries until the store fits.
        ``clear`` removes everything.  ``dry_run`` only reports.

        Stray ``.tmp-*`` files older than ``reap_tmp_age`` seconds — left
        behind by writers that crashed between temp-file creation and the
        atomic rename — are reaped too (all of them under ``clear``) and
        reported under ``reaped_tmp``.  The age guard keeps gc from ever
        yanking a temp file out from under a live concurrent writer.
        """
        removed: list[str] = []
        kept: list[str] = []
        entries = self.entries()
        doomed: dict[str, StoreEntry] = {}
        for e in entries:
            broken = not e.meta or (
                e.meta.get("has_arrays") and not e.data_path.is_file()
            )
            if clear or broken:
                doomed[e.digest] = e
        if max_bytes is not None:
            survivors = [e for e in entries if e.digest not in doomed]
            survivors.sort(key=lambda e: e.mtime, reverse=True)  # newest first
            budget = 0
            for e in survivors:
                budget += e.size_bytes
                if budget > max_bytes:
                    doomed[e.digest] = e
        for e in entries:
            if e.digest in doomed:
                removed.append(e.digest)
                if not dry_run:
                    self._delete_entry(e.digest)
            else:
                kept.append(e.digest)
        reaped_tmp, tmp_freed = self._reap_tmp(reap_tmp_age, clear, dry_run)
        return {
            "removed": removed,
            "kept": kept,
            "reaped_tmp": reaped_tmp,
            "freed_bytes": sum(doomed[d].size_bytes for d in removed) + tmp_freed,
            "dry_run": dry_run,
        }

    def _reap_tmp(
        self, max_age: float, clear: bool, dry_run: bool
    ) -> tuple[list[str], int]:
        """Collect stray ``.tmp-*`` files older than *max_age* seconds."""
        if self.root is None or not self.root.is_dir():
            return [], 0
        # File-age GC genuinely needs the same clock st_mtime is stamped
        # with; the cutoff never feeds experiment results.
        now = time.time()  # repro-lint: disable=RL206
        reaped: list[str] = []
        freed = 0
        for tmp in sorted(self.root.glob(".tmp-*")):
            try:
                st = tmp.stat()
            except OSError:
                continue  # lost a race with the writer publishing it
            if not clear and now - st.st_mtime < max_age:
                continue
            reaped.append(tmp.name)
            freed += st.st_size
            if not dry_run:
                try:
                    self._io.unlink(tmp)
                except FileNotFoundError:
                    pass
                except OSError as exc:
                    logger.warning("store: could not reap %s: %s", tmp, exc)
        return reaped, freed

    def clear_memory(self) -> None:
        """Drop the memory tier (tests; the disk tier is untouched)."""
        self._memory.clear()


#: Ambient store, created lazily so importing the library costs nothing.
_STORE: ArtifactStore | None = None


def get_store() -> ArtifactStore:
    """The ambient process-wide store (created from the env on first use)."""
    global _STORE
    if _STORE is None:
        # repro-lint: disable=RL310 -- intentional per-process singleton:
        # each spawn worker lazily builds its own store; cross-process
        # sharing happens only through the disk tier's atomic writes.
        _STORE = ArtifactStore(root=default_root())  # repro-lint: disable=RL310
    return _STORE


def configure(
    root: str | Path | None = None, memory_items: int = 256
) -> ArtifactStore:
    """Install (and return) a fresh ambient store — drivers and tests only.

    ``root=None`` disables the disk tier outright (it does **not** fall
    back to the environment; call :func:`default_root` for that).
    """
    global _STORE
    _STORE = ArtifactStore(root=root, memory_items=memory_items)
    return _STORE
