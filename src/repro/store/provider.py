"""The topology/router/analysis provider: every cacheable construction.

This is the single front door the paper calls for in §9.3: experiments,
the CLI and the simulators resolve topologies, routing tables, distance
sweeps and bisection cuts *here*, and the results flow through the
content-addressed :class:`~repro.store.core.ArtifactStore` instead of
being rebuilt per process (lint rule RL107 enforces the discipline).

Key scheme (see ``docs/ARCHITECTURE.md``):

* ``topology`` artifacts are keyed by **(builder name, params)** from the
  :mod:`~repro.store.registry`;
* derived artifacts (``dist_table``, ``bisection``, ``distance_summary``)
  are keyed by the **content digest of the concrete graph** plus the
  algorithm parameters, so they are shared across topologies and runs that
  produce the same labeled graph.

Invalidation contract: :mod:`repro.faults` deliberately **bypasses** this
layer — fault-epoch distance vectors are keyed by the live
``LinkHealth.epoch`` inside :class:`~repro.faults.router.FaultAwareRouter`
and are never content-addressed, because the degraded graph is an
ephemeral mid-run state, not a reproducible artifact.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:
    from repro.routing import TableRouter

import numpy as np

from repro.analysis import bisection as _bisection
from repro.analysis import distances as _distances
from repro.graphs.base import Graph
# NOTE: repro.routing is imported lazily inside the factory functions below.
# The routing package's policy modules import repro.topologies, which imports
# this store package at module level — a module-level routing import here
# closes that cycle and makes `import repro.routing` order-dependent.
from repro.routing.base import Router
from repro.store import codecs, registry
from repro.store.core import get_store
from repro.store.keys import ArtifactKey, graph_digest
from repro.topologies.base import Topology

__all__ = [
    "topology",
    "table3_topology",
    "resolve_topology",
    "distance_table",
    "table_router",
    "paper_router",
    "table3_router",
    "min_bisection",
    "bisection_fraction",
    "diameter",
    "average_path_length",
    "distance_distribution",
]


def _ensure_builders() -> None:
    """Import the topology package so its builders self-register."""
    import repro.topologies  # noqa: F401  (import for registration side effect)


def _graph_of(subject: Graph | Topology) -> Graph:
    return subject.graph if isinstance(subject, Topology) else subject


# -- topologies --------------------------------------------------------------


def topology(builder: str, **params: Any) -> Topology:
    """Build (or recall) the topology ``builder(**params)`` via the store."""
    _ensure_builders()
    fn = registry.resolve_builder(builder)
    key = ArtifactKey("topology", builder, params)
    return get_store().get_or_build(key, lambda: fn(**params), codecs.TOPOLOGY)


def table3_topology(name: str, scale: str = "full") -> Topology:
    """A Table 3 network by its paper label (``scale='reduced'`` for the
    cycle-level simulator's shrunken analogues)."""
    if scale not in ("full", "reduced"):
        raise ValueError(f"scale must be 'full' or 'reduced', not {scale!r}")
    builder = "table3" if scale == "full" else "table3-reduced"
    return topology(builder, name=name)


def resolve_topology(spec: str, scale: str = "full") -> Topology:
    """Resolve a user-facing topology *spec* string through the store.

    Accepted forms (used by ``repro serve`` / ``repro route``):

    * a Table 3 paper label (``"PS-IQ"``, ``"DF"``, ...) — resolved via
      :func:`table3_topology` at the requested *scale*;
    * a registered builder name with optional parameters,
      ``"polarstar:radix=15,p=5"`` — each value parsed as JSON when
      possible (ints, floats, lists), kept as a string otherwise.
    """
    if not spec or not spec.strip():
        raise ValueError("empty topology spec")
    name, sep, argstr = spec.partition(":")
    name = name.strip()
    if not sep:
        from repro.topologies.table3 import TABLE3_BUILDERS

        if name in TABLE3_BUILDERS:
            return table3_topology(name, scale=scale)
        return topology(name)
    params: dict[str, Any] = {}
    for item in argstr.split(","):
        item = item.strip()
        if not item:
            continue
        key, eq, raw = item.partition("=")
        if not eq or not key:
            raise ValueError(
                f"bad topology spec {spec!r}: parameters must be key=value, "
                f"got {item!r}"
            )
        try:
            params[key.strip()] = json.loads(raw)
        except json.JSONDecodeError:
            params[key.strip()] = raw
    return topology(name, **params)


# -- routing tables ----------------------------------------------------------


def distance_table(subject: Graph | Topology) -> np.ndarray:
    """The full BFS distance matrix of *subject*'s graph (int16), cached by
    graph content — the §9.3 routing-state artifact warm runs never rebuild."""
    graph = _graph_of(subject)
    key = ArtifactKey("dist_table", "bfs-int16", {"graph": graph_digest(graph)})
    from repro.routing.table import build_distance_table

    return get_store().get_or_build(
        key, lambda: build_distance_table(graph), codecs.ARRAY
    )


def table_router(subject: Graph | Topology) -> TableRouter:
    """All-minpath :class:`TableRouter` over the cached distance table."""
    from repro.routing import TableRouter

    graph = _graph_of(subject)
    return TableRouter(graph, dist=distance_table(graph))


def paper_router(topo: Topology) -> tuple[Router, str]:
    """The §9.3 routing policy for each topology:

    * PolarStar — analytic single-minpath routing (§9.2);
    * Dragonfly — hierarchical l-g-l (Booksim's built-in);
    * HyperX — dimension-aligned all-minpath (no tables);
    * SF / BF / MF / FT — all-minpath routing tables.

    Returns ``(router, flow_mode)`` where ``flow_mode`` is "single" or
    "all" for the flow-level model.  The router object itself is cached in
    the memory tier (router state is not serializable; only the distance
    table underneath it persists to disk).
    """
    key = ArtifactKey(
        "paper_router",
        "sec9.3",
        {"graph": graph_digest(topo.graph), "name": topo.name},
    )
    return get_store().get_or_build(
        key, lambda: _build_paper_router(topo), codecs.JSON_VALUE, persist=False
    )


def _build_paper_router(topo: Topology) -> tuple[Router, str]:
    from repro.routing import DragonflyRouter, HyperXRouter, PolarStarRouter

    if "star" in topo.meta and topo.name.startswith("PS"):
        return PolarStarRouter(topo.meta["star"]), "single"
    if "a" in topo.meta and topo.name == "DF":
        return DragonflyRouter(topo), "single"
    if "dims" in topo.meta:
        return HyperXRouter(topo), "all"
    return table_router(topo), "all"


def table3_router(name: str, scale: str = "full") -> tuple[Router, str]:
    """Cached §9.3 ``(router, flow_mode)`` pair for a Table 3 topology."""
    return paper_router(table3_topology(name, scale))


# -- analysis artifacts ------------------------------------------------------


def min_bisection(
    graph: Graph, restarts: int = 2, seed: int = 0
) -> tuple[int, np.ndarray]:
    """Cached minimum-bisection estimate (Fig. 12/13), keyed by graph
    content plus the restart/seed parameters."""
    key = ArtifactKey(
        "bisection",
        "spectral-fm",
        {"graph": graph_digest(graph), "restarts": restarts, "seed": seed},
    )
    return get_store().get_or_build(
        key,
        lambda: _bisection.min_bisection(graph, restarts=restarts, seed=seed),
        codecs.BISECTION,
    )


def bisection_fraction(graph: Graph, restarts: int = 2, seed: int = 0) -> float:
    """Fraction of links crossing the cached minimum-bisection estimate."""
    if graph.m == 0:
        return 0.0
    cut, _ = min_bisection(graph, restarts=restarts, seed=seed)
    return cut / graph.m


def _summary(
    graph: Graph,
    metric: str,
    build: Callable[[], Any],
    sample: int | None,
    seed: int,
) -> Any:
    key = ArtifactKey(
        "distance_summary",
        metric,
        {"graph": graph_digest(graph), "sample": sample, "seed": seed},
    )
    return get_store().get_or_build(key, build, codecs.JSON_VALUE)


def diameter(graph: Graph, sample: int | None = None, seed: int = 0) -> float:
    """Cached :func:`repro.analysis.distances.diameter`."""
    return float(
        _summary(
            graph,
            "diameter",
            lambda: _distances.diameter(graph, sample=sample, seed=seed),
            sample,
            seed,
        )
    )


def average_path_length(
    graph: Graph, sample: int | None = None, seed: int = 0
) -> float:
    """Cached :func:`repro.analysis.distances.average_path_length`."""
    return float(
        _summary(
            graph,
            "apl",
            lambda: _distances.average_path_length(graph, sample=sample, seed=seed),
            sample,
            seed,
        )
    )


def distance_distribution(
    graph: Graph, sample: int | None = None, seed: int = 0
) -> np.ndarray:
    """Cached :func:`repro.analysis.distances.distance_distribution`."""
    out = _summary(
        graph,
        "dist-distribution",
        lambda: _distances.distance_distribution(
            graph, sample=sample, seed=seed
        ).tolist(),
        sample,
        seed,
    )
    return np.asarray(out, dtype=np.float64)
