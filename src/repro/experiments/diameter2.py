"""Context experiment (§2.3): why diameter-2 networks are not enough.

PolarFly and SlimFly approach the diameter-2 Moore bound but that bound is
only ``d² + 1`` — a few thousand routers at feasible radixes.  This
experiment quantifies the scalability ceiling and shows the networks
themselves perform well (uniform saturation) — scale, not performance, is
their limit, exactly the paper's §2.3 framing.
"""

from __future__ import annotations

from repro import store
from repro.core.moore import moore_bound
from repro.experiments.common import format_table
from repro.fields import is_prime_power
from repro.graphs.er_polarity import er_order
from repro.graphs.mms import mms_degree, mms_order
from repro.core.polarstar import polarstar_order
from repro.sim.flow import saturation_load
from repro.topologies.polarfly import PolarFlyRouter
from repro.traffic import UniformRandomPattern

__all__ = [
    "run",
    "format_figure",
]


def run(radixes=(8, 12, 18, 24, 32, 48, 64), sim_q: int = 11) -> dict:
    """Scalability ceiling per radix + PolarFly uniform saturation."""
    rows = []
    for r in radixes:
        q = r - 1
        pf = er_order(q) if q >= 2 and is_prime_power(q) else 0
        sf = 0
        from repro.fields import prime_powers_up_to

        for qq in prime_powers_up_to(r):
            if mms_degree(qq) == r:
                sf = mms_order(qq)
        rows.append(
            {
                "radix": r,
                "moore2": moore_bound(r, 2),
                "polarfly": pf,
                "slimfly": sf,
                "moore3": moore_bound(r, 3),
                "polarstar": polarstar_order(r),
            }
        )

    # Performance check: PolarFly sustains high uniform load with its
    # analytic router, like its diameter-3 descendant.
    topo = store.topology("polarfly", q=sim_q, p=max(1, (sim_q + 1) // 2))
    router = PolarFlyRouter(topo)
    demand = UniformRandomPattern(topo).router_demand()
    pf_sat = saturation_load(topo, router, demand, mode="single")
    table_sat = saturation_load(topo, store.table_router(topo), demand, mode="all")

    return {
        "rows": rows,
        "polarfly_uniform_saturation_analytic": pf_sat,
        "polarfly_uniform_saturation_tables": table_sat,
        "sim_q": sim_q,
    }


def format_figure(result: dict) -> str:
    """Render the scalability table."""
    headers = ["radix", "Moore-2", "PolarFly", "SlimFly", "Moore-3", "PolarStar"]
    rows = [
        [r["radix"], r["moore2"], r["polarfly"] or "-", r["slimfly"] or "-", r["moore3"], r["polarstar"]]
        for r in result["rows"]
    ]
    tail = (
        f"\nPolarFly(q={result['sim_q']}) uniform saturation: "
        f"{result['polarfly_uniform_saturation_analytic']:.2f} (analytic single minpath), "
        f"{result['polarfly_uniform_saturation_tables']:.2f} (all minpaths)"
    )
    return format_table(headers, rows) + tail
