"""EXPERIMENTS.md generator.

Assembles the paper-vs-measured record from the archived benchmark outputs
(``benchmarks/results/*.txt``) plus the static expectation table below.
Regenerate with::

    python -m repro.experiments.report [results_dir] [output_md]
"""

from __future__ import annotations

import sys
from pathlib import Path

__all__ = [
    "EXPECTATIONS",
    "HEADER",
    "generate",
]

#: experiment id -> (title, paper expectation, notes/deviations)
EXPECTATIONS: dict[str, tuple[str, str, str]] = {
    "fig01_moore_efficiency": (
        "Fig. 1 — Moore-bound efficiency of diameter-3 topologies",
        "PolarStar largest at almost all radixes; geomean scale 1.3x over "
        "Bundlefly, 1.9x over Dragonfly, 6.7x over 3-D HyperX; PolarStar "
        "tracks the StarMax bound at ~30% of the Moore bound.",
        "Measured geomeans 1.31x / 1.91x / 6.73x (radix 8-128). Bundlefly "
        "curve uses Paley supernodes as in Lei et al.; Kautz is the "
        "bidirectionalized K(radix/2, 3).  Spectralfly design points are "
        "scanned up to an order cap (LPS construction cost); the Table 3 "
        "point SF(23,13) with diameter 3 is included.",
    ),
    "fig04_diameter2_families": (
        "Fig. 4 — diameter-2 families vs Moore bound",
        "ER largest at almost all degrees, asymptotically reaching the "
        "diameter-2 Moore bound; MMS second; Paley behind.",
        "Reproduced; one known exception at degree 6 where MMS(4) (order 32) "
        "beats ER_5 (31).  The Abas-2017 Cayley curve is omitted (no "
        "machine-readable construction published).",
    ),
    "fig07_design_space": (
        "Fig. 7 — feasible (radix, order) combinations",
        "Multiple configurations per radix for every radix in [8, 128]; "
        "Paley supernode wins only at k = 23, 50, 56, 80.",
        "Reproduced exactly, including the four Paley-winning radixes.",
    ),
    "tab01_properties": (
        "Table 1 — network properties",
        "PolarStar: direct, scalable, stable design space, D<=3, bundlable.",
        "Computed proxies: directness from endpoint attachment, Moore "
        "efficiency at radix 32, config counts, measured endpoint diameter, "
        "parallel links per group pair (1 for DF/MF, 2(d*-q) for PS).",
    ),
    "tab02_supernodes": (
        "Table 2 — supernode comparison",
        "IQ: order 2d'+2, d' ≡ 0,3 (mod 4), R*; Paley: 2d'+1, R1; BDF: 2d'; "
        "complete: d'+1.",
        "All properties machine-verified.  Our explicit BDF construction "
        "covers d' ≡ 0,1 (mod 4) (the order formula is degree-independent).",
    ),
    "tab03_configs": (
        "Table 3 — simulated configurations",
        "8 networks from 648 to 1092 routers, radix 15-36.",
        "All rows match exactly except PS-Pal: the stated construction "
        "(d=9, d'=6 -> ER_8 * Paley(13)) yields 949 routers / 4745 "
        "endpoints, not the printed 993 / 4965 — no (q²+q+1)(2d'+1) "
        "product equals 993 at radix 15, so we take the construction as "
        "authoritative.",
    ),
    "fig09_synthetic_saturation": (
        "Fig. 9 — synthetic traffic (MIN + UGAL)",
        "PS-* sustain >75% on uniform/MIN; UGAL holds 0.4-0.6 across "
        "patterns; DF/MF collapse on bit shuffle; SF/HX sustain the most.",
        "Flow-level saturation at full Table 3 scale.  PS-IQ uniform/MIN "
        "0.785; UGAL 0.39-0.44 across patterns; DF bit-shuffle MIN is 2.4x "
        "below PS-IQ (single inter-group link).  Deterministic single-"
        "minpath MIN makes the worst link the normalizer, so absolute MIN "
        "saturations on permutation-style patterns sit below the cycle-"
        "accurate curves; orderings match.",
    ),
    "fig09_packet_sim_uniform": (
        "Fig. 9 (cycle mechanics) — packet-level latency curves",
        "Latency flat then diverging at saturation.",
        "Event-driven packet simulator (VCs, credit flow control) on "
        "reduced-scale analogues; PS stays stable beyond load 0.5 uniform.",
    ),
    "fig10_adversarial": (
        "Fig. 10 — adversarial traffic",
        "DF and MF saturate lowest (one global link per group pair); BF and "
        "PS-* better; PS-IQ best of the star products; UGAL recovers.",
        "Reproduced: DF MIN saturates ~0.01-0.03, PS-IQ ~0.1 (7x better); "
        "UGAL lifts all topologies to 0.3-0.5.",
    ),
    "fig11_motifs": (
        "Fig. 11 — Allreduce and Sweep3D",
        "PS ~2.4x (MIN) / 1.4x (UGAL) faster than DF on Allreduce; "
        "comparable to FT/HX; Sweep3D margins smaller.",
        "Message-level engine (4 GB/s links, 20 ns latencies, 10 "
        "iterations, linear mapping; minimal routing spreads over minimal "
        "next hops ECMP-style, as Booksim/Merlin do).  Fat-tree is fastest "
        "on Allreduce as in the paper; PS-IQ beats DF under both routings; "
        "Sweep3D within ~20% of DF, matching the paper's 'marginal' "
        "margins.",
    ),
    "fig12_bisection": (
        "Fig. 12 — bisection fraction across topologies",
        "PolarStar ~29.6% avg; Jellyfish/SF higher; BF 22.9%, DF 17.8%, "
        "HX 17.4%, MF 25.5%.",
        "Our estimator (spectral seed + FM refinement, cross-checked "
        "against NetworkX Kernighan-Lin) finds *smaller* PolarStar cuts "
        "(~0.17-0.22) than the paper's METIS estimates; DF (0.17-0.19) and "
        "MF (0.25) match the paper closely.  Orderings preserved: "
        "Jellyfish > PolarStar >= Dragonfly; sweep capped at radix 24 / "
        "4000 routers (pure-Python refinement cost).",
    ),
    "fig13_polarstar_bisection": (
        "Fig. 13 — PolarStar bisection, IQ vs Paley",
        "IQ 29.5% vs Paley 26.6% mean; IQ more stable.",
        "Both supernodes give substantial cuts under our estimator; IQ's "
        "advantage manifests as a much denser feasible design space "
        "(its smoother curve), asserted directly.",
    ),
    "fig14_fault_tolerance": (
        "Fig. 14 — resilience to link failures",
        "PS/BF disconnect ~60%, DF ~65% but DF diameter inflates early; "
        "MF diameter jumps to 6 at ~5% failures; HX/SF most resilient.",
        "Median disconnection ratios and diameter/APL trajectories "
        "reproduced on the Table 3 instances (20 scenarios, sampled BFS).",
    ),
    "eq12_optimal_split": (
        "Eq. 1 / Eq. 2 — scaling laws",
        "Optimal q ≈ 2d*/3; max order ≈ (8d*³+12d*²+18d*)/27 (8/27 of "
        "Moore asymptotically).",
        "Best feasible q within prime-power gaps of the optimum; closed "
        "form within 10% of the exhaustive search at every radix checked.",
    ),
    "sec08_layout": (
        "§8 — layout and bundling",
        "2(d*-q) links per adjacent supernode pair; q(q+1)²/2 MCF bundles; "
        "q+1 clusters with ≈q bundles between pairs; ~2d*/3 cable "
        "reduction.",
        "All counts match exactly on ER_7, ER_11 and ER_13 instances.",
    ),
    "ablation_supernode_kind": (
        "Ablation — supernode kind at fixed (q, d')",
        "IQ > Paley > BDF > complete in order at equal degree; all diameter 3.",
        "Reproduced on ER_7 with degree-4 supernodes.",
    ),
    "ablation_degree_split": (
        "Ablation — degree split around Eq. 1",
        "Order unimodal in q with peak at the Eq. 1 optimum.",
        "Reproduced at radix 16 (peak at q=11 ≈ 2·16/3).",
    ),
    "ablation_minpath_diversity": (
        "Ablation — single vs all minimal paths (§9.3)",
        "SF/BF need all-minpath tables; PolarStar works with one minpath.",
        "Single-path saturation penalty measured for PS/BF/SF on uniform "
        "and permutation demand.",
    ),
    "ablation_diameter2_context": (
        "Context — diameter-2 networks (§2.3)",
        "PolarFly/SlimFly approach the d²+1 Moore bound but span only a "
        "few thousand routers at feasible radixes.",
        "Scalability ceiling measured per radix; PolarFly's analytic "
        "(cross-product) router sustains full uniform load — scale, not "
        "performance, is the diameter-2 limit.",
    ),
    "ablation_collectives": (
        "Extension — Allreduce algorithm x topology",
        "§10.1 cites Rabenseifner (2004): algorithm choice matters as much "
        "as topology.",
        "Ring and Rabenseifner (bandwidth-optimal) beat recursive doubling "
        "at 1 MiB buffers on every Table 3 network.",
    ),
    "ablation_routing_storage": (
        "Ablation — routing-state storage (§9.3)",
        "PolarStar analytic routing 'requires significantly less memory "
        "compared to SF and BF' which store all minpaths per destination.",
        "PS-IQ analytic state 157 KiB vs 2.2 MiB of minpath tables (14x); "
        "Dragonfly's gateway table 42 KiB (36x); BF pays the full cost.",
    ),
    "ablation_ugal_samples": (
        "Ablation — UGAL Valiant sample count",
        "Paper samples 4 intermediates.",
        "4 samples within 10% of 8 on adversarial traffic; 1 sample loses "
        "throughput.",
    ),
}

HEADER = """# EXPERIMENTS — paper vs measured

Every table and figure of *PolarStar: Expanding the Horizon of Diameter-3
Networks* (SPAA 2024), regenerated by `pytest benchmarks/ --benchmark-only`.
Raw outputs live in `benchmarks/results/`; the experiment harnesses in
`src/repro/experiments/` are importable directly (see examples/).

Scale policy: graph-construction and flow-level results run at the paper's
full Table 3 scale; cycle-mechanics (packet simulator) and bisection sweeps
run at reduced scale with the caps documented per experiment — shape and
orderings, not absolute numbers, are the reproduction target (our substrate
is a simulator, not the authors' testbed).
"""


def generate(results_dir: str | Path, out_path: str | Path) -> str:
    """Assemble EXPERIMENTS.md from archived results; returns the text."""
    results_dir = Path(results_dir)
    parts = [HEADER]
    for key, (title, paper, notes) in EXPECTATIONS.items():
        parts.append(f"\n## {title}\n")
        parts.append(f"**Paper:** {paper}\n")
        parts.append(f"**Reproduction notes:** {notes}\n")
        path = results_dir / f"{key}.txt"
        if path.exists():
            parts.append("**Measured:**\n")
            parts.append("```")
            parts.append(path.read_text().rstrip())
            parts.append("```\n")
        else:
            parts.append(f"*(run `pytest benchmarks/` to regenerate `{key}`)*\n")
    text = "\n".join(parts)
    Path(out_path).write_text(text)
    return text


if __name__ == "__main__":
    results = sys.argv[1] if len(sys.argv) > 1 else "benchmarks/results"
    out = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"
    generate(results, out)
    print(f"wrote {out}")
