"""Ablations of PolarStar design choices (DESIGN.md §5).

1. **Supernode kind** at fixed radix: IQ vs Paley vs BDF vs complete —
   scale, bisection, and diameter all from the same star-product machinery.
2. **Degree split** (q vs d') around the Eq. 1 optimum: order and bisection
   as the split moves away from ``q ≈ 2d*/3``.
3. **Single vs all minimal paths**: §9.3 notes SF and BF degrade badly with
   one minpath per pair while PolarStar does not — measured as uniform /
   permutation saturation under the flow model.
4. **UGAL sample count**: adversarial-pattern saturation as the number of
   sampled Valiant intermediates grows (paper uses 4).
"""

from __future__ import annotations

import numpy as np

from repro import store
from repro.core.polarstar import design_space
from repro.core.star_product import star_product
from repro.experiments.common import format_table, table3_instance, table3_router
from repro.graphs.bdf import bdf_supernode
from repro.graphs.complete import complete_supernode
from repro.graphs.er_polarity import er_polarity_graph
from repro.graphs.inductive_quad import inductive_quad
from repro.graphs.paley import paley_graph
from repro.sim.flow import saturation_load
from repro.sim.packet import PacketSimConfig, PacketSimulator
from repro.traffic import AdversarialGroupPattern, RandomPermutationPattern, UniformRandomPattern

__all__ = [
    "supernode_kind_ablation",
    "degree_split_ablation",
    "minpath_diversity_ablation",
    "ugal_samples_ablation",
    "routing_storage_comparison",
    "format_routing_storage",
    "format_supernode_kind",
    "format_degree_split",
    "format_minpath",
    "format_ugal_samples",
]


def supernode_kind_ablation(q: int = 7, dprime: int = 4) -> dict:
    """Same structure graph, same supernode degree, different supernode kind."""
    er = er_polarity_graph(q)
    builders = {
        "inductive-quad": lambda: inductive_quad(dprime),
        "paley": lambda: paley_graph(2 * dprime + 1),
        "bdf": lambda: bdf_supernode(dprime),
        "complete": lambda: complete_supernode(dprime),
    }
    rows = []
    for kind, build in builders.items():
        try:
            sn, f = build()
        except ValueError:
            rows.append({"kind": kind, "feasible": False})
            continue
        sp = star_product(er, sn, f, name=f"ER_{q}*{sn.name}")
        rows.append(
            {
                "kind": kind,
                "feasible": True,
                "order": sp.graph.n,
                "diameter": store.diameter(sp.graph),
                "bisection": store.bisection_fraction(sp.graph, restarts=1, seed=0),
            }
        )
    return {"q": q, "dprime": dprime, "rows": rows}


def degree_split_ablation(radix: int = 16) -> dict:
    """Every feasible (q, d') split at one radix: order + bisection."""
    rows = []
    for cfg in design_space(radix, kinds=("iq",)):
        from repro.core.polarstar import build_polarstar

        sp = build_polarstar(cfg)
        rows.append(
            {
                "q": cfg.q,
                "dprime": cfg.dprime,
                "order": cfg.order,
                "bisection": store.bisection_fraction(sp.graph, restarts=1, seed=cfg.q),
            }
        )
    return {"radix": radix, "rows": sorted(rows, key=lambda r: r["q"])}


def minpath_diversity_ablation(names=("PS-IQ", "BF", "SF")) -> dict:
    """§9.3: saturation with a single minpath vs all minpaths per pair."""
    rows = []
    for name in names:
        topo = table3_instance(name)
        router = store.table_router(topo)
        demand = RandomPermutationPattern(topo, seed=0).router_demand()
        uni = UniformRandomPattern(topo).router_demand()
        rows.append(
            {
                "topology": name,
                "uniform_single": saturation_load(topo, router, uni, mode="single"),
                "uniform_all": saturation_load(topo, router, uni, mode="all"),
                "perm_single": saturation_load(topo, router, demand, mode="single"),
                "perm_all": saturation_load(topo, router, demand, mode="all"),
            }
        )
    return {"rows": rows}


def ugal_samples_ablation(
    name: str = "DF",
    samples=(1, 2, 4, 8),
    load: float = 0.35,
    engine: str = "soa",
) -> dict:
    """Packet-sim delivery under adversarial traffic vs UGAL sample count."""
    topo = table3_instance(name, scale="reduced")
    router, _ = table3_router(name, scale="reduced")
    pattern = AdversarialGroupPattern(topo)
    rows = []
    for k in samples:
        cfg = PacketSimConfig(
            warmup_cycles=400, measure_cycles=1600, drain_cycles=2000, ugal_samples=k
        )
        res = PacketSimulator(
            topo, router, pattern, cfg, adaptive=True, engine=engine
        ).run(load)
        rows.append(
            {
                "samples": k,
                "latency": res.avg_latency,
                "throughput": res.throughput,
                "stable": res.stable,
            }
        )
    return {"topology": name, "load": load, "rows": rows}


def routing_storage_comparison(names=("PS-IQ", "PS-Pal", "BF", "SF", "DF")) -> dict:
    """§9.3: per-router routing-state comparison.

    PolarStar's analytic scheme stores structure-graph tables plus tiny
    supernode tables; SF/BF need all-minpath tables over every router pair;
    Dragonfly needs only the group gateway table.
    """
    rows = []
    for name in names:
        topo = table3_instance(name)
        router, _ = table3_router(name)
        table = store.table_router(topo)
        analytic_bytes = getattr(router, "table_bytes", table.table_bytes)
        rows.append(
            {
                "topology": name,
                "routers": topo.num_routers,
                "policy_bytes": int(analytic_bytes),
                "full_table_bytes": int(table.table_bytes),
                "ratio": table.table_bytes / max(analytic_bytes, 1),
            }
        )
    return {"rows": rows}


def format_routing_storage(result: dict) -> str:
    """Render the storage table."""
    headers = ["topology", "routers", "policy state (KiB)", "minpath tables (KiB)", "saving"]
    rows = [
        [
            r["topology"],
            r["routers"],
            r["policy_bytes"] / 1024,
            r["full_table_bytes"] / 1024,
            f"{r['ratio']:.1f}x",
        ]
        for r in result["rows"]
    ]
    return format_table(headers, rows, floatfmt=".0f")


def format_supernode_kind(result: dict) -> str:
    """Render the supernode-kind table."""
    headers = ["supernode", "order", "diameter", "bisection"]
    rows = []
    for r in result["rows"]:
        if not r["feasible"]:
            rows.append([r["kind"], "-", "-", "-"])
        else:
            rows.append([r["kind"], r["order"], int(r["diameter"]), r["bisection"]])
    return f"ER_{result['q']} * <supernode degree {result['dprime']}>:\n" + format_table(
        headers, rows
    )


def format_degree_split(result: dict) -> str:
    """Render the degree-split table."""
    headers = ["q", "d'", "order", "bisection"]
    rows = [[r["q"], r["dprime"], r["order"], r["bisection"]] for r in result["rows"]]
    return f"radix {result['radix']} splits:\n" + format_table(headers, rows)


def format_minpath(result: dict) -> str:
    """Render the minpath-diversity table."""
    headers = ["topology", "uniform 1-path", "uniform all", "perm 1-path", "perm all"]
    rows = [
        [r["topology"], r["uniform_single"], r["uniform_all"], r["perm_single"], r["perm_all"]]
        for r in result["rows"]
    ]
    return format_table(headers, rows)


def format_ugal_samples(result: dict) -> str:
    """Render the UGAL-samples table."""
    headers = ["samples", "latency", "throughput", "stable"]
    rows = [[r["samples"], r["latency"], r["throughput"], str(r["stable"])] for r in result["rows"]]
    return f"{result['topology']} adversarial @ load {result['load']}:\n" + format_table(
        headers, rows
    )
