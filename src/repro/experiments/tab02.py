"""Table 2: supernode family comparison.

For each candidate supernode we report the order formula, permitted
degrees, and *verify* the claimed structural properties (R*, R_1) with the
checkers of :mod:`repro.graphs.properties` at sample degrees.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.graphs.bdf import bdf_feasible_degrees, bdf_supernode
from repro.graphs.complete import complete_supernode
from repro.graphs.inductive_quad import inductive_quad, iq_feasible_degrees
from repro.graphs.paley import paley_feasible_degrees, paley_graph
from repro.graphs.properties import has_property_r1, has_property_rstar

__all__ = [
    "run",
    "format_figure",
]


def _check(builder, degrees) -> dict:
    """Verify R*/R_1 at each sample degree; report orders."""
    out = {"orders": {}, "rstar": True, "r1": True}
    for d in degrees:
        g, f = builder(d)
        out["orders"][d] = g.n
        out["rstar"] &= has_property_rstar(g, f)
        out["r1"] &= has_property_r1(g, f)
    return out


def run(sample_max_degree: int = 12) -> dict:
    """Verify and tabulate every supernode family."""
    families = {}

    iq_degs = [d for d in iq_feasible_degrees(sample_max_degree) if d > 0]
    families["Inductive-Quad"] = {
        "order_formula": "2d'+2",
        "permitted": "d' ≡ 0 or 3 (mod 4)",
        **_check(inductive_quad, iq_degs),
    }

    pal_degs = paley_feasible_degrees(sample_max_degree)
    families["Paley"] = {
        "order_formula": "2d'+1",
        "permitted": "d' even, 2d'+1 prime power ≡ 1 (mod 4)",
        **_check(lambda d: paley_graph(2 * d + 1), pal_degs),
    }

    bdf_degs = [d for d in bdf_feasible_degrees(sample_max_degree) if d >= 4]
    families["BDF"] = {
        "order_formula": "2d'",
        "permitted": "all (our explicit build: d' ≡ 0, 1 mod 4)",
        **_check(bdf_supernode, bdf_degs),
    }

    families["Complete"] = {
        "order_formula": "d'+1",
        "permitted": "all",
        **_check(complete_supernode, list(range(1, sample_max_degree + 1))),
    }

    return {"families": families}


def format_figure(result: dict) -> str:
    """Render the Table 2 comparison."""
    headers = ["supernode", "order", "permitted d'", "R*", "R1", "orders checked"]
    rows = []
    for name, fam in result["families"].items():
        rows.append(
            [
                name,
                fam["order_formula"],
                fam["permitted"],
                "Y" if fam["rstar"] else "N",
                "Y" if fam["r1"] else "N",
                ", ".join(f"{d}->{n}" for d, n in sorted(fam["orders"].items())),
            ]
        )
    return format_table(headers, rows)
