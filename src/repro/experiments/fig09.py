"""Fig. 9: performance under synthetic traffic (MIN and UGAL).

Two reproductions at different fidelity:

* :func:`run` — flow-level saturation loads at **full Table 3 scale** for
  every topology x pattern x routing combination.  The paper's latency
  curves saturate exactly at these loads, so "who saturates where" — the
  figure's message — is reproduced directly; :func:`run` also returns the
  open-loop latency curves from the M/M/1 model.
* :func:`packet_sim_curves` — event-driven packet simulation (VCs, credit
  flow control) of latency vs load on the reduced-scale analogues of
  ``table3.REDUCED_BUILDERS``.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import format_table, table3_instance, table3_router
from repro.sim.flow import latency_curve, link_loads, saturation_load, ugal_saturation_load
from repro.sim.packet import PacketSimConfig, latency_load_sweep
from repro.topologies.base import Topology
from repro.traffic import (
    BitReversePattern,
    BitShufflePattern,
    RandomPermutationPattern,
    UniformRandomPattern,
)

__all__ = [
    "PATTERNS",
    "DEFAULT_TOPOLOGIES",
    "TRIAL_FIDELITY",
    "pattern_demand",
    "run",
    "plan_trials",
    "run_trial",
    "merge_trials",
    "packet_sim_curves",
    "format_figure",
]

#: Trial API (repro.runtime): the saturation cells are flow-level already.
TRIAL_FIDELITY = "flow"

PATTERNS = {
    "uniform": UniformRandomPattern,
    "permutation": lambda t: RandomPermutationPattern(t, seed=0),
    "bitreverse": BitReversePattern,
    "bitshuffle": BitShufflePattern,
}

DEFAULT_TOPOLOGIES = ("PS-IQ", "PS-Pal", "BF", "HX", "DF", "MF", "FT", "SF")


def pattern_demand(topo: Topology, pattern: str) -> np.ndarray:
    """Router demand matrix of a named pattern on a topology."""
    return PATTERNS[pattern](topo).router_demand()


def run(
    names=DEFAULT_TOPOLOGIES,
    patterns=("uniform", "permutation", "bitreverse", "bitshuffle"),
    with_ugal: bool = True,
    with_curves: bool = False,
) -> dict:
    """Flow-level saturation (and optional latency curves) per combination."""
    rows = []
    curves = {}
    for name in names:
        topo = table3_instance(name)
        router, mode = table3_router(name)
        for pattern in patterns:
            demand = pattern_demand(topo, pattern)
            loads = link_loads(topo, router, demand, mode=mode)
            peak = loads.max() if len(loads) else 0.0
            sat_min = min(1.0, 1.0 / peak) if peak > 0 else 1.0
            row = {"topology": name, "pattern": pattern, "min_saturation": sat_min}
            if with_ugal:
                row["ugal_saturation"] = ugal_saturation_load(
                    topo, router, demand, mode=mode
                )
            rows.append(row)
            if with_curves:
                curves[(name, pattern)] = latency_curve(
                    topo, router, demand, loads=loads, mode=mode
                )
    return {"rows": rows, "curves": curves}


# -- trial API (repro.runtime) ------------------------------------------------


def plan_trials(opts: dict) -> list[dict]:
    """One trial per (topology, pattern) saturation cell."""
    names = tuple(opts.get("names", DEFAULT_TOPOLOGIES))
    patterns = tuple(
        opts.get("patterns", ("uniform", "permutation", "bitreverse", "bitshuffle"))
    )
    with_ugal = bool(opts.get("with_ugal", True))
    return [
        {"topology": str(n), "pattern": str(p), "with_ugal": with_ugal}
        for n in names
        for p in patterns
    ]


def run_trial(params: dict, fidelity: str = "flow", attempt: int = 1) -> dict:
    """Compute one saturation row (JSON-safe; workers call this)."""
    name, pattern = params["topology"], params["pattern"]
    topo = table3_instance(name)
    router, mode = table3_router(name)
    demand = pattern_demand(topo, pattern)
    loads = link_loads(topo, router, demand, mode=mode)
    peak = loads.max() if len(loads) else 0.0
    sat_min = min(1.0, 1.0 / peak) if peak > 0 else 1.0
    row = {"topology": name, "pattern": pattern, "min_saturation": float(sat_min)}
    if params.get("with_ugal", True):
        row["ugal_saturation"] = float(
            ugal_saturation_load(topo, router, demand, mode=mode)
        )
    return {"row": row}


def merge_trials(opts: dict, outcomes: list[dict]) -> dict:
    """Fold finished trial rows back into the ``run()`` result shape."""
    rows = [
        o["result"]["row"]
        for o in outcomes
        if o["status"] == "done" and o["result"] is not None
    ]
    return {"rows": rows, "curves": {}}


def packet_sim_curves(
    names=("PS-IQ", "PS-Pal", "BF", "DF", "HX"),
    pattern: str = "uniform",
    loads=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    adaptive: bool = False,
    config: PacketSimConfig | None = None,
    engine: str = "soa",
) -> dict:
    """Packet-level latency-vs-load curves on the reduced-scale analogues.

    ``engine`` selects the packet-simulator execution strategy (``"soa"``
    or the pinned scalar ``"reference"``); the curves are byte-identical
    either way.
    """
    out = {}
    for name in names:
        topo = table3_instance(name, scale="reduced")
        router, _ = table3_router(name, scale="reduced")
        pat = PATTERNS[pattern](topo)
        results = latency_load_sweep(
            topo, router, pat, loads, config=config, adaptive=adaptive, engine=engine
        )
        out[name] = [
            {
                "load": r.offered_load,
                "latency": r.avg_latency,
                "throughput": r.throughput,
                "stable": r.stable,
            }
            for r in results
        ]
    return out


def format_figure(result: dict) -> str:
    """Render the saturation table."""
    has_ugal = result["rows"] and "ugal_saturation" in result["rows"][0]
    headers = ["topology", "pattern", "MIN saturation"] + (
        ["UGAL saturation"] if has_ugal else []
    )
    rows = []
    for r in result["rows"]:
        row = [r["topology"], r["pattern"], r["min_saturation"]]
        if has_ugal:
            row.append(r["ugal_saturation"])
        rows.append(row)
    return format_table(headers, rows)
