"""Extension experiment: Allreduce algorithm comparison across topologies.

§10 evaluates one Allreduce implementation; the cited Rabenseifner (2004)
line of work is about *algorithm* choice.  This experiment pits recursive
doubling, ring, and Rabenseifner's reduce-scatter+allgather against each
other on the Table 3 networks — showing how topology and algorithm
interact (rings love neighbor locality; halving/doubling loves low
diameter).
"""

from __future__ import annotations

from repro.experiments.common import format_table, table3_instance, table3_router
from repro.sim.motif import MotifEngine, MotifNetworkConfig
from repro.traffic.collectives import (
    rabenseifner_allreduce_events,
    recursive_doubling_allreduce,
    ring_allreduce_events,
)

__all__ = [
    "ALGORITHMS",
    "CFG",
    "run",
    "format_figure",
]

ALGORITHMS = {
    "recursive-doubling": recursive_doubling_allreduce,
    "ring": ring_allreduce_events,
    "rabenseifner": rabenseifner_allreduce_events,
}

CFG = MotifNetworkConfig(link_bw=4e9, link_latency=20e-9, router_latency=20e-9)


def run(
    names=("PS-IQ", "DF", "HX", "FT"),
    ranks: int = 1024,
    size: int = 1024 * 1024,
    iterations: int = 4,
) -> dict:
    """Run every Allreduce algorithm on every topology; seconds per cell."""
    rows = []
    for name in names:
        topo = table3_instance(name)
        router, _ = table3_router(name)
        nranks = min(ranks, topo.num_endpoints)
        row = {"topology": name, "ranks": nranks}
        for alg, gen in ALGORITHMS.items():
            msgs = gen(nranks, size=size, iterations=iterations)
            row[alg] = MotifEngine(topo, router, CFG).run(msgs)
        rows.append(row)
    return {"rows": rows, "size": size, "iterations": iterations}


def format_figure(result: dict) -> str:
    """Render the comparison table."""
    headers = ["topology", "ranks"] + [f"{a} (ms)" for a in ALGORITHMS]
    rows = [
        [r["topology"], r["ranks"]] + [1e3 * r[a] for a in ALGORITHMS]
        for r in result["rows"]
    ]
    return (
        f"Allreduce of {result['size'] // 1024} KiB x {result['iterations']} iterations:\n"
        + format_table(headers, rows)
    )
