"""Fig. 7: feasible combinations of radix and order in PolarStar.

For every radix in [8, 128] the design space contains multiple (q, d',
supernode) combinations; the figure plots all feasible orders per radix.
We also report the per-radix config count and which supernode kind wins —
§7.2's "Paley wins only at k = 23, 50, 56, 80".
"""

from __future__ import annotations

from repro.core.polarstar import best_config, design_space
from repro.experiments.common import format_table

__all__ = [
    "run",
    "format_figure",
]


def run(radix_lo: int = 8, radix_hi: int = 128) -> dict:
    """Enumerate the PolarStar design space per radix."""
    rows = []
    paley_wins = []
    for r in range(radix_lo, radix_hi + 1):
        space = design_space(r)
        best = best_config(r)
        if best is None:
            continue
        orders = [c.order for c in space]
        rows.append(
            {
                "radix": r,
                "num_configs": len(space),
                "min_order": min(orders),
                "max_order": max(orders),
                "best_kind": best.supernode_kind,
                "best_q": best.q,
                "best_dprime": best.dprime,
                "orders": orders,
            }
        )
        if best.supernode_kind == "paley":
            paley_wins.append(r)
    return {"rows": rows, "paley_win_radixes": paley_wins}


def format_figure(result: dict) -> str:
    """Render the Fig. 7 table."""
    headers = ["radix", "#configs", "min order", "max order", "best (q, d', kind)"]
    rows = [
        [
            r["radix"],
            r["num_configs"],
            r["min_order"],
            r["max_order"],
            f"({r['best_q']}, {r['best_dprime']}, {r['best_kind']})",
        ]
        for r in result["rows"]
    ]
    return (
        format_table(headers, rows)
        + f"\nPaley supernode wins at radixes: {result['paley_win_radixes']}"
    )
