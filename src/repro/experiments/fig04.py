"""Fig. 4: Moore-bound comparison of diameter-2 graph families.

The candidate *structure graphs* for a diameter-3 star product: Erdős–Rényi
polarity graphs, McKay–Miller–Širáň graphs, and Paley graphs.  The figure's
point is that ER is the largest at almost every degree, so "any larger
structure graph would only marginally increase the size of the star
product".  (The best Cayley constructions of Abas 2017 sit between MMS and
ER; they lack a machine-readable construction and are omitted — see
EXPERIMENTS.md.)
"""

from __future__ import annotations

from repro.core.moore import moore_bound
from repro.experiments.common import format_table
from repro.fields import is_prime_power, prime_powers_up_to
from repro.graphs.er_polarity import er_order
from repro.graphs.mms import mms_degree, mms_order

__all__ = [
    "er_order_at_degree",
    "mms_order_at_degree",
    "paley_order_at_degree",
    "run",
    "format_figure",
]


def er_order_at_degree(degree: int) -> int:
    """ER order at this network degree (0 if infeasible)."""
    q = degree - 1
    return er_order(q) if q >= 2 and is_prime_power(q) else 0


def mms_order_at_degree(degree: int) -> int:
    """MMS order at this network degree (0 if infeasible)."""
    for q in prime_powers_up_to(degree):
        if mms_degree(q) == degree:
            return mms_order(q)
    return 0


def paley_order_at_degree(degree: int) -> int:
    """Paley order at this network degree (0 if infeasible)."""
    q = 2 * degree + 1
    return q if is_prime_power(q) and q % 4 == 1 else 0


def run(degree_lo: int = 4, degree_hi: int = 64) -> dict:
    """Diameter-2 family orders vs the Moore bound per degree."""
    rows = []
    for d in range(degree_lo, degree_hi + 1):
        moore2 = moore_bound(d, 2)
        rows.append(
            {
                "degree": d,
                "moore2": moore2,
                "er": er_order_at_degree(d),
                "mms": mms_order_at_degree(d),
                "paley": paley_order_at_degree(d),
            }
        )
    # ER approaches the diameter-2 Moore bound asymptotically.
    er_rows = [r for r in rows if r["er"]]
    er_efficiency_tail = er_rows[-1]["er"] / er_rows[-1]["moore2"] if er_rows else 0.0
    return {"rows": rows, "er_efficiency_tail": er_efficiency_tail}


def format_figure(result: dict) -> str:
    """Render the Fig. 4 table."""
    headers = ["degree", "Moore-2", "ER", "MMS", "Paley"]
    rows = [
        [r["degree"], r["moore2"], r["er"] or "-", r["mms"] or "-", r["paley"] or "-"]
        for r in result["rows"]
    ]
    return (
        format_table(headers, rows)
        + f"\nER efficiency at the top of the range: {result['er_efficiency_tail']:.2%}"
    )
