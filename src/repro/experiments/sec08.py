"""§8: hierarchical modular layout and bundling arithmetic, measured.

Checks the paper's counts on real PolarStar instances: ``2(d* - q)``
parallel links between adjacent supernodes, MCF bundle count equal to the
structure-graph edge count (``q(q+1)²/2`` undirected), ≈ q bundles between
supernode-cluster pairs, and the cable-count reduction factor ≈ 2d*/3.
"""

from __future__ import annotations

from repro import store
from repro.core.polarstar import PolarStarConfig
from repro.experiments.common import format_table
from repro.layout import bundling_report

__all__ = [
    "CONFIGS",
    "run",
    "format_figure",
]

CONFIGS = (
    PolarStarConfig(q=7, dprime=3, supernode_kind="iq"),  # the Fig. 8 example
    PolarStarConfig(q=11, dprime=3, supernode_kind="iq"),  # Table 3 PS-IQ
    PolarStarConfig(q=13, dprime=8, supernode_kind="iq"),
)


def run(configs=CONFIGS) -> dict:
    """Measure the §8 bundling quantities on PolarStar instances."""
    rows = []
    for cfg in configs:
        topo = store.topology(
            "polarstar", q=cfg.q, dprime=cfg.dprime,
            supernode_kind=cfg.supernode_kind, p=1,
        )
        rep = bundling_report(topo)
        rows.append(
            {
                "config": cfg.name,
                "radix": cfg.radix,
                "q": cfg.q,
                "links_per_pair": rep.links_per_supernode_pair,
                "expected_links_per_pair": 2 * (cfg.radix - cfg.q),
                "bundles": rep.num_bundles,
                "expected_bundles": cfg.q * (cfg.q + 1) ** 2 // 2,
                "cable_reduction": rep.cable_reduction,
                "clusters": rep.num_clusters,
                "mean_cluster_bundles": rep.mean_bundles_between_clusters,
            }
        )
    return {"rows": rows}


def format_figure(result: dict) -> str:
    """Render the layout table."""
    headers = [
        "config",
        "links/supernode pair",
        "expected",
        "MCF bundles",
        "expected",
        "cable reduction",
        "clusters",
        "bundles/cluster pair",
    ]
    rows = [
        [
            r["config"],
            r["links_per_pair"],
            r["expected_links_per_pair"],
            r["bundles"],
            r["expected_bundles"],
            r["cable_reduction"],
            r["clusters"],
            r["mean_cluster_bundles"],
        ]
        for r in result["rows"]
    ]
    return format_table(headers, rows, floatfmt=".1f")
