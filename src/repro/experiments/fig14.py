"""Fig. 14: diameter and average path length under random link failures.

One median-ish scenario per topology (the paper picks the median of 100
disconnection simulations and plots that scenario's trajectory), plus the
median disconnection ratio over many scenarios.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.faults import (
    disconnection_ratio,
    link_failure_sweep,
)
from repro.experiments.common import format_table, table3_instance

__all__ = [
    "TOPOLOGIES",
    "FRACTIONS",
    "run",
    "format_figure",
]

TOPOLOGIES = ("PS-IQ", "BF", "DF", "HX", "SF", "MF", "FT")
FRACTIONS = (0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5)


def run(
    names=TOPOLOGIES,
    fractions=FRACTIONS,
    scenarios: int = 20,
    sample_sources: int = 48,
) -> dict:
    """Fault sweeps + median disconnection ratio per topology."""
    out = {}
    for name in names:
        topo = table3_instance(name)
        ratios = [disconnection_ratio(topo.graph, seed=s) for s in range(scenarios)]
        median_ratio = float(np.median(ratios))
        # pick the scenario closest to the median, as in §11.2
        median_seed = int(np.argsort(np.abs(np.array(ratios) - median_ratio))[0])
        sweep = link_failure_sweep(
            topo.graph, fractions, seed=median_seed, sample_sources=sample_sources
        )
        out[name] = {
            "median_disconnection_ratio": median_ratio,
            "fractions": sweep.fractions,
            "diameters": sweep.diameters,
            "avg_path_lengths": sweep.avg_path_lengths,
        }
    return out


def format_figure(result: dict) -> str:
    """Render the per-topology fault tables."""
    parts = []
    for name, data in result.items():
        headers = ["failed links"] + [f"{f:.0%}" for f in data["fractions"]]
        rows = [
            ["diameter"] + [f"{d:.0f}" for d in data["diameters"]],
            ["avg path length"] + [f"{a:.2f}" for a in data["avg_path_lengths"]],
        ]
        parts.append(
            f"{name} (median disconnection ratio "
            f"{data['median_disconnection_ratio']:.0%}):\n"
            + format_table(headers, rows)
        )
    return "\n\n".join(parts)
