"""Fig. 12: fraction of links crossing the estimated minimum bisection.

The paper sweeps network radix in [8, 128] at each family's largest
feasible construction.  Pure-Python bisection refinement caps the graph
sizes we can afford, so the default sweep covers radixes whose largest
constructions stay below ``max_order`` (documented in EXPERIMENTS.md); the
orderings the figure reports (Jellyfish/SF > PS > MF > BF > DF/HX) are
scale-stable.  Fat-tree/Megafly bisections are normalized by links incident
to endpoint-hosting routers, as in the figure caption.
"""

from __future__ import annotations

import numpy as np

from repro import store
from repro.core.polarstar import best_config
from repro.experiments.common import format_table
from repro.topologies.base import Topology
from repro.topologies.spectralfly import spectralfly_design_points

__all__ = [
    "topology_at_radix",
    "DEFAULT_FAMILIES",
    "run",
    "format_figure",
]


def _normalized_bisection(topo: Topology, restarts: int = 2, seed: int = 0) -> float:
    """Cut fraction; for indirect networks only links touching
    endpoint-hosting routers count in the denominator (Fig. 12 caption)."""
    cut, _ = store.min_bisection(topo.graph, restarts=restarts, seed=seed)
    if topo.is_direct:
        return cut / topo.graph.m
    hosts = set(np.nonzero(topo.endpoints_per_router > 0)[0].tolist())
    m_norm = sum(1 for u, v in topo.graph.edges() if u in hosts or v in hosts)
    return cut / m_norm if m_norm else 0.0


def _best_dragonfly(radix: int):
    best = (0, None)
    for a in range(2, radix + 1):
        h = radix - (a - 1)
        if h < 1:
            continue
        n = a * (a * h + 1)
        if n > best[0]:
            best = (n, (a, h))
    return best[1]


def _best_hyperx(radix: int):
    best = (0, None)
    for d1 in range(2, radix):
        for d2 in range(d1, radix):
            d3 = radix - (d1 - 1) - (d2 - 1) + 1
            if d3 >= d2:
                n = d1 * d2 * d3
                if n > best[0]:
                    best = (n, (d1, d2, d3))
    return best[1]


def _best_bundlefly(radix: int):
    from repro.graphs.mms import mms_feasible_degrees, mms_order
    from repro.graphs.paley import paley_feasible_degrees, paley_order

    pal = set(paley_feasible_degrees(radix))
    best = (0, None)
    for q, deg in mms_feasible_degrees(radix):
        dp = radix - deg
        if dp in pal:
            n = mms_order(q) * paley_order(dp)
            if n > best[0]:
                best = (n, (q, dp))
    return best[1]


def topology_at_radix(family: str, radix: int, max_order: int) -> Topology | None:
    """Largest feasible construction of *family* at *radix*, or None if
    infeasible / above the size cap."""
    try:
        if family == "PolarStar":
            cfg = best_config(radix)
            if cfg is None or cfg.order > max_order:
                return None
            return store.topology(
                "polarstar",
                q=cfg.q,
                dprime=cfg.dprime,
                supernode_kind=cfg.supernode_kind,
                p=1,
            )
        if family == "Bundlefly":
            params = _best_bundlefly(radix)
            if params is None:
                return None
            topo = store.topology("bundlefly", q=params[0], dprime=params[1], p=1)
            return topo if topo.num_routers <= max_order else None
        if family == "Dragonfly":
            a, h = _best_dragonfly(radix)
            topo = store.topology("dragonfly", a=a, h=h, p=1)
            return topo if topo.num_routers <= max_order else None
        if family == "HyperX":
            dims = _best_hyperx(radix)
            if dims is None:
                return None
            topo = store.topology("hyperx", dims=dims, p=1)
            return topo if topo.num_routers <= max_order else None
        if family == "Jellyfish":
            cfg = best_config(radix)  # same radix and scale as PolarStar
            if cfg is None or cfg.order > max_order:
                return None
            n = cfg.order if (cfg.order * radix) % 2 == 0 else cfg.order - 1
            return store.topology("jellyfish", n=n, radix=radix, p=1, seed=radix)
        if family == "Spectralfly":
            pts = {
                r: (pg, q)
                for r, _, pg, q in spectralfly_design_points(radix, max_order=max_order)
            }
            if radix not in pts:
                return None
            pg, q = pts[radix]
            return store.topology("spectralfly", p_gen=pg, q=q, p=1)
        if family == "Megafly":
            # balanced a = radix, rho = radix/2 style group; keep radix exact
            a = radix
            if a % 2:
                return None
            topo = store.topology("megafly", rho=a // 2, a=a, p=1)
            return topo if topo.num_routers <= max_order else None
        if family == "FatTree":
            if radix % 2:
                return None
            topo = store.topology("fattree", p=radix // 2)
            return topo if topo.num_routers <= max_order else None
    except (ValueError, RuntimeError):
        return None
    raise KeyError(family)


DEFAULT_FAMILIES = (
    "PolarStar",
    "Bundlefly",
    "Dragonfly",
    "HyperX",
    "Megafly",
    "FatTree",
    "Jellyfish",
    "Spectralfly",
)


def run(
    radixes=(8, 10, 12, 14, 16, 18, 20, 22, 24),
    families=DEFAULT_FAMILIES,
    max_order: int = 4000,
    restarts: int = 2,
) -> dict:
    """Bisection fraction per (family, radix)."""
    rows = []
    for radix in radixes:
        row = {"radix": radix}
        for fam in families:
            topo = topology_at_radix(fam, radix, max_order)
            row[fam] = _normalized_bisection(topo, restarts=restarts) if topo else None
        rows.append(row)
    means = {
        fam: float(np.mean([r[fam] for r in rows if r.get(fam) is not None] or [0.0]))
        for fam in families
    }
    return {"rows": rows, "means": means}


def format_figure(result: dict) -> str:
    """Render the Fig. 12 table."""
    families = [k for k in result["rows"][0] if k != "radix"]
    headers = ["radix"] + list(families)
    rows = []
    for r in result["rows"]:
        rows.append([r["radix"]] + [r[f] if r[f] is not None else "-" for f in families])
    means = result["means"]
    tail = "\nmean cut fraction: " + ", ".join(
        f"{fam}={means[fam]:.3f}" for fam in families
    )
    return format_table(headers, rows) + tail
