"""Fig. 10: adversarial traffic on the hierarchical topologies.

Every group sends all of its traffic to one other group (§9.6), so the
inter-group links become the bottleneck.  The figure's message: DF and MF
(one link per group pair) saturate lowest; star products (BF, PS-*) hold
more load thanks to their parallel inter-supernode links; PS-IQ leads due
to its larger share of global links; UGAL recovers much of the loss.
"""

from __future__ import annotations

from repro.experiments.common import format_table, table3_instance, table3_router
from repro.sim.flow import saturation_load, ugal_saturation_load
from repro.traffic import AdversarialGroupPattern

__all__ = [
    "HIERARCHICAL",
    "TRIAL_FIDELITY",
    "run",
    "plan_trials",
    "run_trial",
    "merge_trials",
    "format_figure",
]

HIERARCHICAL = ("PS-IQ", "PS-Pal", "BF", "DF", "MF")

#: Trial API (repro.runtime): adversarial saturation is a flow-level model.
TRIAL_FIDELITY = "flow"


def run(names=HIERARCHICAL, with_ugal: bool = True) -> dict:
    """Adversarial-pattern saturation per hierarchical topology."""
    rows = []
    for name in names:
        topo = table3_instance(name)
        router, mode = table3_router(name)
        demand = AdversarialGroupPattern(topo).router_demand()
        row = {
            "topology": name,
            "min_saturation": saturation_load(topo, router, demand, mode=mode),
        }
        if with_ugal:
            row["ugal_saturation"] = ugal_saturation_load(topo, router, demand, mode=mode)
        rows.append(row)
    return {"rows": rows}


# -- trial API (repro.runtime) ------------------------------------------------


def plan_trials(opts: dict) -> list[dict]:
    """One trial per hierarchical topology."""
    names = tuple(opts.get("names", HIERARCHICAL))
    with_ugal = bool(opts.get("with_ugal", True))
    return [{"topology": str(n), "with_ugal": with_ugal} for n in names]


def run_trial(params: dict, fidelity: str = "flow", attempt: int = 1) -> dict:
    """Compute one adversarial saturation row (JSON-safe; workers call this)."""
    name = params["topology"]
    topo = table3_instance(name)
    router, mode = table3_router(name)
    demand = AdversarialGroupPattern(topo).router_demand()
    row = {
        "topology": name,
        "min_saturation": float(saturation_load(topo, router, demand, mode=mode)),
    }
    if params.get("with_ugal", True):
        row["ugal_saturation"] = float(
            ugal_saturation_load(topo, router, demand, mode=mode)
        )
    return {"row": row}


def merge_trials(opts: dict, outcomes: list[dict]) -> dict:
    """Fold finished trial rows back into the ``run()`` result shape."""
    rows = [
        o["result"]["row"]
        for o in outcomes
        if o["status"] == "done" and o["result"] is not None
    ]
    return {"rows": rows}


def format_figure(result: dict) -> str:
    """Render the Fig. 10 table."""
    has_ugal = result["rows"] and "ugal_saturation" in result["rows"][0]
    headers = ["topology", "MIN saturation"] + (["UGAL saturation"] if has_ugal else [])
    rows = []
    for r in result["rows"]:
        row = [r["topology"], r["min_saturation"]]
        if has_ugal:
            row.append(r["ugal_saturation"])
        rows.append(row)
    return format_table(headers, rows)
