"""Shared experiment utilities: routers per topology, table rendering,
geometric means, and the observability session every driver can opt into."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Sequence

import numpy as np

from repro import obs, store
from repro.routing.base import Router
from repro.topologies.base import Topology

__all__ = [
    "geometric_mean",
    "obs_session",
    "table3_instance",
    "table3_router",
    "format_table",
]


@contextmanager
def obs_session(metrics_out: str | None, **manifest_fields):
    """Scoped observability for one experiment / simulator run.

    When ``metrics_out`` is ``None`` this is a no-op (ambient observability
    stays disabled, instrumented code pays null-instrument costs only).
    Otherwise an enabled ambient session covers the body, and on exit the
    metrics, span profile tree, and a captured :class:`~repro.obs.RunManifest`
    (``manifest_fields`` land in its ``extra`` section, except the
    recognized ``seed``/``config``/``topology`` keywords) are exported to
    ``metrics_out`` as JSON.  Yields the registry (or ``None``).
    """
    if metrics_out is None:
        yield None
        return
    with obs.session() as (registry, tracer):
        yield registry
        manifest = obs.RunManifest.capture(
            artifacts=store.get_store().resolved(), **manifest_fields
        )
        obs.export_json(metrics_out, registry, tracer, manifest)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of the positive entries (0.0 if none)."""
    arr = np.asarray([v for v in values if v > 0], dtype=float)
    if not len(arr):
        return 0.0
    return float(np.exp(np.log(arr).mean()))


def table3_instance(name: str, scale: str = "full") -> Topology:
    """Cached Table 3 topology (``scale='reduced'`` for packet-sim work).

    Delegates to :func:`repro.store.table3_topology`: the per-process
    ``lru_cache`` this once used is replaced by the artifact store's memory
    tier (same object-identity guarantee) plus its on-disk tier.
    """
    return store.table3_topology(name, scale=scale)


def table3_router(name: str, scale: str = "full") -> tuple[Router, str]:
    """Cached (router, flow-mode) pair for a Table 3 topology."""
    return store.table3_router(name, scale=scale)


def format_table(headers: Sequence[str], rows: Sequence[Sequence], floatfmt: str = ".3f") -> str:
    """Render a plain-text table (monospace, right-aligned numbers)."""

    def fmt(x):
        if isinstance(x, float):
            return format(x, floatfmt)
        return str(x)

    cells = [[fmt(x) for x in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    out = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for r in cells:
        out.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)
