"""Shared experiment utilities: routers per topology, table rendering,
geometric means, and the observability session every driver can opt into."""

from __future__ import annotations

from contextlib import contextmanager
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro import obs
from repro.routing import (
    DragonflyRouter,
    HyperXRouter,
    PolarStarRouter,
    TableRouter,
)
from repro.routing.base import Router
from repro.topologies import build_table3_topology
from repro.topologies.base import Topology
from repro.topologies.table3 import build_reduced_topology

__all__ = [
    "geometric_mean",
    "obs_session",
    "paper_router",
    "table3_instance",
    "table3_router",
    "format_table",
]


@contextmanager
def obs_session(metrics_out: str | None, **manifest_fields):
    """Scoped observability for one experiment / simulator run.

    When ``metrics_out`` is ``None`` this is a no-op (ambient observability
    stays disabled, instrumented code pays null-instrument costs only).
    Otherwise an enabled ambient session covers the body, and on exit the
    metrics, span profile tree, and a captured :class:`~repro.obs.RunManifest`
    (``manifest_fields`` land in its ``extra`` section, except the
    recognized ``seed``/``config``/``topology`` keywords) are exported to
    ``metrics_out`` as JSON.  Yields the registry (or ``None``).
    """
    if metrics_out is None:
        yield None
        return
    with obs.session() as (registry, tracer):
        yield registry
        manifest = obs.RunManifest.capture(**manifest_fields)
        obs.export_json(metrics_out, registry, tracer, manifest)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of the positive entries (0.0 if none)."""
    arr = np.asarray([v for v in values if v > 0], dtype=float)
    if not len(arr):
        return 0.0
    return float(np.exp(np.log(arr).mean()))


def paper_router(topology: Topology) -> tuple[Router, str]:
    """The §9.3 routing policy for each topology:

    * PolarStar — analytic single-minpath routing (§9.2);
    * Dragonfly — hierarchical l-g-l (Booksim's built-in);
    * HyperX — dimension-aligned all-minpath (no tables);
    * SF / BF / MF / FT — all-minpath routing tables.

    Returns ``(router, flow_mode)`` where ``flow_mode`` is "single" or "all"
    for the flow-level model.
    """
    if "star" in topology.meta and topology.name.startswith("PS"):
        return PolarStarRouter(topology.meta["star"]), "single"
    if "a" in topology.meta and topology.name == "DF":
        return DragonflyRouter(topology), "single"
    if "dims" in topology.meta:
        return HyperXRouter(topology), "all"
    return TableRouter(topology.graph), "all"


@lru_cache(maxsize=None)
def table3_instance(name: str, scale: str = "full") -> Topology:
    """Cached Table 3 topology (``scale='reduced'`` for packet-sim work)."""
    if scale == "reduced":
        return build_reduced_topology(name)
    return build_table3_topology(name)


_ROUTER_CACHE: dict[tuple[str, str], tuple[Router, str]] = {}


def table3_router(name: str, scale: str = "full") -> tuple[Router, str]:
    """Cached (router, flow-mode) pair for a Table 3 topology."""
    key = (name, scale)
    if key not in _ROUTER_CACHE:
        _ROUTER_CACHE[key] = paper_router(table3_instance(name, scale))
    return _ROUTER_CACHE[key]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], floatfmt: str = ".3f") -> str:
    """Render a plain-text table (monospace, right-aligned numbers)."""

    def fmt(x):
        if isinstance(x, float):
            return format(x, floatfmt)
        return str(x)

    cells = [[fmt(x) for x in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    out = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for r in cells:
        out.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)
