"""Experiment harnesses — one module per paper table/figure.

Each module exposes ``run(...) -> dict`` returning the data behind the
paper's artifact, plus a ``format_*`` helper that renders the same rows /
series the paper reports.  The ``benchmarks/`` tree wraps these in
pytest-benchmark entries; the ``examples/`` scripts reuse them directly.

| module   | artifact                                           |
|----------|-----------------------------------------------------|
| fig01    | Moore-bound efficiency of diameter-3 topologies     |
| fig04    | diameter-2 graph families vs Moore bound            |
| fig07    | PolarStar feasible (radix, order) design space      |
| tab01    | qualitative network properties (computed)           |
| tab02    | supernode family comparison                         |
| tab03    | simulated configurations                            |
| fig09    | latency/saturation under synthetic traffic          |
| fig10    | adversarial traffic                                 |
| fig11    | Allreduce & Sweep3D motifs                          |
| fig12    | bisection fraction across topologies                |
| fig13    | PolarStar bisection: IQ vs Paley supernodes         |
| fig14    | diameter/APL under random link failures             |
| eq12     | Eq. 1/2 scaling laws vs exhaustive search           |
| sec08    | layout & bundling arithmetic                        |
"""

from repro.experiments import common

__all__ = ["common"]
