"""Fig. 1: scalability of direct diameter-3 topologies vs the Moore bound.

For each network radix we compute the largest achievable order of every
topology family and its Moore-bound efficiency, plus the StarMax upper
bound.  The headline numbers — geometric-mean scale of PolarStar over
Bundlefly (1.3x), Dragonfly (1.9x) and 3-D HyperX (6.7x) — are derived
exactly as in §7.2 (radix range [8, 128] for the ratios; the figure itself
plots radix ≤ 64).
"""

from __future__ import annotations

from repro.core.moore import moore_bound_diameter3, starmax_bound
from repro.core.polarstar import polarstar_order
from repro.experiments.common import format_table, geometric_mean
from repro.graphs.kautz import kautz_order
from repro.topologies.bundlefly import bundlefly_max_order
from repro.topologies.dragonfly import dragonfly_max_order
from repro.topologies.hyperx import hyperx_max_order

__all__ = [
    "kautz_bidirectional_order",
    "spectralfly_orders",
    "run",
    "format_figure",
]


def kautz_bidirectional_order(radix: int) -> int:
    """Largest diameter-3 Kautz order when every link is bidirectional
    (doubling the degree): ``K(radix // 2, 3)``."""
    d = radix // 2
    return kautz_order(d, 3) if d >= 1 else 0


def spectralfly_orders(max_radix: int, max_order: int = 6000) -> dict[int, int]:
    """Diameter-3 Spectralfly design points (order capped for scan cost;
    the Table 3 point SF(23, 13) is checked separately in tab03)."""
    from repro.topologies.spectralfly import spectralfly_design_points

    pts = spectralfly_design_points(max_radix, max_order=max_order)
    return {radix: order for radix, order, _, _ in pts}


def run(radix_lo: int = 8, radix_hi: int = 64, ratio_hi: int = 128, with_sf: bool = True) -> dict:
    """Compute the Fig. 1 sweep and the §1.3 geometric-mean ratios."""
    sf = spectralfly_orders(radix_hi) if with_sf else {}
    rows = []
    for r in range(radix_lo, radix_hi + 1):
        moore = moore_bound_diameter3(r)
        rows.append(
            {
                "radix": r,
                "moore": moore,
                "starmax": starmax_bound(r),
                "polarstar": polarstar_order(r),
                "bundlefly": bundlefly_max_order(r),
                "dragonfly": dragonfly_max_order(r),
                "hyperx": hyperx_max_order(r),
                "kautz": kautz_bidirectional_order(r),
                "spectralfly": sf.get(r, 0),
            }
        )

    ratios = {}
    for rival in ("bundlefly", "dragonfly", "hyperx"):
        vals = []
        for r in range(radix_lo, ratio_hi + 1):
            ps = polarstar_order(r)
            other = {
                "bundlefly": bundlefly_max_order,
                "dragonfly": dragonfly_max_order,
                "hyperx": hyperx_max_order,
            }[rival](r)
            if ps > 0 and other > 0:
                vals.append(ps / other)
        ratios[rival] = geometric_mean(vals)

    return {"rows": rows, "geomean_ratios": ratios}


def format_figure(result: dict) -> str:
    """Render the Fig. 1 sweep plus geomean ratios."""
    headers = [
        "radix",
        "Moore",
        "StarMax",
        "PolarStar",
        "eff%",
        "Bundlefly",
        "Dragonfly",
        "HyperX",
        "Kautz",
        "Spectralfly",
    ]
    rows = []
    for row in result["rows"]:
        rows.append(
            [
                row["radix"],
                row["moore"],
                row["starmax"],
                row["polarstar"],
                100.0 * row["polarstar"] / row["moore"],
                row["bundlefly"],
                row["dragonfly"],
                row["hyperx"],
                row["kautz"],
                row["spectralfly"] or "-",
            ]
        )
    table = format_table(headers, rows, floatfmt=".1f")
    g = result["geomean_ratios"]
    tail = (
        f"\ngeomean scale gain of PolarStar (radix 8..128): "
        f"{g['bundlefly']:.2f}x over Bundlefly, {g['dragonfly']:.2f}x over "
        f"Dragonfly, {g['hyperx']:.2f}x over 3-D HyperX"
    )
    return table + tail
