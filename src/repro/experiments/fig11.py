"""Fig. 11: Allreduce and Sweep3D motifs (the SST/Ember evaluation, §10).

Message-level replay of the two motifs on PolarStar, Dragonfly, HyperX and
Fat-tree with MIN and adaptive routing.  §10.1 constants: 64 KB Allreduce
messages, 4 GB/s links, 20 ns link/router latency, 10 iterations, linear
rank-to-endpoint mapping.
"""

from __future__ import annotations

from repro.experiments.common import format_table, table3_instance, table3_router
from repro.sim.motif import MotifEngine, MotifNetworkConfig
from repro.traffic import allreduce_events, sweep3d_events

__all__ = [
    "TOPOLOGIES",
    "CFG",
    "run",
    "format_figure",
]

TOPOLOGIES = ("PS-IQ", "DF", "HX", "FT")
CFG = MotifNetworkConfig(link_bw=4e9, link_latency=20e-9, router_latency=20e-9)


def _grid(ranks: int) -> tuple[int, int]:
    """Largest near-square grid fitting the rank count."""
    nx = int(ranks**0.5)
    while ranks % nx:
        nx -= 1
    return nx, ranks // nx


def run(
    names=TOPOLOGIES,
    ranks: int = 4096,
    iterations: int = 10,
    allreduce_size: int = 64 * 1024,
    sweep_size: int = 32 * 1024,
) -> dict:
    """Motif completion times (MIN and UGAL) per topology."""
    rows = []
    for name in names:
        topo = table3_instance(name)
        router, _ = table3_router(name)
        nranks = min(ranks, topo.num_endpoints)
        nx, ny = _grid(nranks)
        ar = allreduce_events(nranks, size=allreduce_size, iterations=iterations)
        sw = sweep3d_events(nx, ny, size=sweep_size, iterations=iterations)
        row = {"topology": name, "ranks": nranks}
        for label, msgs in (("allreduce", ar), ("sweep3d", sw)):
            row[f"{label}_min"] = MotifEngine(topo, router, CFG).run(msgs)
            row[f"{label}_ugal"] = MotifEngine(topo, router, CFG, adaptive=True).run(msgs)
        rows.append(row)
    return {"rows": rows}


def format_figure(result: dict) -> str:
    """Render the Fig. 11 table."""
    headers = [
        "topology",
        "ranks",
        "allreduce MIN (ms)",
        "allreduce UGAL (ms)",
        "sweep3d MIN (ms)",
        "sweep3d UGAL (ms)",
    ]
    rows = [
        [
            r["topology"],
            r["ranks"],
            1e3 * r["allreduce_min"],
            1e3 * r["allreduce_ugal"],
            1e3 * r["sweep3d_min"],
            1e3 * r["sweep3d_ugal"],
        ]
        for r in result["rows"]
    ]
    return format_table(headers, rows)
