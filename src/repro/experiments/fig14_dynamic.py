"""Fig. 14, made dynamic: delivered traffic under live link failures.

The static Fig. 14 study (:mod:`repro.experiments.fig14`) deletes links
from the graph and re-measures diameter / average path length.  This
experiment injects the same seeded random link failures *into a running
packet simulation* (:mod:`repro.faults`): the fault-aware router degrades
through its fallback ladder, packets re-route at blocked routers, and the
figure of merit becomes the **delivered fraction** — what share of the
measured-window traffic still arrives as the failed-link fraction grows.

Sweep points share one seed, so the victim sets are nested-ish across
fractions and the whole artifact is byte-identical across reruns (the
determinism contract ``repro faults sweep`` relies on).  For context each
topology also reports its static disconnection ratio at the same seed —
delivered fraction should stay well above zero until failures approach it.
"""

from __future__ import annotations

import math

from repro.analysis.faults import disconnection_ratio
from repro.experiments.common import format_table, table3_instance, table3_router
from repro.faults import permanent_link_failures
from repro.sim.packet import PacketSimConfig, PacketSimulator
from repro.traffic import UniformRandomPattern

__all__ = [
    "TOPOLOGIES",
    "FRACTIONS",
    "default_config",
    "run",
    "format_figure",
]

TOPOLOGIES = ("PS-IQ",)
FRACTIONS = (0.0, 0.05, 0.1, 0.15, 0.2, 0.3)


def default_config(seed: int = 0) -> PacketSimConfig:
    """Sweep-point simulator config (a few seconds per point at PS-IQ
    reduced scale; CI smoke uses a smaller instance via the CLI)."""
    return PacketSimConfig(
        warmup_cycles=400, measure_cycles=1600, drain_cycles=1600, seed=seed
    )


def _finite(x: float) -> float | None:
    """JSON-safe number (``inf`` from an empty latency sample becomes null)."""
    return float(x) if math.isfinite(x) else None


def run(
    names=TOPOLOGIES,
    fractions=FRACTIONS,
    load: float = 0.3,
    seed: int = 0,
    config: PacketSimConfig | None = None,
) -> dict:
    """Delivered fraction / latency / drop accounting per failed-link step.

    Every value in the returned dict is JSON-serializable and free of
    wall-clock state, so ``json.dumps(..., sort_keys=True)`` of it is
    byte-identical for identical ``(names, fractions, load, seed)``.
    """
    cfg = config or default_config(seed)
    out = {}
    for name in names:
        topo = table3_instance(name, scale="reduced")
        router, _ = table3_router(name, scale="reduced")
        pattern = UniformRandomPattern(topo)
        points = []
        for frac in fractions:
            schedule = permanent_link_failures(topo.graph, frac, seed=seed, time=0)
            sim = PacketSimulator(topo, router, pattern, cfg, faults=schedule)
            res = sim.run(load)
            points.append(
                {
                    "fraction": float(frac),
                    "failed_links": len(schedule),
                    "delivered_fraction": float(res.delivered_fraction),
                    "throughput": float(res.throughput),
                    "avg_latency": _finite(res.avg_latency),
                    "p99_latency": _finite(res.p99_latency),
                    "injected": res.injected,
                    "delivered": res.delivered,
                    "dropped": res.dropped,
                    "reroutes": res.reroutes,
                    "drop_causes": res.drop_causes,
                }
            )
        out[name] = {
            "load": float(load),
            "seed": int(seed),
            "disconnection_ratio": float(disconnection_ratio(topo.graph, seed=seed)),
            "points": points,
        }
    return out


def format_figure(result: dict) -> str:
    """Render one delivered-fraction table per topology."""
    parts = []
    headers = [
        "failed links", "delivered", "throughput", "avg lat", "p99 lat",
        "dropped", "reroutes",
    ]
    for name, data in result.items():
        rows = []
        for pt in data["points"]:
            rows.append(
                [
                    f"{pt['fraction']:.0%}",
                    f"{pt['delivered_fraction']:.1%}",
                    f"{pt['throughput']:.3f}",
                    "-" if pt["avg_latency"] is None else f"{pt['avg_latency']:.1f}",
                    "-" if pt["p99_latency"] is None else f"{pt['p99_latency']:.1f}",
                    str(pt["dropped"]),
                    str(pt["reroutes"]),
                ]
            )
        parts.append(
            f"{name} at load {data['load']:.2f} (static disconnection ratio "
            f"{data['disconnection_ratio']:.0%}, seed {data['seed']}):\n"
            + format_table(headers, rows)
        )
    return "\n\n".join(parts)
