"""Fig. 14, made dynamic: delivered traffic under live link failures.

The static Fig. 14 study (:mod:`repro.experiments.fig14`) deletes links
from the graph and re-measures diameter / average path length.  This
experiment injects the same seeded random link failures *into a running
packet simulation* (:mod:`repro.faults`): the fault-aware router degrades
through its fallback ladder, packets re-route at blocked routers, and the
figure of merit becomes the **delivered fraction** — what share of the
measured-window traffic still arrives as the failed-link fraction grows.

Sweep points share one seed, so the victim sets are nested-ish across
fractions and the whole artifact is byte-identical across reruns (the
determinism contract ``repro faults sweep`` relies on).  For context each
topology also reports its static disconnection ratio at the same seed —
delivered fraction should stay well above zero until failures approach it.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from repro.analysis.faults import disconnection_ratio
from repro.experiments.common import format_table, table3_instance, table3_router
from repro.faults import permanent_link_failures
from repro.sim.packet import PacketSimConfig, PacketSimulator
from repro.traffic import UniformRandomPattern

__all__ = [
    "TOPOLOGIES",
    "FRACTIONS",
    "TRIAL_FIDELITY",
    "default_config",
    "run",
    "plan_trials",
    "run_trial",
    "merge_trials",
    "format_figure",
]

TOPOLOGIES = ("PS-IQ",)
FRACTIONS = (0.0, 0.05, 0.1, 0.15, 0.2, 0.3)

#: Trial API (repro.runtime): sweep points are packet simulations, so the
#: supervisor may degrade a persistently timing-out point to ``flow``.
TRIAL_FIDELITY = "packet"


def default_config(seed: int = 0) -> PacketSimConfig:
    """Sweep-point simulator config (a few seconds per point at PS-IQ
    reduced scale; CI smoke uses a smaller instance via the CLI)."""
    return PacketSimConfig(
        warmup_cycles=400, measure_cycles=1600, drain_cycles=1600, seed=seed
    )


def _finite(x: float) -> float | None:
    """JSON-safe number (``inf`` from an empty latency sample becomes null)."""
    return float(x) if math.isfinite(x) else None


def _point(topo, router, pattern, cfg, frac, load, seed, engine="soa") -> dict:
    """Simulate one packet-level sweep point (shared by run/run_trial)."""
    schedule = permanent_link_failures(topo.graph, frac, seed=seed, time=0)
    sim = PacketSimulator(topo, router, pattern, cfg, faults=schedule, engine=engine)
    res = sim.run(load)
    return {
        "fraction": float(frac),
        "failed_links": len(schedule),
        "delivered_fraction": float(res.delivered_fraction),
        "throughput": float(res.throughput),
        "avg_latency": _finite(res.avg_latency),
        "p99_latency": _finite(res.p99_latency),
        "injected": res.injected,
        "delivered": res.delivered,
        "dropped": res.dropped,
        "reroutes": res.reroutes,
        "drop_causes": res.drop_causes,
        "fidelity": "packet",
    }


def _flow_point(topo, frac, seed) -> dict:
    """Degraded (flow-fidelity) sweep point: no packet simulation.

    Approximates the delivered fraction by the share of ordered router
    pairs still connected once the same seeded victim links are removed —
    an upper bound on what any router could deliver.  Latency and packet
    accounting are unknowable at this fidelity and reported as null.
    """
    schedule = permanent_link_failures(topo.graph, frac, seed=seed, time=0)
    graph = topo.graph
    down = {(min(ev.u, ev.v), max(ev.u, ev.v)) for ev in schedule}
    e = graph.edge_array
    keep = np.fromiter(
        (
            (min(int(e[i, 0]), int(e[i, 1])), max(int(e[i, 0]), int(e[i, 1])))
            not in down
            for i in range(graph.m)
        ),
        dtype=bool,
        count=graph.m,
    )
    n = graph.n
    if n <= 1:
        connected = 1.0
    else:
        rows, cols = e[keep, 0], e[keep, 1]
        mat = sp.coo_matrix(
            (np.ones(len(rows), dtype=np.int8), (rows, cols)), shape=(n, n)
        )
        _, labels = sp.csgraph.connected_components(mat, directed=False)
        sizes = np.bincount(labels)
        connected = float((sizes * (sizes - 1)).sum() / (n * (n - 1)))
    return {
        "fraction": float(frac),
        "failed_links": len(schedule),
        "delivered_fraction": connected,
        "throughput": None,
        "avg_latency": None,
        "p99_latency": None,
        "injected": None,
        "delivered": None,
        "dropped": None,
        "reroutes": None,
        "drop_causes": {},
        "fidelity": "flow",
    }


def run(
    names=TOPOLOGIES,
    fractions=FRACTIONS,
    load: float = 0.3,
    seed: int = 0,
    config: PacketSimConfig | None = None,
    engine: str = "soa",
) -> dict:
    """Delivered fraction / latency / drop accounting per failed-link step.

    Every value in the returned dict is JSON-serializable and free of
    wall-clock state, so ``json.dumps(..., sort_keys=True)`` of it is
    byte-identical for identical ``(names, fractions, load, seed)``.
    """
    cfg = config or default_config(seed)
    out = {}
    for name in names:
        topo = table3_instance(name, scale="reduced")
        router, _ = table3_router(name, scale="reduced")
        pattern = UniformRandomPattern(topo)
        points = [
            _point(topo, router, pattern, cfg, frac, load, seed, engine=engine)
            for frac in fractions
        ]
        out[name] = {
            "load": float(load),
            "seed": int(seed),
            "disconnection_ratio": float(disconnection_ratio(topo.graph, seed=seed)),
            "points": points,
        }
    return out


# -- trial API (repro.runtime) ------------------------------------------------


def plan_trials(opts: dict) -> list[dict]:
    """Per topology: one static-summary trial plus one trial per fraction.

    ``opts["cycles"]`` (``[warmup, measure, drain]``) shrinks the simulated
    window for smoke runs; it is part of trial identity, so smoke journals
    never satisfy full-scale resumes.
    """
    names = tuple(opts.get("names", TOPOLOGIES))
    fractions = tuple(float(f) for f in opts.get("fractions", FRACTIONS))
    load = float(opts.get("load", 0.3))
    seed = int(opts.get("seed", 0))
    cycles = opts.get("cycles")
    trials = []
    for name in names:
        trials.append(
            {"kind": "summary", "topology": str(name), "seed": seed, "load": load}
        )
        for frac in fractions:
            params = {
                "kind": "point",
                "topology": str(name),
                "fraction": frac,
                "load": load,
                "seed": seed,
            }
            if cycles is not None:
                params["cycles"] = [int(c) for c in cycles]
            trials.append(params)
    return trials


def run_trial(params: dict, fidelity: str = "packet", attempt: int = 1) -> dict:
    """Execute one sweep trial at the requested fidelity (workers call this)."""
    name = params["topology"]
    seed = int(params["seed"])
    topo = table3_instance(name, scale="reduced")
    if params["kind"] == "summary":
        return {
            "summary": {
                "load": float(params["load"]),
                "seed": seed,
                "disconnection_ratio": float(
                    disconnection_ratio(topo.graph, seed=seed)
                ),
            }
        }
    frac = float(params["fraction"])
    if fidelity == "flow":
        return {"point": _flow_point(topo, frac, seed)}
    router, _ = table3_router(name, scale="reduced")
    pattern = UniformRandomPattern(topo)
    cycles = params.get("cycles")
    if cycles is None:
        cfg = default_config(seed)
    else:
        warmup, measure, drain = (int(c) for c in cycles)
        cfg = PacketSimConfig(
            warmup_cycles=warmup, measure_cycles=measure, drain_cycles=drain, seed=seed
        )
    return {"point": _point(topo, router, pattern, cfg, frac, params["load"], seed)}


def merge_trials(opts: dict, outcomes: list[dict]) -> dict:
    """Fold finished trials back into the ``run()`` result shape.

    Quarantined or pending trials simply leave their point out (and the
    disconnection ratio null if the summary trial itself failed), so a
    partial sweep still renders.
    """
    load = float(opts.get("load", 0.3))
    seed = int(opts.get("seed", 0))
    out: dict = {}
    for o in outcomes:
        name = o["params"]["topology"]
        entry = out.setdefault(
            name,
            {"load": load, "seed": seed, "disconnection_ratio": None, "points": []},
        )
        if o["status"] != "done" or o["result"] is None:
            continue
        if o["params"]["kind"] == "summary":
            entry.update(o["result"]["summary"])
        else:
            entry["points"].append(o["result"]["point"])
    for entry in out.values():
        entry["points"].sort(key=lambda p: p["fraction"])
    return out


def format_figure(result: dict) -> str:
    """Render one delivered-fraction table per topology."""
    parts = []
    headers = [
        "failed links", "delivered", "throughput", "avg lat", "p99 lat",
        "dropped", "reroutes",
    ]
    for name, data in result.items():
        rows = []
        for pt in data["points"]:
            throughput = pt["throughput"]
            rows.append(
                [
                    f"{pt['fraction']:.0%}",
                    f"{pt['delivered_fraction']:.1%}",
                    "-" if throughput is None else f"{throughput:.3f}",
                    "-" if pt["avg_latency"] is None else f"{pt['avg_latency']:.1f}",
                    "-" if pt["p99_latency"] is None else f"{pt['p99_latency']:.1f}",
                    "-" if pt["dropped"] is None else str(pt["dropped"]),
                    "-" if pt["reroutes"] is None else str(pt["reroutes"]),
                ]
            )
        ratio = data["disconnection_ratio"]
        ratio_txt = "n/a" if ratio is None else f"{ratio:.0%}"
        parts.append(
            f"{name} at load {data['load']:.2f} (static disconnection ratio "
            f"{ratio_txt}, seed {data['seed']}):\n"
            + format_table(headers, rows)
        )
    return "\n\n".join(parts)
