"""Table 3: the simulated network configurations, rebuilt and verified."""

from __future__ import annotations

from repro.experiments.common import format_table, table3_instance
from repro.topologies.table3 import TABLE3_BUILDERS

__all__ = [
    "PAPER_ROWS",
    "TRIAL_FIDELITY",
    "run",
    "plan_trials",
    "run_trial",
    "merge_trials",
    "format_figure",
]

#: Trial API (repro.runtime): construction checks have no simulation fidelity.
TRIAL_FIDELITY = "flow"

PAPER_ROWS = {
    # name: (routers, radix, endpoints) as printed in the paper
    "PS-IQ": (1064, 15, 5320),
    "PS-Pal": (993, 15, 4965),  # construction yields 949/4745; see table3.py
    "BF": (882, 15, 4410),
    "HX": (648, 23, 5184),
    "DF": (876, 17, 5256),
    "SF": (1092, 24, 8736),
    "MF": (1040, 16, 4160),
    "FT": (972, 36, 5832),
}


def run(names=tuple(TABLE3_BUILDERS)) -> dict:
    """Rebuild the Table 3 networks and compare to the printed rows."""
    rows = []
    for name in names:
        topo = table3_instance(name)
        paper = PAPER_ROWS[name]
        rows.append(
            {
                "name": name,
                "routers": topo.num_routers,
                "radix": topo.network_radix,
                "endpoints": topo.num_endpoints,
                "paper_routers": paper[0],
                "paper_radix": paper[1],
                "paper_endpoints": paper[2],
                "match": (topo.num_routers, topo.network_radix, topo.num_endpoints)
                == paper,
            }
        )
    return {"rows": rows}


# -- trial API (repro.runtime) ------------------------------------------------


def plan_trials(opts: dict) -> list[dict]:
    """One trial per Table 3 network."""
    names = tuple(opts.get("names", tuple(TABLE3_BUILDERS)))
    return [{"name": str(n)} for n in names]


def run_trial(params: dict, fidelity: str = "flow", attempt: int = 1) -> dict:
    """Rebuild one network and compare it to the printed row."""
    name = params["name"]
    topo = table3_instance(name)
    paper = PAPER_ROWS[name]
    return {
        "row": {
            "name": name,
            "routers": int(topo.num_routers),
            "radix": int(topo.network_radix),
            "endpoints": int(topo.num_endpoints),
            "paper_routers": paper[0],
            "paper_radix": paper[1],
            "paper_endpoints": paper[2],
            "match": (topo.num_routers, topo.network_radix, topo.num_endpoints)
            == paper,
        }
    }


def merge_trials(opts: dict, outcomes: list[dict]) -> dict:
    """Fold finished trial rows back into the ``run()`` result shape."""
    rows = [
        o["result"]["row"]
        for o in outcomes
        if o["status"] == "done" and o["result"] is not None
    ]
    return {"rows": rows}


def format_figure(result: dict) -> str:
    """Render the Table 3 comparison."""
    headers = [
        "network",
        "routers",
        "radix",
        "endpoints",
        "paper routers",
        "paper radix",
        "paper endpoints",
        "match",
    ]
    rows = [
        [
            r["name"],
            r["routers"],
            r["radix"],
            r["endpoints"],
            r["paper_routers"],
            r["paper_radix"],
            r["paper_endpoints"],
            "yes" if r["match"] else "see note",
        ]
        for r in result["rows"]
    ]
    return format_table(headers, rows)
