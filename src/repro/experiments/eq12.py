"""Eq. 1 / Eq. 2: the PolarStar scaling laws vs exhaustive search.

Eq. 1 gives the real-valued structure parameter q maximizing the order at
fixed radix (≈ 2d*/3); Eq. 2 the resulting maximum order
(≈ (8d*³ + 12d*² + 18d*)/27, i.e. 8/27 of the Moore bound asymptotically).
We compare both against the exhaustive feasible search.
"""

from __future__ import annotations

from repro.core.moore import (
    asymptotic_polarstar_order,
    moore_bound_diameter3,
    optimal_structure_q,
)
from repro.core.polarstar import best_config, polarstar_order
from repro.experiments.common import format_table

__all__ = [
    "run",
    "format_figure",
]


def run(radixes=(16, 24, 32, 48, 64, 96, 128)) -> dict:
    """Evaluate Eq. 1/2 against the exhaustive design-space search."""
    rows = []
    for radix in radixes:
        cfg = best_config(radix, kinds=("iq",))
        rows.append(
            {
                "radix": radix,
                "q_eq1": optimal_structure_q(radix),
                "q_best": cfg.q if cfg else None,
                "order_eq2": asymptotic_polarstar_order(radix),
                "order_best": polarstar_order(radix),
                "moore_fraction": polarstar_order(radix) / moore_bound_diameter3(radix),
            }
        )
    return {"rows": rows, "asymptote": 8 / 27}


def format_figure(result: dict) -> str:
    """Render the scaling-law table."""
    headers = ["radix", "q (Eq.1)", "best feasible q", "order (Eq.2)", "best order", "Moore fraction"]
    rows = [
        [
            r["radix"],
            r["q_eq1"],
            r["q_best"],
            r["order_eq2"],
            r["order_best"],
            r["moore_fraction"],
        ]
        for r in result["rows"]
    ]
    return (
        format_table(headers, rows, floatfmt=".2f")
        + f"\nasymptotic Moore fraction 8/27 = {result['asymptote']:.4f}"
    )
