"""Fig. 13: PolarStar bisection with Inductive-Quad vs Paley supernodes.

IQ's denser feasible-degree lattice allows a better radix split between
structure graph and supernode, giving a larger and more stable bisection
(paper: 29.5% IQ vs 26.6% Paley mean cut fraction).
"""

from __future__ import annotations

import numpy as np

from repro import store
from repro.core.polarstar import best_config, build_polarstar
from repro.experiments.common import format_table

__all__ = [
    "run",
    "format_figure",
]


def run(radixes=(8, 10, 12, 14, 16, 18, 20), max_order: int = 4000, restarts: int = 2) -> dict:
    """PolarStar bisection per radix for IQ and Paley supernodes."""
    rows = []
    for radix in radixes:
        row = {"radix": radix}
        for kind in ("iq", "paley"):
            cfg = best_config(radix, kinds=(kind,))
            if cfg is None or cfg.order > max_order:
                row[kind] = None
                continue
            sp = build_polarstar(cfg)
            row[kind] = store.bisection_fraction(sp.graph, restarts=restarts, seed=radix)
        rows.append(row)
    means = {
        kind: float(np.mean([r[kind] for r in rows if r[kind] is not None] or [0.0]))
        for kind in ("iq", "paley")
    }
    return {"rows": rows, "means": means}


def format_figure(result: dict) -> str:
    """Render the Fig. 13 table."""
    headers = ["radix", "PS-IQ cut fraction", "PS-Paley cut fraction"]
    rows = [
        [r["radix"], r["iq"] if r["iq"] is not None else "-", r["paley"] if r["paley"] is not None else "-"]
        for r in result["rows"]
    ]
    m = result["means"]
    return (
        format_table(headers, rows)
        + f"\nmean: IQ={m['iq']:.3f}, Paley={m['paley']:.3f}"
    )
