"""Table 1: network-property assessment — computed, not asserted.

The paper's Table 1 grades topologies qualitatively (full / fair / poor).
We compute concrete proxies on the Table 3 instances:

* **direct** — every router hosts endpoints;
* **scalability** — Moore-bound efficiency of the family's largest
  construction at a reference radix (32);
* **stable design space** — number of distinct feasible configurations at
  the reference radix (for families with a parameter search);
* **diameter ≤ 3** — measured on the instance (leaf-to-leaf for indirect);
* **bundlability** — maximum parallel links between a group pair (> 1 means
  bundles can fill a multi-core fiber).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distances import bfs_distances
from repro.core.moore import moore_bound_diameter3
from repro.core.polarstar import design_space, polarstar_order
from repro.experiments.common import format_table, table3_instance
from repro.topologies.bundlefly import bundlefly_max_order
from repro.topologies.dragonfly import dragonfly_max_order
from repro.topologies.hyperx import hyperx_max_order

__all__ = [
    "REFERENCE_RADIX",
    "run",
    "format_figure",
]

REFERENCE_RADIX = 32


def _endpoint_diameter(topo) -> int:
    hosts = np.unique(topo.endpoint_router)
    sample = hosts[:: max(1, len(hosts) // 24)]
    d = bfs_distances(topo.graph, sample)
    return int(d[:, hosts].max())


def _max_group_parallel_links(topo) -> int:
    if topo.groups is None:
        return 0
    g = topo.groups
    counts: dict[tuple[int, int], int] = {}
    for u, v in topo.graph.edge_array:
        gu, gv = int(g[u]), int(g[v])
        if gu != gv:
            key = (min(gu, gv), max(gu, gv))
            counts[key] = counts.get(key, 0) + 1
    return max(counts.values()) if counts else 0


def _family_efficiency(name: str) -> float:
    moore = moore_bound_diameter3(REFERENCE_RADIX)
    orders = {
        "PS-IQ": polarstar_order(REFERENCE_RADIX, kinds=("iq",)),
        "PS-Pal": polarstar_order(REFERENCE_RADIX, kinds=("paley",)),
        "BF": bundlefly_max_order(REFERENCE_RADIX),
        "DF": dragonfly_max_order(REFERENCE_RADIX),
        "HX": hyperx_max_order(REFERENCE_RADIX),
        "MF": dragonfly_max_order(REFERENCE_RADIX),  # group-scaling like DF
        "FT": 3 * (REFERENCE_RADIX // 2) ** 2,  # routers of a 3-level fat-tree
        "SF": 0,
    }
    return orders.get(name, 0) / moore


def _design_space_count(name: str) -> int:
    if name.startswith("PS"):
        kinds = ("iq",) if name == "PS-IQ" else ("paley",)
        return len(design_space(REFERENCE_RADIX, kinds=kinds))
    if name == "BF":
        # feasible (q, d') pairs at the reference radix
        from repro.graphs.mms import mms_feasible_degrees
        from repro.graphs.paley import paley_feasible_degrees

        pal = set(paley_feasible_degrees(REFERENCE_RADIX))
        return sum(
            1
            for q, deg in mms_feasible_degrees(REFERENCE_RADIX)
            if (REFERENCE_RADIX - deg) in pal
        )
    if name in ("DF", "MF"):
        return REFERENCE_RADIX - 2  # any (a, h) split
    if name == "HX":
        return sum(1 for _ in range(3))  # few balanced splits
    return 1


def run(names=("PS-IQ", "PS-Pal", "BF", "HX", "DF", "MF", "FT")) -> dict:
    """Compute the Table 1 property proxies per topology."""
    rows = []
    for name in names:
        topo = table3_instance(name)
        rows.append(
            {
                "name": name,
                "direct": topo.is_direct,
                "efficiency": _family_efficiency(name),
                "design_space": _design_space_count(name),
                "endpoint_diameter": _endpoint_diameter(topo),
                "max_parallel_group_links": _max_group_parallel_links(topo),
            }
        )
    return {"rows": rows}


def format_figure(result: dict) -> str:
    """Render the Table 1 proxy table."""
    headers = ["topology", "direct", "Moore eff@32", "#configs@32", "D(endpoints)", "links/group-pair"]
    rows = [
        [
            r["name"],
            "yes" if r["direct"] else "no",
            r["efficiency"],
            r["design_space"],
            r["endpoint_diameter"],
            r["max_parallel_group_links"] or "-",
        ]
        for r in result["rows"]
    ]
    return format_table(headers, rows)
