"""PolarStar reproduction library.

Python implementation of *PolarStar: Expanding the Horizon of Diameter-3
Networks* (SPAA 2024): the star-product topology family, every baseline
topology it is evaluated against, analytic + adaptive routing, cycle-level
and flow-level network simulation, and the structural-analysis tooling
needed to regenerate all of the paper's tables and figures.

Quickstart::

    from repro import best_config, build_polarstar
    cfg = best_config(15)          # largest radix-15 PolarStar
    ps = build_polarstar(cfg)      # StarProduct with 1064 routers
    ps.graph.n, cfg.order          # (1064, 1064)
"""

from repro.core import (
    PolarStarConfig,
    StarProduct,
    best_config,
    build_polarstar,
    design_space,
    moore_bound,
    moore_bound_diameter3,
    moore_efficiency,
    polarstar_order,
    star_product,
    starmax_bound,
)
from repro.graphs import Graph

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "PolarStarConfig",
    "StarProduct",
    "best_config",
    "build_polarstar",
    "design_space",
    "moore_bound",
    "moore_bound_diameter3",
    "moore_efficiency",
    "polarstar_order",
    "star_product",
    "starmax_bound",
]
