"""The star product of two graphs (§4, Definition 1).

``star_product(G, G', f)`` builds the graph on ``V(G) × V(G')`` with

* *supernode* edges: ``(x, x') ~ (x, y')`` whenever ``(x', y') ∈ E(G')``;
* *cross* edges: ``(x, x') ~ (y, f(x'))`` for each arc ``(x, y)`` of an
  orientation of ``E(G)``;
* *loop* edges: a self-loop on structure vertex *x* (ER_q's quadric
  vertices) contributes ``(x, x') ~ (x, f(x'))``; degenerate self-loops in
  the product (when ``f(x') == x'``) are dropped, per §6.1.2.

When *f* is an involution the orientation is irrelevant (the edge rule is
symmetric); for a general bijection (the Paley / Theorem 5 case) we orient
every structure edge from its lower-numbered endpoint, and the resulting
product is still diameter ``D + 1`` when G' has Property R_1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.base import Graph

__all__ = [
    "StarProduct",
    "star_product",
]


@dataclass(frozen=True)
class StarProduct:
    """A star product together with its factorization.

    Product vertex ``(x, x')`` has id ``x * supernode.n + x'``; helpers
    below translate both ways.  The factorization is what PolarStar's
    analytic routing (§9.2) consumes.
    """

    graph: Graph
    structure: Graph
    supernode: Graph
    f: np.ndarray
    f_inv: np.ndarray = field(init=False)

    def __post_init__(self):
        # Direct construction must honor the same contract as the factory:
        # a non-bijective f would silently scatter garbage into f_inv.
        if len(self.f) != self.supernode.n:
            raise ValueError("bijection length must equal supernode order")
        if not np.array_equal(np.sort(self.f), np.arange(self.supernode.n)):
            raise ValueError("f is not a bijection on the supernode vertices")
        if self.graph.n != self.structure.n * self.supernode.n:
            raise ValueError("product order must be |structure| x |supernode|")
        inv = np.empty_like(self.f)
        inv[self.f] = np.arange(len(self.f))
        object.__setattr__(self, "f_inv", inv)

    @property
    def n(self) -> int:
        return self.graph.n

    def node_id(self, x: int, xp: int) -> int:
        return x * self.supernode.n + xp

    def split(self, v: int) -> tuple[int, int]:
        """Decompose product vertex id into ``(structure, supernode)`` parts."""
        return divmod(v, self.supernode.n)

    @property
    def supernode_of(self) -> np.ndarray:
        """Structure-graph vertex (supernode id) of every product vertex."""
        return np.arange(self.graph.n) // self.supernode.n

    def arc_forward(self, x: int, y: int) -> bool:
        """True if the structure edge {x, y} is oriented x -> y.

        Crossing a forward arc applies *f* to the supernode coordinate;
        crossing backward applies ``f_inv``.  (For involutions both agree.)
        """
        return x < y


def star_product(
    structure: Graph,
    supernode: Graph,
    f: np.ndarray,
    name: str | None = None,
) -> StarProduct:
    """Build ``structure * supernode`` with the single bijection *f* on every
    arc (the Theorem 4 / Theorem 5 setting).

    Arcs are oriented low -> high vertex id.  Structure self-loops become
    intra-supernode ``(x, x') ~ (x, f(x'))`` edges.
    """
    f = np.asarray(f, dtype=np.int64)
    if len(f) != supernode.n:
        raise ValueError("bijection length must equal supernode order")
    if sorted(f.tolist()) != list(range(supernode.n)):
        raise ValueError("f is not a bijection on the supernode vertices")

    np_ = supernode.n
    ids = np.arange(np_, dtype=np.int64)

    chunks: list[np.ndarray] = []

    # Supernode-internal edges, replicated into every supernode.
    se = supernode.edge_array
    if len(se):
        offsets = np.arange(structure.n, dtype=np.int64)[:, None, None] * np_
        chunks.append((se[None, :, :] + offsets).reshape(-1, 2))

    # Cross edges along structure arcs (oriented low -> high).
    ce = structure.edge_array
    if len(ce):
        u = ce[:, 0:1] * np_ + ids[None, :]
        v = ce[:, 1:2] * np_ + f[None, :]
        chunks.append(np.stack([u.ravel(), v.ravel()], axis=1))

    # Structure self-loops -> intra-supernode f-matching edges.
    loops = structure.self_loops
    if len(loops):
        moved = ids[f != ids]
        if len(moved):
            u = loops[:, None] * np_ + moved[None, :]
            v = loops[:, None] * np_ + f[moved][None, :]
            chunks.append(np.stack([u.ravel(), v.ravel()], axis=1))

    edges = np.concatenate(chunks) if chunks else np.empty((0, 2), dtype=np.int64)
    g = Graph(
        structure.n * np_,
        edges,
        name=name or f"{structure.name}*{supernode.name}",
    )
    return StarProduct(graph=g, structure=structure, supernode=supernode, f=f)
