"""Moore bounds and scalability metrics (§2.2, Fig. 1).

The Moore bound caps the order of any graph of degree *d* and diameter *D*;
"Moore-bound efficiency" (order / bound) is the paper's scalability metric
for comparing topologies at equal radix.
"""

from __future__ import annotations

__all__ = [
    "moore_bound",
    "moore_bound_diameter3",
    "moore_efficiency",
    "starmax_bound",
    "asymptotic_polarstar_order",
    "optimal_structure_q",
]


def moore_bound(degree: int, diameter: int) -> int:
    """Upper bound on the order of a (degree, diameter) graph:
    ``1 + d * sum_{i<D} (d-1)^i``."""
    if degree < 1 or diameter < 0:
        raise ValueError("need degree >= 1, diameter >= 0")
    total = 1
    term = degree
    for _ in range(diameter):
        total += term
        term *= degree - 1
    return total


def moore_bound_diameter3(degree: int) -> int:
    """The diameter-3 Moore bound ``d³ - d² + d + 1``."""
    d = degree
    return d**3 - d**2 + d + 1


def moore_efficiency(order: int, degree: int, diameter: int = 3) -> float:
    """Fraction of the Moore bound achieved by a topology."""
    return order / moore_bound(degree, diameter)


def starmax_bound(radix: int) -> int:
    """Upper bound on diameter-3 star products built from the known
    factor-graph properties (the "StarMax" curve in Fig. 1).

    A diameter-3 star product needs a diameter-2 structure graph (order at
    most the diameter-2 Moore bound ``d² + 1``) and a supernode with one of
    the P/P*/R*/R_1 properties (order at most ``2d' + 2``, the R* bound of
    Proposition 2, which dominates the others).  Maximize the product over
    all degree splits ``d + d' = radix``.
    """
    best = 0
    for d in range(1, radix + 1):
        dp = radix - d
        best = max(best, (d * d + 1) * (2 * dp + 2))
    return best


def asymptotic_polarstar_order(radix: int) -> float:
    """Eq. 2: the smooth approximation ``(8r³ + 12r² + 18r) / 27`` of the
    maximum PolarStar order with an Inductive-Quad supernode."""
    r = radix
    return (8 * r**3 + 12 * r**2 + 18 * r) / 27


def optimal_structure_q(radix: int) -> float:
    """Eq. 1: the (real-valued) optimizer ``q`` of the PolarStar order
    ``(q² + q + 1)(2·radix − 2q)`` — approximately ``2·radix / 3``.

    Setting the derivative to zero gives ``3q² − 2(d−1)q − (d−1) = 0``,
    i.e. ``q = ((d−1) + sqrt((d−1)(d+2))) / 3``.  (The paper prints
    ``sqrt((d−1)(d−2))``, which differs from the exact optimizer by a
    rounding-level amount; both are ≈ 2d/3 and the design-space search is
    exhaustive anyway.)
    """
    d = radix
    return ((d - 1) + ((d - 1) * (d + 2)) ** 0.5) / 3
