"""Executable theory: the constructive path arguments of §4–§5.

These functions *are* the proofs of Theorem 4 (and the alternating-path
Lemma) in executable form: given a star product whose factors satisfy the
R properties, they produce explicit walks witnessing the diameter bound,
case by case.  The test suite runs them over every vertex pair of several
instances — a mechanical check of the paper's central theorem, independent
of the router implementation in :mod:`repro.routing.polarstar_routing`.
"""

from __future__ import annotations

import numpy as np

from repro.core.star_product import StarProduct

__all__ = [
    "alternating_path",
    "theorem4_path",
    "verify_walk",
    "rstar_extremal_exists",
]


def alternating_path(
    star: StarProduct, structure_walk: list[int], start_coord: int
) -> list[int]:
    """Definition 3: the x'-alternating path over a structure walk.

    Follows ``structure_walk`` (a walk in the structure graph, self-loops
    allowed as repeated vertices) starting from supernode coordinate
    ``start_coord``; each step applies the arc bijection (f forward, f⁻¹
    backward; a self-loop step uses the quadric matching edge).  Returns
    product-vertex ids.  Raises if the walk uses a non-edge.
    """
    path = [star.node_id(structure_walk[0], start_coord)]
    coord = start_coord
    for a, b in zip(structure_walk, structure_walk[1:]):
        if a == b:
            if not star.structure.has_self_loop(a):
                raise ValueError(f"walk repeats non-quadric vertex {a}")
            coord = int(star.f[coord])
        elif star.structure.has_edge(a, b):
            coord = int(star.f[coord]) if a < b else int(star.f_inv[coord])
        else:
            raise ValueError(f"({a}, {b}) is not a structure edge")
        path.append(star.node_id(b, coord))
    return path


def _two_walk(star: StarProduct, x: int, y: int) -> list[int]:
    """A length-2 walk x ~ b ~ y in the structure graph (Property R),
    self-loops allowed."""
    s = star.structure
    for b in range(s.n):
        left = s.has_edge(x, b) or (b == x and s.has_self_loop(x))
        right = s.has_edge(b, y) or (b == y and s.has_self_loop(y))
        if left and right:
            return [x, b, y]
    raise ValueError(f"Property R violated: no 2-walk between {x} and {y}")


def theorem4_path(star: StarProduct, src: int, dst: int) -> list[int]:
    """The Theorem 4 construction: an explicit walk of length <= D+1 = 3
    from *src* to *dst*, following the paper's case analysis on Property R*
    (requires an involution supernode bijection; use the router for the
    R_1 / Theorem 5 case).

    Returns the product-vertex walk including endpoints.  Length is at most
    3 but not necessarily minimal — this is the existence proof, not the
    minimal router.
    """
    f = star.f
    if not np.array_equal(f[f], np.arange(len(f))):
        raise ValueError("theorem4_path needs an involution (Property R*)")
    sn = star.supernode
    c, cp = star.split(src)
    t, tp = star.split(dst)

    if src == dst:
        return [src]

    if c == t:
        # Same supernode: (c) direct edge, (b) f-pair via quadric edge or a
        # neighbor round trip, (d) the f-image detour.
        if sn.has_edge(cp, tp):
            return [src, dst]
        if tp == int(f[cp]):
            if star.structure.has_self_loop(c):
                return [src, dst]  # quadric matching edge
            # Need an ODD-length structure round trip: every hop applies the
            # involution, so 3 hops land on f(cp).  Take any neighbor a of
            # c, then a length-2 walk a ~ w ~ c (Property R).
            a = int(star.structure.neighbors(c)[0])
            walk = [c] + _two_walk(star, a, c)
            return alternating_path(star, walk, cp)
        if sn.has_edge(int(f[cp]), int(f[tp])):
            a = int(star.structure.neighbors(c)[0])
            mid1 = star.node_id(a, int(f[cp]))
            mid2 = star.node_id(a, int(f[tp]))
            return [src, mid1, mid2, dst]
        raise ValueError("Property R* violated for same-supernode pair")

    # The structure walk from c to t of length exactly 2 (Property R), and
    # its alternating lift; a one-hop intra-supernode transfer connects the
    # x'- and y'-alternating paths per the R* case.
    adjacent = star.structure.has_edge(c, t)

    if tp == cp and not adjacent:
        return alternating_path(star, _two_walk(star, c, t), cp)
    if adjacent:
        img = int(f[cp])
        if tp == img:
            return [src, dst]  # case (a): the cross edge itself
        if tp == cp:
            # case (b): alternating path over a 2-walk
            return alternating_path(star, _two_walk(star, c, t), cp)
        if sn.has_edge(img, tp):
            # case (c): cross, then hop inside t
            return [src, star.node_id(t, img), dst]
        if sn.has_edge(cp, int(f[tp])):
            # case (d): hop inside c, then cross
            return [src, star.node_id(c, int(f[tp])), dst]
        raise ValueError("Property R* violated for adjacent-supernode pair")

    # Non-adjacent: 2-walk c ~ b ~ t; insert the intra-supernode hop where
    # the R* case allows it.
    walk = _two_walk(star, c, t)
    b = walk[1]
    img1 = int(f[cp])  # coordinate after the first hop
    if sn.has_edge(img1, int(f[tp])):
        # hop inside b between the two alternating paths
        return [
            src,
            star.node_id(b, img1),
            star.node_id(b, int(f[tp])),
            dst,
        ]
    if sn.has_edge(cp, tp):
        # hop inside c first, then ride the tp-alternating path
        lifted = alternating_path(star, walk, tp)
        return [src] + lifted
    if sn.has_edge(int(f[cp]), int(f[tp])):
        # ride the cp-alternating path to t, then we need (f cp, f tp) hop —
        # insert it at b on the f-side coordinates
        return [
            src,
            star.node_id(b, img1),
            star.node_id(b, int(f[tp])),
            dst,
        ]
    # last R* case: tp == f(cp) — detour through a neighbor of c on the walk
    if tp == img1:
        lifted = alternating_path(star, _two_walk(star, b, t), img1)
        return [src] + lifted
    raise ValueError("Property R* cases exhausted — not an R* supernode?")


def verify_walk(star: StarProduct, walk: list[int]) -> bool:
    """Every consecutive pair of the walk is a product edge."""
    return all(star.graph.has_edge(a, b) for a, b in zip(walk, walk[1:]))


def rstar_extremal_exists(degree: int) -> bool:
    """Exhaustively decide whether a degree-``degree`` graph with Property
    R* attains the Proposition 2 bound of ``2·degree + 2`` vertices.

    §6.2.1 states (without proof) that such graphs exist *only* for
    ``d' ≡ 0, 3 (mod 4)``.  This is the executable check: it enumerates
    every labeled ``degree``-regular graph on ``2·degree + 2`` vertices and
    every involution, so it is only tractable for ``degree <= 2`` — enough
    to confirm the claim's first two negative cases (d' = 1, 2).
    """
    from itertools import combinations

    n = 2 * degree + 2
    if degree == 0:
        return True  # IQ_0
    if degree > 2:
        raise ValueError("exhaustive search only feasible for degree <= 2")

    vertices = list(range(n))
    all_edges = list(combinations(vertices, 2))

    def involutions():
        # all involutions on n elements (fixed points allowed)
        def rec(remaining, mapping):
            if not remaining:
                yield dict(mapping)
                return
            x = remaining[0]
            # fixed point
            yield from rec(remaining[1:], mapping | {x: x})
            for y in remaining[1:]:
                rest = [v for v in remaining[1:] if v != y]
                yield from rec(rest, mapping | {x: y, y: x})

        yield from rec(vertices, {})

    import numpy as np

    from repro.graphs.base import Graph
    from repro.graphs.properties import has_property_rstar

    m_needed = n * degree // 2
    for edge_set in combinations(all_edges, m_needed):
        deg = [0] * n
        ok = True
        for u, v in edge_set:
            deg[u] += 1
            deg[v] += 1
            if deg[u] > degree or deg[v] > degree:
                ok = False
                break
        if not ok or any(d != degree for d in deg):
            continue
        g = Graph(n, edge_set)
        for f in involutions():
            farr = np.array([f[v] for v in vertices])
            if has_property_rstar(g, farr):
                return True
    return False
