"""PolarStar: the paper's topology family (§6, §7).

A PolarStar of network radix ``d*`` is the star product of

* an Erdős–Rényi polarity graph ``ER_q`` (structure, degree ``q + 1``), and
* an Inductive-Quad ``IQ_{d'}`` or Paley supernode of degree ``d'``,

with ``(q + 1) + d' == d*``.  :func:`design_space` enumerates every feasible
``(q, d', supernode)`` combination for a radix; :func:`best_config` picks the
largest (what Fig. 1 plots); :func:`build_polarstar` materializes the graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.fields import prime_powers_up_to
from repro.graphs.er_polarity import er_order, er_polarity_graph
from repro.graphs.inductive_quad import inductive_quad, iq_order
from repro.graphs.paley import paley_feasible_degrees, paley_graph, paley_order
from repro.core.star_product import StarProduct, star_product

__all__ = [
    "SUPERNODE_KINDS",
    "PolarStarConfig",
    "design_space",
    "best_config",
    "polarstar_order",
    "build_polarstar",
]

#: Supported supernode kinds.
SUPERNODE_KINDS = ("iq", "paley")


@dataclass(frozen=True, order=True)
class PolarStarConfig:
    """One feasible PolarStar design point."""

    q: int
    dprime: int
    supernode_kind: str

    @property
    def structure_degree(self) -> int:
        return self.q + 1

    @property
    def radix(self) -> int:
        return self.q + 1 + self.dprime

    @property
    def structure_order(self) -> int:
        return er_order(self.q)

    @property
    def supernode_order(self) -> int:
        if self.supernode_kind == "iq":
            return iq_order(self.dprime)
        return paley_order(self.dprime)

    @property
    def order(self) -> int:
        return self.structure_order * self.supernode_order

    @property
    def name(self) -> str:
        kind = "IQ" if self.supernode_kind == "iq" else "Paley"
        return f"PolarStar(q={self.q}, d'={self.dprime}, {kind})"


def _iq_degree_ok(d: int) -> bool:
    return d >= 0 and d % 4 in (0, 3)


@lru_cache(maxsize=None)
def design_space(radix: int, kinds: tuple[str, ...] = SUPERNODE_KINDS) -> tuple[PolarStarConfig, ...]:
    """All feasible PolarStar configurations of the given network radix,
    sorted by decreasing order.  This realizes the Fig. 7 sweep.

    Structure degree must be at least 3 (``q >= 2``) so the ER graph is a
    genuine diameter-2 graph; the supernode degree takes the remainder.
    """
    configs: list[PolarStarConfig] = []
    paley_ok = set(paley_feasible_degrees(radix))
    for q in prime_powers_up_to(radix - 1):
        dprime = radix - (q + 1)
        if dprime < 0:
            continue
        if "iq" in kinds and _iq_degree_ok(dprime):
            configs.append(PolarStarConfig(q, dprime, "iq"))
        if "paley" in kinds and dprime in paley_ok:
            configs.append(PolarStarConfig(q, dprime, "paley"))
    configs.sort(key=lambda c: c.order, reverse=True)
    return tuple(configs)


def best_config(radix: int, kinds: tuple[str, ...] = SUPERNODE_KINDS) -> PolarStarConfig | None:
    """Largest-order feasible configuration at this radix (Fig. 1 points)."""
    space = design_space(radix, kinds)
    return space[0] if space else None


def polarstar_order(radix: int, kinds: tuple[str, ...] = SUPERNODE_KINDS) -> int:
    """Order of the largest PolarStar at this radix (0 if infeasible)."""
    cfg = best_config(radix, kinds)
    return cfg.order if cfg else 0


def build_polarstar(config: PolarStarConfig) -> StarProduct:
    """Materialize the PolarStar graph for a configuration.

    The involution (IQ) or R_1 bijection (Paley) supplied by the supernode
    constructor is used on every structure arc, and ER_q's quadric self-loops
    become intra-supernode matching edges (§6.1.2).
    """
    structure = er_polarity_graph(config.q)
    if config.supernode_kind == "iq":
        supernode, f = inductive_quad(config.dprime)
    elif config.supernode_kind == "paley":
        supernode, f = paley_graph(2 * config.dprime + 1)
    else:
        raise ValueError(f"unknown supernode kind {config.supernode_kind!r}")
    return star_product(structure, supernode, f, name=config.name)
