"""PolarStar's primary contribution: low-diameter star products.

* :mod:`repro.core.moore` — degree/diameter bounds and efficiency metrics.
* :mod:`repro.core.star_product` — the star product of Definition 1 and its
  single-bijection low-diameter specialization (Theorems 4 & 5).
* :mod:`repro.core.polarstar` — the PolarStar family (ER_q * IQ / Paley),
  including the per-radix design-space search of §7.
"""

from repro.core.moore import (
    moore_bound,
    moore_bound_diameter3,
    moore_efficiency,
    starmax_bound,
)
from repro.core.star_product import StarProduct, star_product
from repro.core.polarstar import (
    PolarStarConfig,
    best_config,
    build_polarstar,
    design_space,
    polarstar_order,
)

__all__ = [
    "moore_bound",
    "moore_bound_diameter3",
    "moore_efficiency",
    "starmax_bound",
    "StarProduct",
    "star_product",
    "PolarStarConfig",
    "best_config",
    "build_polarstar",
    "design_space",
    "polarstar_order",
]
