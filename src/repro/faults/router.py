"""Fault-aware routing: graceful degradation around a live health mask.

:class:`FaultAwareRouter` wraps any :class:`~repro.routing.base.Router` and
consults a shared :class:`~repro.faults.health.LinkHealth`.  On a clean
network it is hop-for-hop identical to the wrapped router (the fast path
delegates without touching any fault state).  Under faults it walks a
fallback ladder, counting which rung served each decision:

1. **primary** — the wrapped router's minimal hops, filtered to healthy
   links that still make progress on the degraded graph;
2. **alternate** — the wrapped router's *other* minimal hops
   (``all_minimal_hops``, where available — PolarStar's path diversity,
   cf. arXiv:2403.12231), same filter;
3. **recomputed** — minimal hops on the degraded graph itself, from
   BFS distance-to-destination vectors recomputed after topology changes;
4. **detour** — a bounded non-minimal (Valiant-style) sidestep, used only
   when a caller excludes blocked ports (the simulator's reroute path);
   progress is bounded by ``detour_slack`` extra hops.

If the destination is unreachable on the healthy subgraph the router
raises :class:`RouteUnavailableError` — callers decide the drop policy.

Distance vectors are cached per destination and keyed by the health
``epoch``.  When the epoch moves, the cache is invalidated and at most
``recompute_budget`` of the most recently used destinations are recomputed
*eagerly* (inside an ``obs.span("faults.recompute")`` so the latency lands
in the profile tree); the rest recompute lazily on first use.  The budget
models a router control plane that must bound its convergence burst.

Store-bypass contract: these epoch-keyed distance vectors deliberately do
**not** go through the content-addressed artifact store
(:mod:`repro.store`).  A degraded graph is an ephemeral mid-run state —
its distances are invalidated by the next health event, not by a schema
bump, and persisting them would poison warm runs with fault history.  Only
the pristine-topology table behind the *inner* router may come from the
store (see ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.faults.health import UNREACHABLE, LinkHealth
from repro.routing.base import Router

__all__ = [
    "FaultAwareRouter",
    "RouteUnavailableError",
]

#: Fallback-ladder rung names, in the order they are tried.
RUNGS = ("primary", "alternate", "recomputed", "detour")


class RouteUnavailableError(RuntimeError):
    """No healthy path exists from the current router to the destination."""


class FaultAwareRouter(Router):
    """Wrap *inner* with fault masking, fallback routing and recompute."""

    def __init__(
        self,
        inner: Router,
        health: LinkHealth,
        recompute_budget: int = 32,
        detour_slack: int = 2,
    ):
        if health.graph is not inner.graph and not (
            health.graph.n == inner.graph.n
            and np.array_equal(health.graph.indptr, inner.graph.indptr)
            and np.array_equal(health.graph.indices, inner.graph.indices)
        ):
            raise ValueError("health mask and wrapped router disagree on the graph")
        if recompute_budget < 0 or detour_slack < 0:
            raise ValueError("recompute_budget and detour_slack must be >= 0")
        self.inner = inner
        self.graph = inner.graph
        self.health = health
        self.recompute_budget = recompute_budget
        self.detour_slack = detour_slack
        self._epoch = health.epoch
        #: dest -> distance-to-dest vector on the healthy subgraph
        #: (insertion order doubles as a recency approximation).
        self._dist_cache: dict[int, np.ndarray] = {}
        #: Plain tallies, bulk-flushed by the simulator (see sim/packet.py).
        self.rung_counts: dict[str, int] = {r: 0 for r in RUNGS}
        self.unreachable_count = 0
        self.recompute_eager = 0
        self.recompute_lazy = 0
        #: Eager batch sizes per epoch change (histogram fodder).
        self.recompute_batches: list[int] = []

    # -- cache maintenance ---------------------------------------------------

    def sync(self) -> None:
        """Invalidate per-epoch state and eagerly recompute the budgeted
        most-recent destinations.  Called lazily on every query, and
        explicitly by the simulator right after it applies a fault event."""
        if self._epoch == self.health.epoch:
            return
        recent = list(self._dist_cache)[-self.recompute_budget :] if self.recompute_budget else []
        self._dist_cache.clear()
        self._epoch = self.health.epoch
        with obs.span("faults.recompute"):
            for dest in recent:
                self._dist_cache[dest] = self.health.bfs_from(dest)
        self.recompute_eager += len(recent)
        self.recompute_batches.append(len(recent))

    def _dist_to(self, dest: int) -> np.ndarray:
        self.sync()
        vec = self._dist_cache.get(dest)
        if vec is None:
            vec = self.health.bfs_from(dest)
            self._dist_cache[dest] = vec
            self.recompute_lazy += 1
        return vec

    # -- Router interface ----------------------------------------------------

    def distance(self, current: int, dest: int) -> int:
        """Healthy-subgraph distance; the wrapped router's answer when the
        network is clean, :data:`UNREACHABLE` when *dest* is cut off."""
        if self.health.clean:
            return self.inner.distance(current, dest)
        return int(self._dist_to(dest)[current])

    def next_hops(self, current: int, dest: int) -> list[int]:
        if current == dest:
            return []
        hops, _ = self.route_hops(current, dest)
        return hops

    # -- the fallback ladder -------------------------------------------------

    def route_hops(
        self, current: int, dest: int, exclude: tuple[int, ...] = ()
    ) -> tuple[list[int], str]:
        """Candidate next hops and the ladder rung that produced them.

        ``exclude`` removes specific neighbor routers from consideration
        (the simulator passes ports it just found blocked); only with
        exclusions can the non-minimal **detour** rung fire, since the
        recomputed rung always succeeds on a reachable destination.
        """
        if self.health.clean and not exclude:
            hops = self.inner.next_hops(current, dest)
            if not hops:
                raise RouteUnavailableError(
                    f"no route from {current} to {dest} (wrapped router)"
                )
            self.rung_counts["primary"] += 1
            return hops, "primary"

        dvec = self._dist_to(dest)
        du = int(dvec[current])
        if du >= UNREACHABLE or not self.health.node_up(current):
            self.unreachable_count += 1
            raise RouteUnavailableError(
                f"{dest} unreachable from {current} on the degraded network"
            )

        def usable(h: int) -> bool:
            return h not in exclude and self.health.is_up(current, h)

        # 1) the wrapped router's own choice, if it survives the fault mask
        #    and still makes progress on the degraded graph.
        primary = [
            h for h in self.inner.next_hops(current, dest) if usable(h) and dvec[h] < du
        ]
        if primary:
            self.rung_counts["primary"] += 1
            return primary, "primary"

        # 2) its other minimal hops (path diversity), same filter.
        all_min = getattr(self.inner, "all_minimal_hops", None)
        if all_min is not None:
            alternate = [h for h in all_min(current, dest) if usable(h) and dvec[h] < du]
            if alternate:
                self.rung_counts["alternate"] += 1
                return alternate, "alternate"

        # 3) minimal hops of the degraded graph itself (recomputed tables).
        nbrs = self.health.healthy_neighbors(current)
        recomputed = [int(h) for h in nbrs if int(h) not in exclude and dvec[h] == du - 1]
        if recomputed:
            self.rung_counts["recomputed"] += 1
            return recomputed, "recomputed"

        # 4) bounded non-minimal sidestep: any healthy neighbor within
        #    detour_slack extra hops, nearest (then lowest id) first.
        detour = sorted(
            (int(dvec[h]), int(h))
            for h in nbrs
            if int(h) not in exclude and dvec[h] < UNREACHABLE and dvec[h] <= du + self.detour_slack - 1
        )
        if detour:
            self.rung_counts["detour"] += 1
            return [h for _, h in detour], "detour"

        self.unreachable_count += 1
        raise RouteUnavailableError(
            f"all usable ports from {current} toward {dest} are excluded or down"
        )
