"""Live link/node health state for one graph.

:class:`LinkHealth` is the single source of truth the fault-aware router
and the packet simulator share: a boolean mask over the graph's directed
CSR adjacency entries plus a node-alive mask, mutated by applying
:class:`~repro.faults.model.FaultEvent` records in timestamp order.  Every
mutation bumps ``epoch`` — consumers cache routing state keyed by epoch and
invalidate when it moves (see :class:`~repro.faults.router.FaultAwareRouter`).

The mask is CSR-aligned so the degraded-graph BFS used for recomputed
routes runs on NumPy index arrays rather than edge sets.
"""

from __future__ import annotations

import numpy as np

from repro.faults.model import FaultEvent, FaultSchedule
from repro.graphs.base import Graph

__all__ = [
    "UNREACHABLE",
    "LinkHealth",
]

#: Distance sentinel for vertices cut off on the healthy subgraph (large
#: enough that cost arithmetic never wraps int64, small enough to add to).
UNREACHABLE = 1 << 30


class LinkHealth:
    """Mutable health mask over one :class:`~repro.graphs.base.Graph`."""

    def __init__(self, graph: Graph):
        if graph.n < 1:
            raise ValueError("LinkHealth needs a non-empty graph")
        self.graph = graph
        #: Monotone state version; bumped by every applied event.
        self.epoch = 0
        # CSR-aligned directed-entry mask (parallel to graph.indices).
        self._edge_ok = np.ones(len(graph.indices), dtype=bool)
        self._node_ok = np.ones(graph.n, dtype=bool)
        self._down_edges: set[tuple[int, int]] = set()
        self._degraded: dict[tuple[int, int], float] = {}

    # -- CSR positions -------------------------------------------------------

    def _entry(self, u: int, v: int) -> int:
        """Position of directed entry (u -> v) in the CSR ``indices`` array."""
        g = self.graph
        nbrs = g.neighbors(u)
        i = int(np.searchsorted(nbrs, v))
        if i >= len(nbrs) or nbrs[i] != v:
            raise ValueError(f"({u}, {v}) is not a link of {g.name!r}")
        return int(g.indptr[u]) + i

    def _set_edge(self, u: int, v: int, up: bool) -> None:
        self._edge_ok[self._entry(u, v)] = up
        self._edge_ok[self._entry(v, u)] = up

    # -- event application ---------------------------------------------------

    def apply(self, event: FaultEvent) -> None:
        """Apply one fault event; bumps ``epoch``.

        ``link_up`` clears both a down and a degraded state; ``node_up``
        restores the node but leaves independently-failed links down.
        """
        if event.is_node_event:
            if not 0 <= event.u < self.graph.n:
                raise ValueError(f"node event names vertex {event.u} outside graph")
            self._node_ok[event.u] = event.kind == "node_up"
        else:
            e = event.edge()
            if event.kind == "link_down":
                self._set_edge(*e, up=False)
                self._down_edges.add(e)
                self._degraded.pop(e, None)
            elif event.kind == "link_up":
                self._set_edge(*e, up=True)
                self._down_edges.discard(e)
                self._degraded.pop(e, None)
            else:  # link_degrade: up, but slow
                self._entry(*e)  # validates the link exists
                self._degraded[e] = float(event.factor)
        self.epoch += 1

    def apply_schedule(self, schedule: FaultSchedule) -> None:
        """Apply every event of *schedule* in time order (static studies)."""
        for ev in schedule:
            self.apply(ev)

    def reset(self) -> None:
        """Return to the pristine all-up state (bumps ``epoch`` if dirty)."""
        if self.clean:
            return
        self._edge_ok[:] = True
        self._node_ok[:] = True
        self._down_edges.clear()
        self._degraded.clear()
        self.epoch += 1

    # -- queries -------------------------------------------------------------

    @property
    def clean(self) -> bool:
        """True iff no link or node is currently down or degraded."""
        return (
            not self._down_edges
            and not self._degraded
            and bool(self._node_ok.all())
        )

    def node_up(self, v: int) -> bool:
        return bool(self._node_ok[v])

    def is_up(self, u: int, v: int) -> bool:
        """Can a packet traverse the (existing) link u -> v right now?"""
        return bool(
            self._node_ok[u] and self._node_ok[v] and self._edge_ok[self._entry(u, v)]
        )

    def degrade_factor(self, u: int, v: int) -> float:
        """Serialization multiplier for link (u, v); 1.0 when healthy."""
        e = (u, v) if u < v else (v, u)
        return self._degraded.get(e, 1.0)

    def healthy_neighbors(self, u: int) -> np.ndarray:
        """Neighbors of *u* reachable over currently-up links (sorted)."""
        g = self.graph
        if not self._node_ok[u]:
            return np.empty(0, dtype=np.int64)
        lo, hi = int(g.indptr[u]), int(g.indptr[u + 1])
        nbrs = g.indices[lo:hi]
        return nbrs[self._edge_ok[lo:hi] & self._node_ok[nbrs]]

    def links_down_count(self) -> int:
        """Undirected links currently unusable (down, or touching a down
        node) — the ``faults.links_down`` gauge value."""
        down_nodes = np.nonzero(~self._node_ok)[0]
        dead: set[tuple[int, int]] = set(self._down_edges)
        for x in down_nodes:
            xi = int(x)
            for v in self.graph.neighbors(xi):
                vi = int(v)
                dead.add((xi, vi) if xi < vi else (vi, xi))
        return len(dead)

    def nodes_down_count(self) -> int:
        return int((~self._node_ok).sum())

    # -- derived structures --------------------------------------------------

    def bfs_from(self, source: int) -> np.ndarray:
        """Hop distances from *source* over the healthy subgraph.

        Returns an ``int64`` vector with :data:`UNREACHABLE` for cut-off
        vertices (including every down node, and everything if *source*
        itself is down).  Because links fail bidirectionally this is also
        the distance *to* ``source`` — the router's distance-to-destination
        table.
        """
        g = self.graph
        dist = np.full(g.n, UNREACHABLE, dtype=np.int64)
        if not self._node_ok[source]:
            return dist
        dist[source] = 0
        frontier = [source]
        d = 0
        while frontier:
            d += 1
            nxt: list[int] = []
            for u in frontier:
                lo, hi = int(g.indptr[u]), int(g.indptr[u + 1])
                nbrs = g.indices[lo:hi][self._edge_ok[lo:hi]]
                for v in nbrs:
                    vi = int(v)
                    if dist[vi] == UNREACHABLE and self._node_ok[vi]:
                        dist[vi] = d
                        nxt.append(vi)
            frontier = nxt
        return dist

    def healthy_graph(self) -> Graph:
        """Materialized copy of the graph with down links/nodes removed
        (for static analyses and tests; routing uses the masks directly)."""
        e = self.graph.edge_array
        keep = (
            self._node_ok[e[:, 0]]
            & self._node_ok[e[:, 1]]
            & np.array(
                [(int(u), int(v)) not in self._down_edges for u, v in e], dtype=bool
            )
            if len(e)
            else np.ones(0, dtype=bool)
        )
        loops = [int(v) for v in self.graph.self_loops if self._node_ok[v]]
        return Graph(
            self.graph.n, e[keep], self_loops=loops, name=f"{self.graph.name}~faulty"
        )

    def __repr__(self) -> str:
        return (
            f"LinkHealth({self.graph.name!r}, epoch={self.epoch}, "
            f"links_down={self.links_down_count()}, "
            f"nodes_down={self.nodes_down_count()})"
        )
