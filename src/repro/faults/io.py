"""Deterministic I/O fault injection for the durability layer.

This module is the OS-call seam between the durability-critical writers
(:mod:`repro.store.core`'s disk tier, :mod:`repro.runtime.journal`) and
the filesystem.  Production code talks to :class:`DiskIo`, a thin,
faithful wrapper over ``os``-level primitives; tests and the crash-point
explorer (:mod:`repro.runtime.crashpoints`) substitute :class:`FaultyIo`,
which routes every durability-relevant operation through an
:class:`IoPolicy` that can inject EIO, ENOSPC, short (torn) writes,
fsync failures, or a simulated hard crash — with byte-deterministic
schedules (same seed → same fault timeline, the same discipline RL105
enforces for :mod:`repro.faults.model`).

The operation vocabulary (:data:`OP_KINDS`) is exactly the set of calls
whose ordering decides what survives a power loss::

    create      O_EXCL temp-file creation (the ``.tmp-*`` protocol)
    open_append append-mode open (the journal's writer)
    write       buffered write of a byte blob
    flush       user-space buffer -> page cache
    fsync       page cache -> media (persists content *and* existence)
    replace     atomic rename over the destination
    unlink      file removal
    fsync_dir   directory fsync (persists renames/unlinks)

:class:`FaultyIo` additionally maintains a *durable-state shadow*: the
byte contents a crash at this instant is guaranteed to leave on media
under the standard crash-consistency model (``fsync(file)`` persists the
file's content and existence; ``replace``/``unlink`` persist at the next
``fsync_dir`` of the parent, or earlier if the OS happens to flush —
which is why the explorer tests both outcomes).  After a simulated crash
:meth:`FaultyIo.materialize_crash_state` rewrites the real sandbox to
that durable view, so recovery code is exercised against a legal
post-power-loss filesystem, not a conveniently intact one.

Every injected fault increments the ambient counter
``io.faults.injected`` (label ``kind``).
"""

from __future__ import annotations

import errno
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO

import numpy as np

from repro import obs

__all__ = [
    "CRASH_MODES",
    "DiskIo",
    "FAULT_KINDS",
    "FaultyIo",
    "IoFault",
    "IoFile",
    "IoOp",
    "IoPolicy",
    "ScriptedPolicy",
    "SeededPolicy",
    "SimulatedCrash",
]

#: Operation kinds a policy can match on (see the module docstring).
OP_KINDS = (
    "create",
    "open_append",
    "write",
    "flush",
    "fsync",
    "replace",
    "unlink",
    "fsync_dir",
)

#: Fault kinds a policy can inject.
FAULT_KINDS = ("eio", "enospc", "short_write", "fsync_fail", "crash")

#: What a simulated crash leaves on media:
#: ``sync``  — only explicitly persisted state (fsync'd content, dir-fsync'd
#:             renames) survives: the adversarial minimum.
#: ``flush`` — the OS flushed every cache just before the power cut: all
#:             volatile writes and pending metadata survive (this is the
#:             outcome that leaves stray ``.tmp-*`` files behind).
#: ``torn``  — like ``sync``, but the file targeted by the in-flight write
#:             additionally lands with its volatile content plus a prefix
#:             of the new data: the classic torn tail.
CRASH_MODES = ("sync", "flush", "torn")


class SimulatedCrash(BaseException):
    """A simulated power loss.

    Deliberately **not** an :class:`Exception`: durability code catches
    ``OSError`` (and sometimes ``Exception``) to degrade gracefully, and a
    crash must never be degradable — it has to unwind the whole workload
    like SIGKILL would.
    """


class IoFile:
    """An open file handle tracked by the seam (path + raw stream)."""

    __slots__ = ("raw", "path")

    def __init__(self, raw: BinaryIO, path: Path) -> None:
        self.raw = raw
        self.path = path

    @property
    def closed(self) -> bool:
        return self.raw.closed


@dataclass(frozen=True)
class IoOp:
    """One durability-relevant operation, in program order.

    ``seq`` is the global 0-based operation index; ``kind_seq`` is the
    0-based index among operations of the same ``kind`` (so policies can
    say "the 2nd fsync" without counting unrelated ops).
    """

    seq: int
    kind: str
    path: str
    kind_seq: int


@dataclass(frozen=True)
class IoFault:
    """A fault to inject, plus the match that selects its victim op.

    Exactly which op it fires on is chosen by ``op_seq`` (global index)
    and/or ``op_kind``/``nth`` (the nth op of that kind, 0-based;
    ``nth=None`` means the first op of that kind still unmatched).
    ``crash_mode`` selects what a ``kind="crash"`` fault leaves on media
    (see :data:`CRASH_MODES`; non-write ops treat ``torn`` as ``sync``).
    """

    kind: str
    op_seq: int | None = None
    op_kind: str | None = None
    nth: int | None = None
    crash_mode: str = "sync"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.crash_mode not in CRASH_MODES:
            raise ValueError(
                f"unknown crash mode {self.crash_mode!r}; "
                f"expected one of {CRASH_MODES}"
            )
        if self.op_seq is None and self.op_kind is None:
            raise ValueError(
                "IoFault needs a match: set op_seq and/or op_kind (+ nth)"
            )
        if self.op_kind is not None and self.op_kind not in OP_KINDS:
            raise ValueError(
                f"unknown op kind {self.op_kind!r}; expected one of {OP_KINDS}"
            )

    def matches(self, op: IoOp) -> bool:
        if self.op_seq is not None and self.op_seq != op.seq:
            return False
        if self.op_kind is not None:
            if self.op_kind != op.kind:
                return False
            if self.nth is not None and self.nth != op.kind_seq:
                return False
        return True


class IoPolicy:
    """Decides, per operation, whether to inject a fault (base: never)."""

    def fault_for(self, op: IoOp) -> IoFault | None:
        return None


class ScriptedPolicy(IoPolicy):
    """Injects an explicit fault list; each fault fires once.

    Faults are consumed in list order: the first still-pending fault that
    matches the current op fires.  ``remaining`` exposes what never fired
    (useful for asserting a script was fully consumed).
    """

    def __init__(self, faults: list[IoFault] | tuple[IoFault, ...]) -> None:
        self._pending: list[IoFault] = list(faults)

    @property
    def remaining(self) -> list[IoFault]:
        return list(self._pending)

    def fault_for(self, op: IoOp) -> IoFault | None:
        for i, fault in enumerate(self._pending):
            if fault.matches(op):
                del self._pending[i]
                return fault
        return None


class SeededPolicy(IoPolicy):
    """Seeded random fault injection with a deterministic timeline.

    Draws **exactly one** uniform variate per operation (regardless of
    whether a fault fires), so the fault timeline depends only on the
    seed and the op sequence — two runs of the same workload under the
    same seed inject byte-identical fault schedules.  Probabilities are
    applied only to the op kinds they make sense for: ``short_write`` to
    ``write`` ops, ``fsync_fail`` to ``fsync``/``fsync_dir``, and
    ``eio``/``enospc`` to any mutating op.
    """

    def __init__(
        self,
        seed: int,
        p_eio: float = 0.0,
        p_enospc: float = 0.0,
        p_short_write: float = 0.0,
        p_fsync_fail: float = 0.0,
    ) -> None:
        for name, p in (
            ("p_eio", p_eio),
            ("p_enospc", p_enospc),
            ("p_short_write", p_short_write),
            ("p_fsync_fail", p_fsync_fail),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.seed = seed
        self.p_eio = p_eio
        self.p_enospc = p_enospc
        self.p_short_write = p_short_write
        self.p_fsync_fail = p_fsync_fail
        self._rng = np.random.default_rng(seed)
        #: ``(op_seq, op_kind, fault_kind)`` for every fault that fired.
        self.timeline: list[tuple[int, str, str]] = []

    def fault_for(self, op: IoOp) -> IoFault | None:
        u = float(self._rng.random())  # one draw per op, always
        ladder: list[tuple[str, float]] = [("eio", self.p_eio),
                                           ("enospc", self.p_enospc)]
        if op.kind == "write":
            ladder.append(("short_write", self.p_short_write))
        if op.kind in ("fsync", "fsync_dir"):
            ladder.append(("fsync_fail", self.p_fsync_fail))
        cum = 0.0
        for kind, p in ladder:
            cum += p
            if u < cum:
                self.timeline.append((op.seq, op.kind, kind))
                return IoFault(kind, op_seq=op.seq)
        return None


class DiskIo:
    """The real OS-call implementation of the seam (stateless)."""

    def exclusive_create(self, directory: Path, prefix: str = ".tmp-") -> IoFile:
        """Create+open a process-unique O_EXCL temp file in *directory*."""
        fd, name = tempfile.mkstemp(dir=str(directory), prefix=prefix)
        return IoFile(os.fdopen(fd, "wb"), Path(name))

    def open_append(self, path: Path) -> IoFile:
        return IoFile(open(path, "ab"), Path(path))

    def write(self, f: IoFile, data: bytes) -> None:
        f.raw.write(data)

    def flush(self, f: IoFile) -> None:
        f.raw.flush()

    def fsync(self, f: IoFile) -> None:
        f.raw.flush()
        os.fsync(f.raw.fileno())

    def close(self, f: IoFile) -> None:
        if not f.raw.closed:
            f.raw.close()

    def replace(self, src: Path, dst: Path) -> None:
        os.replace(src, dst)

    def unlink(self, path: Path) -> None:
        os.unlink(path)

    def fsync_dir(self, path: Path) -> None:
        """fsync a directory so renames/unlinks in it survive power loss."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def _os_error(code: int, op: IoOp) -> OSError:
    return OSError(code, f"{os.strerror(code)} [injected at {op.kind} #{op.seq}]")


class FaultyIo(DiskIo):
    """A :class:`DiskIo` that injects policy-driven faults and models
    what a crash would leave on media.

    Real files are still written (the workload must be able to read its
    own output), but alongside them the seam tracks, per touched path:

    * ``shadow``  — the volatile view (page cache): every byte written;
    * ``synced``  — the last explicitly-fsync'd content;
    * ``durable`` — the guaranteed post-crash content (``None`` = the
      path is guaranteed absent), advanced by ``fsync`` for file content
      + existence and by ``fsync_dir`` for pending renames/unlinks.

    A ``crash`` fault freezes ``durable`` according to its mode, marks
    the seam dead (every later op raises :class:`SimulatedCrash`), and
    raises :class:`SimulatedCrash`; :meth:`materialize_crash_state` then
    rewrites the real sandbox to the durable view so recovery runs
    against a legal post-power-loss filesystem.

    Temp-file names are deterministic (``.tmp-sim-NNNN``) rather than
    ``mkstemp``-random, so op traces and explorer reports are
    byte-stable across runs.
    """

    def __init__(self, policy: IoPolicy | None = None) -> None:
        self.policy = policy if policy is not None else IoPolicy()
        self.ops: list[IoOp] = []
        self.injected: list[tuple[IoOp, str]] = []
        self.crashed = False
        self.crash_op: IoOp | None = None
        self._kind_counts: dict[str, int] = {}
        self._open: list[IoFile] = []
        self._shadow: dict[str, bytes] = {}
        self._synced: dict[str, bytes] = {}
        self._durable: dict[str, bytes | None] = {}
        #: metadata ops awaiting a directory fsync: ("replace", src, dst,
        #: synced-content) or ("unlink", path).
        self._pending_meta: list[tuple[str, ...]] = []

    # -- bookkeeping ---------------------------------------------------------

    def _begin(self, kind: str, path: Path) -> IoOp:
        if self.crashed:
            raise SimulatedCrash(
                f"I/O after simulated crash at op #{self.crash_op.seq}"
                if self.crash_op is not None
                else "I/O after simulated crash"
            )
        kind_seq = self._kind_counts.get(kind, 0)
        self._kind_counts[kind] = kind_seq + 1
        op = IoOp(seq=len(self.ops), kind=kind, path=str(path), kind_seq=kind_seq)
        self.ops.append(op)
        return op

    def _track(self, path: Path) -> None:
        """First touch: snapshot the path's pre-existing state as durable."""
        key = str(path)
        if key in self._durable:
            return
        if path.is_file():
            content = path.read_bytes()
            self._durable[key] = content
            self._synced[key] = content
            self._shadow[key] = content
        else:
            self._durable[key] = None

    def _count_injected(self, kind: str) -> None:
        obs.get_registry().counter(
            "io.faults.injected",
            help="I/O faults injected through the repro.faults.io seam",
            labels=("kind",),
        ).labels(kind=kind).inc()

    def _crash(self, op: IoOp, mode: str, data: bytes | None = None) -> None:
        """Freeze the durable map per *mode* and die."""
        if mode == "flush":
            # The OS flushed everything (content + pending metadata) just
            # before the cut: the real sandbox as-is *is* the durable state.
            for key in list(self._durable):
                self._durable[key] = self._shadow.get(key)
        elif mode == "torn" and op.kind == "write" and data:
            # Only fsync'd state survives — except the in-flight file, whose
            # cached pages (old tail + half the new record) hit the platter.
            torn = self._shadow.get(op.path, b"") + data[: max(1, len(data) // 2)]
            self._durable[op.path] = torn
        # mode == "sync": the durable map is already exactly right.
        self.crashed = True
        self.crash_op = op
        self._count_injected("crash")
        self.injected.append((op, "crash:" + mode))
        raise SimulatedCrash(f"simulated crash at op #{op.seq} ({op.kind} {op.path})")

    def _inject(self, op: IoOp, data: bytes | None = None) -> bytes | None:
        """Consult the policy; raise for eio/enospc/fsync_fail/crash.

        Returns the (possibly truncated) data a ``write`` should proceed
        with: ``short_write`` writes a prefix for real, then raises ENOSPC
        — the torn-write failure mode where the caller *knows* it failed.
        """
        fault = self.policy.fault_for(op)
        if fault is None:
            return data
        if fault.kind == "crash":
            self._crash(op, fault.crash_mode if op.kind == "write" else
                        ("sync" if fault.crash_mode == "torn" else fault.crash_mode),
                        data)
        self._count_injected(fault.kind)
        self.injected.append((op, fault.kind))
        if fault.kind == "eio":
            raise _os_error(errno.EIO, op)
        if fault.kind == "enospc":
            raise _os_error(errno.ENOSPC, op)
        if fault.kind == "fsync_fail":
            raise _os_error(errno.EIO, op)
        # short_write: land a prefix, then fail like a full disk.
        if op.kind != "write" or data is None:
            raise _os_error(errno.EIO, op)
        prefix = data[: max(1, len(data) // 2)]
        super().write(self._file_for(op), prefix)
        self._shadow[op.path] = self._shadow.get(op.path, b"") + prefix
        raise _os_error(errno.ENOSPC, op)

    def _file_for(self, op: IoOp) -> IoFile:
        for f in self._open:
            if str(f.path) == op.path and not f.closed:
                return f
        raise RuntimeError(f"no open handle for {op.path}")

    # -- the seam ------------------------------------------------------------

    def exclusive_create(self, directory: Path, prefix: str = ".tmp-") -> IoFile:
        name = f"{prefix}sim-{len(self.ops):04d}"
        path = Path(directory) / name
        op = self._begin("create", path)
        self._track(path)
        self._inject(op)
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        f = IoFile(os.fdopen(fd, "wb"), path)
        self._open.append(f)
        self._shadow[op.path] = b""
        self._synced[op.path] = b""
        return f

    def open_append(self, path: Path) -> IoFile:
        path = Path(path)
        op = self._begin("open_append", path)
        self._track(path)
        self._inject(op)
        f = IoFile(open(path, "ab"), path)
        self._open.append(f)
        self._shadow.setdefault(op.path, b"")
        self._synced.setdefault(op.path, b"")
        return f

    def write(self, f: IoFile, data: bytes) -> None:
        op = self._begin("write", f.path)
        self._track(f.path)
        data2 = self._inject(op, data)
        super().write(f, data2 if data2 is not None else data)
        self._shadow[op.path] = self._shadow.get(op.path, b"") + data

    def flush(self, f: IoFile) -> None:
        op = self._begin("flush", f.path)
        self._inject(op)
        super().flush(f)

    def fsync(self, f: IoFile) -> None:
        op = self._begin("fsync", f.path)
        self._track(f.path)
        self._inject(op)
        super().fsync(f)
        content = self._shadow.get(op.path, b"")
        self._synced[op.path] = content
        # fsync persists content *and* existence (the inode reaches the
        # journal); only renames/unlinks additionally need fsync_dir.
        self._durable[op.path] = content

    def close(self, f: IoFile) -> None:
        # Not an op: closing moves no bytes toward the platter, and crash
        # unwinding must always be able to release handles.
        super().close(f)

    def replace(self, src: Path, dst: Path) -> None:
        src, dst = Path(src), Path(dst)
        op = self._begin("replace", dst)
        self._track(src)
        self._track(dst)
        self._inject(op)
        super().replace(src, dst)
        self._shadow[str(dst)] = self._shadow.pop(str(src), b"")
        moved_synced = self._synced.pop(str(src), b"")
        self._synced[str(dst)] = moved_synced
        self._pending_meta.append(("replace", str(src), str(dst), moved_synced))

    def unlink(self, path: Path) -> None:
        path = Path(path)
        op = self._begin("unlink", path)
        self._track(path)
        self._inject(op)
        super().unlink(path)
        self._shadow.pop(op.path, None)
        self._synced.pop(op.path, None)
        self._pending_meta.append(("unlink", op.path))

    def fsync_dir(self, path: Path) -> None:
        path = Path(path)
        op = self._begin("fsync_dir", path)
        self._inject(op)
        super().fsync_dir(path)
        still_pending: list[tuple[str, ...]] = []
        for entry in self._pending_meta:
            target = Path(entry[2] if entry[0] == "replace" else entry[1])
            if target.parent != path:
                still_pending.append(entry)
                continue
            if entry[0] == "replace":
                _, src, dst, synced = entry
                self._durable[dst] = self._synced.get(dst, synced)
                self._durable[src] = None
            else:
                self._durable[entry[1]] = None
        self._pending_meta = still_pending

    # -- crash-state reconstruction -----------------------------------------

    def durable_state(self) -> dict[str, bytes | None]:
        """The tracked post-crash contents (``None`` = guaranteed absent)."""
        return dict(self._durable)

    def materialize_crash_state(self) -> list[str]:
        """Rewrite the real sandbox to the durable view; returns changed paths.

        Open handles are released first (the process is "dead"; its fds are
        gone).  Paths whose durable state is ``None`` are removed; the rest
        are rewritten byte-for-byte.  This runs *outside* the seam — it is
        the simulated platter, not the simulated process.
        """
        for f in self._open:
            if not f.raw.closed:
                f.raw.close()
        changed: list[str] = []
        for key in sorted(self._durable):
            path = Path(key)
            want = self._durable[key]
            have = path.read_bytes() if path.is_file() else None
            if want == have:
                continue
            changed.append(key)
            if want is None:
                path.unlink()
            else:
                path.write_bytes(want)
        return changed
