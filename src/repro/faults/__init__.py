"""``repro.faults`` — dynamic fault injection and fault-tolerant routing.

The subsystem has four parts (see ``docs/FAULT_TOLERANCE.md``):

* :mod:`repro.faults.model` — typed :class:`FaultEvent` records and seeded
  :class:`FaultSchedule` scenario generators (permanent link/node failures,
  transient flaps, degraded links);
* :mod:`repro.faults.health` — :class:`LinkHealth`, the live link/node
  health mask shared by routing and simulation, with an ``epoch`` counter
  driving cache invalidation;
* :mod:`repro.faults.router` — :class:`FaultAwareRouter`, a
  :class:`~repro.routing.base.Router` wrapper that degrades gracefully
  through a primary → alternate → recomputed → detour fallback ladder and
  raises :class:`RouteUnavailableError` when a destination is cut off;
* :mod:`repro.faults.io` — the deterministic I/O fault-injection seam:
  :class:`DiskIo` (the real OS calls the store's disk tier and the run
  journal write through) and :class:`FaultyIo`, which injects scripted
  (:class:`ScriptedPolicy`) or seeded (:class:`SeededPolicy`) EIO /
  ENOSPC / torn writes / fsync failures / simulated crashes, and models
  the durable state a power cut leaves behind (driving
  ``repro faults crashpoints``, see :mod:`repro.runtime.crashpoints`).

The packet simulator (:mod:`repro.sim.packet`) consumes all three: pass a
``FaultSchedule`` to :class:`~repro.sim.packet.PacketSimulator` and fault
events enter the event heap, packets re-route with bounded retries, and
drops are accounted by cause.
"""

from repro.faults.health import LinkHealth, UNREACHABLE
from repro.faults.io import (
    CRASH_MODES,
    DiskIo,
    FAULT_KINDS,
    FaultyIo,
    IoFault,
    IoFile,
    IoOp,
    IoPolicy,
    ScriptedPolicy,
    SeededPolicy,
    SimulatedCrash,
)
from repro.faults.model import (
    EVENT_KINDS,
    FaultEvent,
    FaultSchedule,
    degraded_links,
    link_flaps,
    node_failures,
    permanent_link_failures,
)
from repro.faults.router import FaultAwareRouter, RouteUnavailableError

__all__ = [
    "CRASH_MODES",
    "DiskIo",
    "EVENT_KINDS",
    "FAULT_KINDS",
    "FaultAwareRouter",
    "FaultEvent",
    "FaultSchedule",
    "FaultyIo",
    "IoFault",
    "IoFile",
    "IoOp",
    "IoPolicy",
    "LinkHealth",
    "RouteUnavailableError",
    "ScriptedPolicy",
    "SeededPolicy",
    "SimulatedCrash",
    "UNREACHABLE",
    "degraded_links",
    "link_flaps",
    "node_failures",
    "permanent_link_failures",
]
