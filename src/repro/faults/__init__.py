"""``repro.faults`` — dynamic fault injection and fault-tolerant routing.

The subsystem has three parts (see ``docs/FAULT_TOLERANCE.md``):

* :mod:`repro.faults.model` — typed :class:`FaultEvent` records and seeded
  :class:`FaultSchedule` scenario generators (permanent link/node failures,
  transient flaps, degraded links);
* :mod:`repro.faults.health` — :class:`LinkHealth`, the live link/node
  health mask shared by routing and simulation, with an ``epoch`` counter
  driving cache invalidation;
* :mod:`repro.faults.router` — :class:`FaultAwareRouter`, a
  :class:`~repro.routing.base.Router` wrapper that degrades gracefully
  through a primary → alternate → recomputed → detour fallback ladder and
  raises :class:`RouteUnavailableError` when a destination is cut off.

The packet simulator (:mod:`repro.sim.packet`) consumes all three: pass a
``FaultSchedule`` to :class:`~repro.sim.packet.PacketSimulator` and fault
events enter the event heap, packets re-route with bounded retries, and
drops are accounted by cause.
"""

from repro.faults.health import LinkHealth, UNREACHABLE
from repro.faults.model import (
    EVENT_KINDS,
    FaultEvent,
    FaultSchedule,
    degraded_links,
    link_flaps,
    node_failures,
    permanent_link_failures,
)
from repro.faults.router import FaultAwareRouter, RouteUnavailableError

__all__ = [
    "EVENT_KINDS",
    "FaultAwareRouter",
    "FaultEvent",
    "FaultSchedule",
    "LinkHealth",
    "RouteUnavailableError",
    "UNREACHABLE",
    "degraded_links",
    "link_flaps",
    "node_failures",
    "permanent_link_failures",
]
