"""Typed fault events and seeded fault schedules (§11.2, made dynamic).

The static Fig. 14 study (:mod:`repro.analysis.faults`) deletes links from a
graph and re-measures it.  This module describes *when* things fail, so the
packet simulator can degrade a live network mid-run:

* a :class:`FaultEvent` is one timestamped state change — a link or node
  going down or coming back up, or a link entering a degraded (slow) state;
* a :class:`FaultSchedule` is a validated, time-sorted sequence of events,
  either written explicitly or generated from a *seeded scenario* so that
  every run is reproducible bit-for-bit (fault times and victim sets come
  from ``np.random.default_rng(seed)``, never ambient state).

Scenario generators cover the taxonomy used by docs/FAULT_TOLERANCE.md:
permanent random link failures (the paper's model), permanent node
failures, transient link flaps with up/down dwell times, and degraded
links that serialize packets more slowly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.graphs.base import Graph

__all__ = [
    "EVENT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "degraded_links",
    "link_flaps",
    "node_failures",
    "permanent_link_failures",
]

#: Recognized event kinds.  ``link_*`` events carry a ``(u, v)`` endpoint
#: pair; ``node_*`` events carry only ``u``.  ``link_degrade`` additionally
#: carries a serialization ``factor`` (>= 1); ``link_up`` clears both a
#: down state and a degraded state.
EVENT_KINDS = ("link_down", "link_up", "link_degrade", "node_down", "node_up")

_NODE_KINDS = frozenset({"node_down", "node_up"})


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One timestamped fault-state change.

    Ordering is by ``(time, kind, u, v)`` so heterogeneous schedules sort
    deterministically.  ``v`` is ``-1`` for node events; ``factor`` is the
    serialization multiplier for ``link_degrade`` (ignored otherwise).
    """

    time: int
    kind: str
    u: int
    v: int = -1
    factor: float = 1.0

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; options: {EVENT_KINDS}")
        if self.time < 0:
            raise ValueError(f"fault event time must be >= 0, got {self.time}")
        if self.kind in _NODE_KINDS:
            if self.v != -1:
                raise ValueError(f"node event {self.kind!r} must leave v=-1")
        elif self.v < 0:
            raise ValueError(f"link event {self.kind!r} needs both endpoints")
        if self.kind == "link_degrade" and self.factor < 1.0:
            raise ValueError("link_degrade factor must be >= 1 (slowdown)")

    @property
    def is_node_event(self) -> bool:
        return self.kind in _NODE_KINDS

    def edge(self) -> tuple[int, int]:
        """Canonical ``(min, max)`` endpoint pair of a link event."""
        if self.is_node_event:
            raise ValueError(f"{self.kind!r} event has no edge")
        return (self.u, self.v) if self.u < self.v else (self.v, self.u)

    def to_jsonable(self) -> dict:
        """Wire/file form of this event (inverse of :meth:`from_jsonable`).

        Node events omit ``v``; ``factor`` appears only for
        ``link_degrade`` — so the JSON stays minimal and round-trips to an
        equal :class:`FaultEvent`.
        """
        out: dict = {"time": self.time, "kind": self.kind, "u": self.u}
        if not self.is_node_event:
            out["v"] = self.v
            if self.kind == "link_degrade":
                out["factor"] = self.factor
        return out

    @classmethod
    def from_jsonable(cls, obj: object) -> "FaultEvent":
        """Parse one event from its JSON object form.

        Raises :class:`ValueError` (never ``KeyError``/``TypeError``) on
        malformed input, so protocol handlers can map it to a 400.
        """
        if not isinstance(obj, dict):
            raise ValueError(
                f"fault event must be a JSON object, got {type(obj).__name__}"
            )
        unknown = set(obj) - {"time", "kind", "u", "v", "factor"}
        if unknown:
            raise ValueError(f"unknown fault event fields: {sorted(unknown)}")
        if "kind" not in obj or "u" not in obj:
            raise ValueError(f"fault event needs 'kind' and 'u': {obj!r}")
        try:
            return cls(
                time=int(obj.get("time", 0)),
                kind=str(obj["kind"]),
                u=int(obj["u"]),
                v=int(obj.get("v", -1)),
                factor=float(obj.get("factor", 1.0)),
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"bad fault event {obj!r}: {exc}") from exc


class FaultSchedule:
    """A validated, time-sorted sequence of :class:`FaultEvent`.

    Schedules are immutable values: concatenating two with ``+`` produces a
    new merged (re-sorted) schedule, so scenario generators compose —
    ``permanent_link_failures(...) + link_flaps(...)``.
    """

    def __init__(self, events: Iterable[FaultEvent] = (), graph: Graph | None = None):
        evs = sorted(events)
        if graph is not None:
            for ev in evs:
                hi = max(ev.u, ev.v)
                if ev.u < 0 or hi >= graph.n:
                    raise ValueError(
                        f"fault event {ev} references a vertex outside [0, {graph.n})"
                    )
                if not ev.is_node_event and not graph.has_edge(*ev.edge()):
                    raise ValueError(f"fault event {ev} names a non-existent link")
        self.events: tuple[FaultEvent, ...] = tuple(evs)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultSchedule) and self.events == other.events

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        return FaultSchedule(self.events + other.events)

    def __repr__(self) -> str:
        kinds = self.summary()["by_kind"]
        return f"FaultSchedule({len(self.events)} events, {kinds})"

    def to_jsonable(self) -> list[dict]:
        """Wire/file form: a JSON array of event objects, time-sorted."""
        return [ev.to_jsonable() for ev in self.events]

    @classmethod
    def from_jsonable(
        cls, objs: object, graph: Graph | None = None
    ) -> "FaultSchedule":
        """Parse a schedule from its JSON array form (optionally validated
        against *graph* like the regular constructor); raises
        :class:`ValueError` on malformed input."""
        if not isinstance(objs, (list, tuple)):
            raise ValueError(
                f"fault schedule must be a JSON array of events, "
                f"got {type(objs).__name__}"
            )
        return cls([FaultEvent.from_jsonable(o) for o in objs], graph=graph)

    def summary(self) -> dict:
        """JSON-safe digest stamped into run manifests."""
        by_kind: dict[str, int] = {}
        links: set[tuple[int, int]] = set()
        nodes: set[int] = set()
        for ev in self.events:
            by_kind[ev.kind] = by_kind.get(ev.kind, 0) + 1
            if ev.is_node_event:
                nodes.add(ev.u)
            else:
                links.add(ev.edge())
        return {
            "events": len(self.events),
            "by_kind": dict(sorted(by_kind.items())),
            "links_touched": len(links),
            "nodes_touched": len(nodes),
            "first_time": self.events[0].time if self.events else None,
            "last_time": self.events[-1].time if self.events else None,
        }


def _pick_edges(graph: Graph, count: int, rng: np.random.Generator) -> np.ndarray:
    if not 0 <= count <= graph.m:
        raise ValueError(f"cannot pick {count} links from a graph with {graph.m}")
    return rng.permutation(graph.m)[:count]


def permanent_link_failures(
    graph: Graph, fraction: float, seed: int = 0, time: int = 0
) -> FaultSchedule:
    """The paper's §11.2 model, injected live: a seeded random ``fraction``
    of links goes down permanently at ``time`` (no matching ``link_up``)."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"failure fraction must be in [0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    k = int(round(fraction * graph.m))
    edges = graph.edge_array
    events = [
        FaultEvent(time, "link_down", int(edges[i, 0]), int(edges[i, 1]))
        for i in _pick_edges(graph, k, rng)
    ]
    return FaultSchedule(events, graph=graph)


def node_failures(
    graph: Graph, count: int, seed: int = 0, time: int = 0
) -> FaultSchedule:
    """``count`` seeded random routers fail permanently at ``time`` (their
    incident links all become unusable; attached endpoints go dark)."""
    if not 0 <= count <= graph.n:
        raise ValueError(f"cannot fail {count} nodes of {graph.n}")
    rng = np.random.default_rng(seed)
    victims = rng.permutation(graph.n)[:count]
    return FaultSchedule(
        [FaultEvent(time, "node_down", int(v)) for v in victims], graph=graph
    )


def link_flaps(
    graph: Graph,
    num_links: int,
    horizon: int,
    down_time: int = 200,
    up_time: int = 800,
    seed: int = 0,
) -> FaultSchedule:
    """Transient faults: ``num_links`` seeded random links flap — down for
    ``down_time`` cycles, up for ``up_time`` — repeating until ``horizon``.
    Each link's phase is drawn from the same seeded stream, so flaps are
    staggered but reproducible."""
    if down_time <= 0 or up_time <= 0:
        raise ValueError("flap down_time and up_time must be positive")
    if horizon <= 0:
        raise ValueError("flap horizon must be positive")
    rng = np.random.default_rng(seed)
    period = down_time + up_time
    events: list[FaultEvent] = []
    edges = graph.edge_array
    for i in _pick_edges(graph, num_links, rng):
        u, v = int(edges[i, 0]), int(edges[i, 1])
        t = int(rng.integers(0, period))
        while t < horizon:
            events.append(FaultEvent(t, "link_down", u, v))
            if t + down_time >= horizon:
                break
            events.append(FaultEvent(t + down_time, "link_up", u, v))
            t += period
    return FaultSchedule(events, graph=graph)


def degraded_links(
    graph: Graph, fraction: float, factor: float = 2.0, seed: int = 0, time: int = 0
) -> FaultSchedule:
    """Gray failures: a seeded random ``fraction`` of links stays up but
    serializes packets ``factor`` x slower from ``time`` on."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"degraded fraction must be in [0, 1], got {fraction}")
    if factor < 1.0:
        raise ValueError("degrade factor must be >= 1")
    rng = np.random.default_rng(seed)
    k = int(round(fraction * graph.m))
    edges = graph.edge_array
    events = [
        FaultEvent(time, "link_degrade", int(edges[i, 0]), int(edges[i, 1]), factor=factor)
        for i in _pick_edges(graph, k, rng)
    ]
    return FaultSchedule(events, graph=graph)
