"""Client reliability kit: seeded backoff, circuit breaker, RetryingClient.

This module is the **sanctioned home for retry loops** — lint rule RL113
flags ad-hoc sleep-and-retry loops anywhere else in the library, for the
same reason RL105 bans unseeded RNGs in fault scenarios: an improvised
retry loop has unseeded jitter (unreproducible load patterns), no
deadline budget (unbounded hangs), no breaker (thundering herds against
a restarting server) and no accounting.  Here every piece is explicit:

* :class:`BackoffPolicy` — exponential backoff whose jitter is drawn from
  a seeded ``np.random.default_rng``, so two clients with the same seed
  produce byte-identical retry timelines;
* :class:`CircuitBreaker` — consecutive-failure breaker (closed →
  open → half-open) with an injectable clock, exported as the
  ``serve.breaker.state`` gauge;
* :class:`RetryingClient` — a :class:`~repro.serve.client.ServeClient`
  wrapper that rides out server restarts, drains (503), backpressure
  (429), engine failures (500) and deadline sheds (504).  Each *logical*
  request gets one idempotent id (``"<client_id>:<seq>"``) reused
  verbatim across resends and reconnects — the served ops are pure reads,
  so replaying an id is always safe — and one overall deadline budget.
  Retried attempts are counted in ``serve.retries{cause}`` and redials in
  ``serve.client.reconnects``.

Everything is synchronous (RL112: no event loop outside the server) and
deterministic under a seed, with ``sleep``/``clock`` injectable so tests
run on a fake clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.serve.client import ServeClient, ServeError, _pairs_payload

__all__ = [
    "RETRYABLE_CODES",
    "BackoffPolicy",
    "BreakerOpenError",
    "CircuitBreaker",
    "RetryingClient",
]

#: Server responses worth retrying: backpressure, engine failure, drain,
#: deadline shed.  400/404 are contract errors — resending cannot help.
RETRYABLE_CODES = frozenset({429, 500, 503, 504})

#: ``serve.breaker.state`` gauge encoding.
_BREAKER_GAUGE = {"closed": 0, "half_open": 1, "open": 2}


@dataclass(frozen=True)
class BackoffPolicy:
    """Seeded exponential backoff with multiplicative jitter.

    Retry attempt *k* (0-based) sleeps ``min(cap, base * multiplier**k)``
    scaled by ``1 - jitter * rng.random()`` — full delay down to
    ``1 - jitter`` of it, drawn from the caller's seeded generator.
    """

    base: float = 0.05
    cap: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base <= 0 or self.cap < self.base:
            raise ValueError(
                f"need 0 < base <= cap, got base={self.base} cap={self.cap}"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Sleep before retry *attempt* (0-based), jittered from *rng*."""
        raw = min(self.cap, self.base * self.multiplier ** attempt)
        return raw * (1.0 - self.jitter * float(rng.random()))


class BreakerOpenError(RuntimeError):
    """The circuit breaker is open and the caller chose not to wait."""

    def __init__(self, remaining: float) -> None:
        super().__init__(
            f"circuit breaker open for another {remaining:.3f}s"
        )
        self.remaining = remaining


class CircuitBreaker:
    """Consecutive-failure circuit breaker: closed → open → half-open.

    ``failure_threshold`` consecutive failures open the breaker; after
    ``reset_after`` seconds it half-opens and admits one probe — a success
    closes it, a failure re-opens it immediately.  State transitions drive
    the ``serve.breaker.state`` gauge (0 closed, 1 half-open, 2 open).
    The clock is injectable so tests advance time explicitly.
    """

    def __init__(
        self,
        failure_threshold: int = 8,
        reset_after: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after <= 0:
            raise ValueError(f"reset_after must be > 0, got {reset_after}")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        #: Times the breaker tripped open (reported by the chaos harness).
        self.opens = 0
        self._export()

    def _export(self) -> None:
        obs.get_registry().gauge(
            "serve.breaker.state",
            help="client circuit-breaker state (0 closed, 1 half-open, 2 open)",
        ).set(_BREAKER_GAUGE[self._state])

    @property
    def state(self) -> str:
        """Current state, promoting open → half-open once the reset lapses."""
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.reset_after
        ):
            self._state = "half_open"
            self._export()
        return self._state

    def remaining(self) -> float:
        """Seconds until an open breaker half-opens (0 when not open)."""
        if self.state != "open":
            return 0.0
        return max(0.0, self._opened_at + self.reset_after - self._clock())

    def allow(self) -> bool:
        """May a request attempt go out right now?"""
        return self.state != "open"

    def record_success(self) -> None:
        self._failures = 0
        if self._state != "closed":
            self._state = "closed"
            self._export()

    def record_failure(self) -> None:
        self._failures += 1
        state = self.state
        if state == "half_open" or self._failures >= self.failure_threshold:
            if state != "open":
                self.opens += 1
            self._state = "open"
            self._opened_at = self._clock()
            self._export()


class RetryingClient:
    """A route-query client that transparently rides out server trouble.

    Wraps a lazily-dialed :class:`ServeClient` connection.  Each call to
    :meth:`request` is one *logical* request: it gets a stable idempotent
    id, an overall deadline budget (``deadline_s``), and is retried —
    with seeded exponential backoff and breaker gating — across
    disconnects (server SIGKILLed mid-burst), connection refusals (server
    restarting), 503 drains, 429 backpressure, structured 500s and 504
    deadline sheds.  Non-retryable responses (400/404, including strict
    ``route_unavailable``) raise immediately.

    When the breaker is open the client sleeps out the cooldown and
    probes (``fail_fast=False``, the default) or raises
    :class:`BreakerOpenError` (``fail_fast=True``).  ``dial``, ``sleep``
    and ``clock`` are injectable for tests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        policy: BackoffPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        max_attempts: int = 12,
        deadline_s: float = 60.0,
        connect_timeout: float = 10.0,
        seed: int = 0,
        client_id: str | None = None,
        fail_fast: bool = False,
        dial: Callable[[], ServeClient] | None = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        self.host = host
        self.port = port
        self.policy = policy if policy is not None else BackoffPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            clock=clock
        )
        self.max_attempts = max_attempts
        self.deadline_s = deadline_s
        self.fail_fast = fail_fast
        self.client_id = client_id if client_id is not None else f"rc{seed}"
        self._rng = np.random.default_rng(seed)
        self._dial = dial if dial is not None else (
            lambda: ServeClient(host, port, timeout=connect_timeout)
        )
        self._sleep = sleep
        self._clock = clock
        self._conn: ServeClient | None = None
        self._ever_connected = False
        self._seq = 0
        #: Retried attempts by cause (mirrors the serve.retries counter).
        self.retries: dict[str, int] = {}
        #: Successful redials after a dropped connection.
        self.reconnects = 0

    # -- connection management --------------------------------------------

    def _connection(self) -> ServeClient:
        if self._conn is None:
            self._conn = self._dial()
            if self._ever_connected:
                self.reconnects += 1
                obs.get_registry().counter(
                    "serve.client.reconnects",
                    help="successful redials after a dropped connection",
                ).inc()
            self._ever_connected = True
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "RetryingClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- the retry loop -----------------------------------------------------

    def _note_retry(self, cause: str) -> None:
        self.retries[cause] = self.retries.get(cause, 0) + 1
        obs.get_registry().counter(
            "serve.retries",
            help="client request attempts that were retried",
            labels=("cause",),
        ).labels(cause=cause).inc()

    def request(self, req: dict) -> dict:
        """Send one logical request, retrying transient failures.

        The idempotent id is assigned here — once per logical request,
        **not** per attempt — so a resend after a reconnect presents the
        same id to the (read-only) server.  Raises the last transient
        error once ``max_attempts`` or the deadline budget is exhausted,
        :class:`BreakerOpenError` when the breaker blocks a fail-fast
        client, and non-retryable :class:`ServeError` immediately.
        """
        self._seq += 1
        req = dict(req, id=f"{self.client_id}:{self._seq}")
        deadline = self._clock() + self.deadline_s
        attempt = 0
        while True:
            if not self.breaker.allow():
                wait = self.breaker.remaining()
                if self.fail_fast or self._clock() + wait > deadline:
                    raise BreakerOpenError(wait)
                self._note_retry("breaker_open")
                self._sleep(wait)
                continue
            cause: str
            error: Exception
            try:
                resp = self._connection().request(req)
            except ServeError as exc:
                if exc.code not in RETRYABLE_CODES:
                    # The server answered; the contract error is the
                    # caller's problem, not the connection's.
                    self.breaker.record_success()
                    raise
                cause, error = f"code_{exc.code}", exc
                if exc.code == 503:
                    # Draining: this server instance is going away.
                    self._drop_connection()
            except (ConnectionError, OSError, EOFError, ValueError) as exc:
                # Socket died, dial refused, or a half-written response
                # line (SIGKILL mid-reply) failed to parse.
                cause, error = "disconnect", exc
                self._drop_connection()
            else:
                self.breaker.record_success()
                return resp
            self.breaker.record_failure()
            attempt += 1
            if attempt >= self.max_attempts:
                raise error
            delay = self.policy.delay(attempt - 1, self._rng)
            if self._clock() + delay > deadline:
                raise error
            self._note_retry(cause)
            self._sleep(delay)

    # -- queries ------------------------------------------------------------

    def ping(self) -> list[str]:
        """Liveness probe; returns the served topology names."""
        return list(self.request({"op": "ping"})["topologies"])

    def stats(self) -> dict:
        """Server-side counters and latency quantiles."""
        stats = self.request({"op": "stats"})["stats"]
        if not isinstance(stats, dict):
            raise ServeError(500, "malformed stats response")
        return stats

    def query(
        self,
        op: str,
        topology: str,
        pairs: object,
        *,
        deadline_ms: float | None = None,
        strict: bool = False,
    ) -> dict:
        """One distance/path request with retries, returning the full
        response object (``result`` plus the fault-epoch ``epoch`` label)."""
        req: dict = {
            "op": op, "topology": topology, "pairs": _pairs_payload(pairs)
        }
        if deadline_ms is not None:
            req["deadline_ms"] = deadline_ms
        if strict:
            req["strict"] = True
        return self.request(req)

    def distance(
        self,
        topology: str,
        pairs: object,
        *,
        deadline_ms: float | None = None,
        strict: bool = False,
    ) -> list[int]:
        """Batched distance lookup with retries (``-1`` = unreachable)."""
        resp = self.query(
            "distance", topology, pairs, deadline_ms=deadline_ms, strict=strict
        )
        return [int(v) for v in resp["result"]]

    def path(
        self,
        topology: str,
        pairs: object,
        *,
        deadline_ms: float | None = None,
        strict: bool = False,
    ) -> list[list[int] | None]:
        """Batched path lookup with retries (``None`` = unreachable)."""
        resp = self.query(
            "path", topology, pairs, deadline_ms=deadline_ms, strict=strict
        )
        return [None if p is None else [int(v) for v in p]
                for p in resp["result"]]
