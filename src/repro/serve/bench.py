"""Load generator and throughput benchmark for the serve subsystem.

Two measurement modes share one report schema (``repro.serve.bench/v1``):

* **engine** (default) — drive :class:`~repro.serve.engine.QueryEngine`
  in-process for each configured batch size, plus a deliberately scalar
  Python loop over single table lookups as the baseline.  The headline
  number — vectorized pairs/s over scalar pairs/s — is the speedup the
  batched service exists to deliver (the acceptance bar is 50x).
* **server** — the same batches sent over the NDJSON protocol to a live
  :class:`~repro.serve.server.ServeServer` by ``concurrency`` client
  threads, measuring end-to-end queries/s and client-observed latency.

``repro serve bench`` runs the engine mode always and adds the server
mode when ``--port`` is given; ``benchmarks/results/BENCH_serve.json`` is
a checked-in engine-mode report for the Table 3 PolarStar instance.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro import store
from repro.serve.client import ServeClient
from repro.serve.engine import QueryEngine, ShardRegistry

__all__ = ["BENCH_SCHEMA", "format_bench", "run_bench"]

BENCH_SCHEMA = "repro.serve.bench/v1"

#: Cap on the scalar-baseline loop: enough for a stable rate, cheap enough
#: to never dominate the bench run.
_SCALAR_CAP = 20000


def _random_pairs(n: int, count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, size=(count, 2), dtype=np.int64)


def _time_scalar(dist: np.ndarray, pairs: np.ndarray) -> dict:
    """Baseline: one Python-level table lookup per pair (no batching)."""
    sample = pairs[:_SCALAR_CAP]
    sink = 0
    t0 = time.perf_counter()
    for s, d in sample:
        sink += int(dist[s, d])
    dt = time.perf_counter() - t0
    return {
        "pairs": int(sample.shape[0]),
        "seconds": dt,
        "pairs_per_s": sample.shape[0] / dt if dt > 0 else float("inf"),
        "checksum": int(sink),
    }


def _time_engine(
    engine: QueryEngine, topology: str, pairs: np.ndarray, batch: int
) -> dict:
    """Vectorized engine mode: sequential batches of size *batch*."""
    total = int(pairs.shape[0])
    t0 = time.perf_counter()
    nbatches = 0
    for off in range(0, total, batch):
        engine.distances(topology, pairs[off : off + batch])
        nbatches += 1
    dt = time.perf_counter() - t0
    return {
        "mode": "engine",
        "batch": batch,
        "pairs": total,
        "batches": nbatches,
        "seconds": dt,
        "pairs_per_s": total / dt if dt > 0 else float("inf"),
        "qps": nbatches / dt if dt > 0 else float("inf"),
    }


def _time_server(
    host: str,
    port: int,
    topology: str,
    pairs: np.ndarray,
    batch: int,
    concurrency: int,
) -> dict:
    """Server mode: *concurrency* threads each stream their share of the
    batches over their own connection; latencies are client-observed."""
    chunks = [pairs[off : off + batch] for off in range(0, pairs.shape[0], batch)]
    shares: list[list[np.ndarray]] = [[] for _ in range(concurrency)]
    for i, chunk in enumerate(chunks):
        shares[i % concurrency].append(chunk)
    latencies: list[list[float]] = [[] for _ in range(concurrency)]
    errors: list[BaseException | None] = [None] * concurrency

    def worker(wid: int) -> None:
        try:
            with ServeClient(host, port) as client:
                for chunk in shares[wid]:
                    t0 = time.perf_counter()
                    client.distance(topology, chunk)
                    latencies[wid].append(time.perf_counter() - t0)
        except BaseException as exc:  # surfaced after join
            errors[wid] = exc

    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True)
        for w in range(concurrency)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    dt = time.perf_counter() - t0
    for exc in errors:
        if exc is not None:
            raise exc
    lat = np.sort(np.asarray([x for ws in latencies for x in ws]))
    total = int(pairs.shape[0])
    return {
        "mode": "server",
        "batch": batch,
        "pairs": total,
        "batches": len(chunks),
        "concurrency": concurrency,
        "seconds": dt,
        "pairs_per_s": total / dt if dt > 0 else float("inf"),
        "qps": len(chunks) / dt if dt > 0 else float("inf"),
        "latency_p50_s": float(lat[int(0.50 * (len(lat) - 1))]),
        "latency_p99_s": float(lat[int(0.99 * (len(lat) - 1))]),
    }


def run_bench(
    topology: str,
    scale: str = "full",
    pairs: int = 65536,
    batch_sizes: tuple[int, ...] = (1, 64, 4096),
    concurrency: int = 4,
    seed: int = 0,
    host: str | None = None,
    port: int | None = None,
) -> dict:
    """Run the bench; returns the ``repro.serve.bench/v1`` report dict."""
    registry = ShardRegistry()
    shard = registry.load(topology, scale=scale)
    engine = QueryEngine(registry)
    batch = _random_pairs(shard.n, pairs, seed)
    scalar = _time_scalar(shard.dist, batch)
    runs = [
        _time_engine(engine, topology, batch, b) for b in batch_sizes
    ]
    if port is not None:
        runs += [
            _time_server(
                host or "127.0.0.1", port, topology, batch, b, concurrency
            )
            for b in batch_sizes
        ]
    best = max(r["pairs_per_s"] for r in runs if r["mode"] == "engine")
    return {
        "schema": BENCH_SCHEMA,
        "topology": topology,
        "scale": scale,
        "n": shard.n,
        "table_bytes": shard.table_bytes,
        "pairs": int(batch.shape[0]),
        "seed": seed,
        "scalar": scalar,
        "runs": runs,
        "speedup_vs_scalar": best / scalar["pairs_per_s"],
    }


def format_bench(doc: dict) -> str:
    """Console rendering of a bench report."""
    lines = [
        f"serve bench — {doc['topology']} (scale={doc['scale']}, "
        f"n={doc['n']}, {doc['pairs']} pairs, seed={doc['seed']})",
        f"  scalar loop: {doc['scalar']['pairs_per_s']:,.0f} pairs/s "
        f"({doc['scalar']['pairs']} pairs)",
    ]
    for r in doc["runs"]:
        extra = ""
        if r["mode"] == "server":
            extra = (
                f"  conc={r['concurrency']}"
                f"  p99={r['latency_p99_s'] * 1e3:.2f}ms"
            )
        lines.append(
            f"  {r['mode']:>6} batch={r['batch']:<5d}"
            f" {r['pairs_per_s']:>14,.0f} pairs/s"
            f" {r['qps']:>12,.1f} qps{extra}"
        )
    lines.append(f"  vectorized speedup vs scalar: {doc['speedup_vs_scalar']:,.1f}x")
    return "\n".join(lines)
