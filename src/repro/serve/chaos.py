"""Chaos harness: query burst vs fault epochs and SIGKILL/restart cycles.

The capstone check for fault-epoch serving: drive a seeded burst of
distance queries through a :class:`~repro.serve.reliability.RetryingClient`
while the harness injects fault epochs (admin ``faults apply`` ops) and
SIGKILLs/restarts the serving process mid-burst, then assert

* **no wrong answer was ever delivered** — every response carries the
  epoch label it executed under, and every value is checked against an
  offline oracle (:class:`~repro.faults.health.LinkHealth` BFS on the
  same cumulative fault mask, the ``FaultAwareRouter`` ground truth);
* **the client completed the full burst** — restarts and epoch swaps cost
  retries, never failures;
* **the availability gap is accounted** — ``serve.epoch.swaps`` on the
  server, retry causes / reconnects / breaker opens on the client.

Everything is deterministic under ``ChaosConfig.seed``: the query pool,
the per-epoch fault events, the retry jitter.  Wall-clock interleaving
(which batch lands in which epoch) varies run to run — that is the point
— but correctness never depends on it, because answers are attributed by
epoch label, not by time.

Process control lives in :class:`repro.runtime.ManagedProcess` (RL108);
this module only decides *when* to kill.  The retry loops live in
:mod:`repro.serve.reliability` (RL113); this module only counts them.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro import store
from repro.faults import node_failures, permanent_link_failures
from repro.faults.health import UNREACHABLE, LinkHealth
from repro.faults.model import FaultEvent
from repro.runtime import ManagedProcess
from repro.serve.client import ServeError, wait_until_ready
from repro.serve.reliability import (
    BackoffPolicy,
    BreakerOpenError,
    CircuitBreaker,
    RetryingClient,
)

__all__ = ["ChaosConfig", "format_chaos", "run_chaos"]

#: Distinct destinations in the query pool — bounds offline-oracle cost to
#: one BFS per (epoch, destination).
_MAX_DESTS = 32


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for one chaos run (all defaults CI-sized for ``reduced``)."""

    topology: str = "PS-IQ"
    scale: str = "full"
    batches: int = 40
    batch_size: int = 64
    pool_size: int = 512
    epochs: int = 2
    kills: int = 1
    fail_fraction: float = 0.02
    fail_nodes: int = 1
    seed: int = 0
    deadline_ms: float = 5000.0
    request_deadline_s: float = 120.0
    startup_timeout: float = 180.0

    def __post_init__(self) -> None:
        if self.batches < self.epochs + self.kills + 1:
            raise ValueError(
                f"need batches > epochs + kills to interleave actions, got "
                f"batches={self.batches} epochs={self.epochs} kills={self.kills}"
            )
        if self.batch_size < 1 or self.pool_size < 1:
            raise ValueError("batch_size and pool_size must be >= 1")
        if self.epochs < 0 or self.kills < 0:
            raise ValueError("epochs and kills must be >= 0")


def _epoch_events(graph, config: ChaosConfig) -> dict[int, list[FaultEvent]]:
    """Cumulative fault events per epoch label (label -> events since t=0).

    Each epoch adds a seeded batch of permanent link failures (epoch 1
    also downs ``fail_nodes`` routers).  Cumulative lists make restart
    recovery trivial: re-applying ``events[label]`` to a pristine server
    reproduces epoch *label* exactly (down events are idempotent).
    """
    cumulative: dict[int, list[FaultEvent]] = {0: []}
    for label in range(1, config.epochs + 1):
        fresh = list(
            permanent_link_failures(
                graph, config.fail_fraction, seed=config.seed + label
            )
        )
        if label == 1 and config.fail_nodes:
            fresh += list(
                node_failures(graph, config.fail_nodes, seed=config.seed + label)
            )
        cumulative[label] = cumulative[label - 1] + fresh
    return cumulative


def _oracles(
    graph, events: dict[int, list[FaultEvent]], dests: np.ndarray
) -> dict[int, dict[int, np.ndarray]]:
    """Offline ground truth: ``oracle[label][dest][src]`` distances.

    Built with :meth:`LinkHealth.bfs_from` on the cumulative mask — the
    exact arrays :class:`~repro.faults.router.FaultAwareRouter` routes on,
    so a served answer that matches here matches offline fault-aware
    routing by construction.
    """
    out: dict[int, dict[int, np.ndarray]] = {}
    health = LinkHealth(graph)
    applied = 0
    for label in sorted(events):
        for ev in events[label][applied:]:
            health.apply(ev)
        applied = len(events[label])
        out[label] = {int(d): health.bfs_from(int(d)) for d in dests}
    return out


def _oracle_distance(table: np.ndarray, src: int) -> int:
    v = int(table[src])
    return -1 if v >= UNREACHABLE else v


def _server_argv(config: ChaosConfig, port: int) -> list[str]:
    return [
        sys.executable, "-m", "repro", "serve", "start",
        "--topology", config.topology,
        "--scale", config.scale,
        "--port", str(port),
    ]


def _make_client(
    host: str, port: int, config: ChaosConfig, *, seed_offset: int = 0
) -> RetryingClient:
    """A retrying client tuned to ride out a full kill/restart outage."""
    return RetryingClient(
        host,
        port,
        policy=BackoffPolicy(base=0.05, cap=1.0, multiplier=2.0, jitter=0.5),
        breaker=CircuitBreaker(failure_threshold=6, reset_after=0.25),
        max_attempts=40,
        deadline_s=config.request_deadline_s,
        seed=config.seed + seed_offset,
        client_id=f"chaos{seed_offset}",
    )


def _drive(
    client: RetryingClient,
    config: ChaosConfig,
    batches: list[list[list[int]]],
    oracles: dict[int, dict[int, np.ndarray]],
    progress: dict,
    lock: threading.Lock,
) -> None:
    """Issue every batch, verifying each answer against its epoch's oracle."""
    for batch in batches:
        try:
            resp = client.query(
                "distance", config.topology, batch,
                deadline_ms=config.deadline_ms,
            )
        except (ServeError, BreakerOpenError, ConnectionError, OSError) as exc:
            with lock:
                progress["driver_error"] = f"{type(exc).__name__}: {exc}"
            return
        label = int(resp.get("epoch", -1))
        result = resp["result"]
        with lock:
            progress["answers_by_epoch"][label] = (
                progress["answers_by_epoch"].get(label, 0) + len(result)
            )
            progress["answers"] += len(result)
            tables = oracles.get(label)
            for (s, d), got in zip(batch, result):
                want = (
                    _oracle_distance(tables[d], s) if tables is not None
                    else None
                )
                if want is None or int(got) != want:
                    progress["wrong"] += 1
                    if len(progress["mismatches"]) < 10:
                        progress["mismatches"].append({
                            "epoch": label, "src": s, "dst": d,
                            "got": int(got), "want": want,
                        })
            progress["batches_completed"] += 1


def _wait_for_batches(
    progress: dict, lock: threading.Lock, target: int, timeout: float
) -> bool:
    """Poll until the driver has completed *target* batches (or errored)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with lock:
            if progress["driver_error"] is not None:
                return False
            if progress["batches_completed"] >= target:
                return True
        time.sleep(0.01)
    return False


def run_chaos(config: ChaosConfig) -> dict:
    """Run the chaos scenario; returns a ``repro.serve.chaos/v1`` report.

    The report's ``ok`` field is the gate: every delivered answer matched
    the offline fault-aware oracle for the epoch it was served under, the
    full burst completed, and the configured epoch swaps and kill/restart
    cycles all happened mid-burst.
    """
    t_start = time.monotonic()
    topo = store.resolve_topology(config.topology, scale=config.scale)
    graph = topo.graph
    rng = np.random.default_rng(config.seed)

    # Seeded query plan: a bounded destination set keeps the offline
    # oracle at one BFS per (epoch, destination).
    dests = rng.choice(graph.n, size=min(_MAX_DESTS, graph.n), replace=False)
    pool_src = rng.integers(0, graph.n, size=config.pool_size)
    pool_dst = rng.choice(dests, size=config.pool_size)
    batches = []
    for _ in range(config.batches):
        idx = rng.integers(0, config.pool_size, size=config.batch_size)
        batches.append(
            [[int(pool_src[i]), int(pool_dst[i])] for i in idx]
        )

    events = _epoch_events(graph, config)
    oracles = _oracles(graph, events, dests)

    # Interleave the fault timeline with the kills: epoch 1, kill 1,
    # epoch 2, kill 2, ... at evenly spaced batch-count thresholds.
    actions: list[tuple[str, int]] = [
        ("epoch", label) for label in range(1, config.epochs + 1)
    ]
    for i in range(config.kills):
        actions.insert(min(1 + 2 * i, len(actions)), ("kill", i + 1))
    step = max(1, config.batches // (len(actions) + 1))

    progress: dict = {
        "batches_completed": 0,
        "answers": 0,
        "answers_by_epoch": {},
        "wrong": 0,
        "mismatches": [],
        "driver_error": None,
    }
    lock = threading.Lock()
    kills_done = 0
    applies_done = 0
    current_label = 0
    server_stats: dict = {}
    server_exit_code: int | None = None

    proc = ManagedProcess(_server_argv(config, 0))
    try:
        banner = wait_until_ready(proc.stdout, timeout=config.startup_timeout)
        host, port = str(banner["host"]), int(banner["port"])

        driver = _make_client(host, port, config, seed_offset=1)
        admin = _make_client(host, port, config, seed_offset=2)
        thread = threading.Thread(
            target=_drive,
            args=(driver, config, batches, oracles, progress, lock),
            name="chaos-driver",
            daemon=True,
        )
        thread.start()

        for i, (kind, arg) in enumerate(actions):
            _wait_for_batches(
                progress, lock, step * (i + 1), config.request_deadline_s
            )
            with lock:
                if progress["driver_error"] is not None:
                    break
            if kind == "epoch":
                # Fresh events only — the server's health mask is
                # cumulative across applies on the same process.
                fresh = events[arg][len(events[arg - 1]):]
                admin.request({
                    "op": "faults", "action": "apply",
                    "topology": config.topology,
                    "events": [ev.to_jsonable() for ev in fresh],
                    "label": arg,
                })
                current_label = arg
                applies_done += 1
            else:
                proc.close()
                kills_done += 1
                proc = ManagedProcess(_server_argv(config, port))
                wait_until_ready(proc.stdout, timeout=config.startup_timeout)
                if current_label:
                    # The restarted server is pristine (epoch 0, also a
                    # valid oracle state) until the cumulative fault mask
                    # is re-applied under the same label.
                    admin.request({
                        "op": "faults", "action": "apply",
                        "topology": config.topology,
                        "events": [
                            ev.to_jsonable() for ev in events[current_label]
                        ],
                        "label": current_label,
                    })

        thread.join(timeout=config.request_deadline_s)
        driver_alive = thread.is_alive()
        try:
            server_stats = admin.stats()
        except (ServeError, BreakerOpenError, ConnectionError, OSError):
            server_stats = {}
        driver.close()
        admin.close()

        proc.terminate()
        drain_deadline = time.monotonic() + 60.0
        while proc.running() and time.monotonic() < drain_deadline:
            time.sleep(0.05)
        server_exit_code = proc.poll()
    finally:
        proc.close()

    breaker_opens = driver.breaker.opens + admin.breaker.opens
    ok = (
        progress["driver_error"] is None
        and not driver_alive
        and progress["wrong"] == 0
        and progress["batches_completed"] == config.batches
        and kills_done == config.kills
        and applies_done == config.epochs
    )
    return {
        "schema": "repro.serve.chaos/v1",
        "ok": bool(ok),
        "config": asdict(config),
        "batches_completed": progress["batches_completed"],
        "answers": progress["answers"],
        "answers_by_epoch": {
            str(k): v for k, v in sorted(progress["answers_by_epoch"].items())
        },
        "wrong_answers": progress["wrong"],
        "mismatches": progress["mismatches"],
        "driver_error": progress["driver_error"],
        "kills": kills_done,
        "epoch_applies": applies_done,
        "server_faults": server_stats.get("faults", {}),
        "client": {
            "retries": {
                k: driver.retries.get(k, 0) + admin.retries.get(k, 0)
                for k in sorted({*driver.retries, *admin.retries})
            },
            "reconnects": driver.reconnects + admin.reconnects,
            "breaker_opens": breaker_opens,
            "breaker_state": driver.breaker.state,
        },
        "server_exit_code": server_exit_code,
        "elapsed_s": round(time.monotonic() - t_start, 3),
    }


def format_chaos(doc: dict) -> str:
    """Human-readable chaos report summary."""
    lines = [
        f"chaos {'PASS' if doc['ok'] else 'FAIL'}: "
        f"{doc['config']['topology']} ({doc['config']['scale']})",
        f"  burst: {doc['batches_completed']}/{doc['config']['batches']} "
        f"batches, {doc['answers']} answers, "
        f"{doc['wrong_answers']} wrong",
        "  answers by epoch: " + ", ".join(
            f"{k}:{v}" for k, v in doc["answers_by_epoch"].items()
        ),
        f"  injected: {doc['epoch_applies']} epoch applies, "
        f"{doc['kills']} SIGKILL/restart cycles",
        f"  client: retries={doc['client']['retries']}, "
        f"reconnects={doc['client']['reconnects']}, "
        f"breaker_opens={doc['client']['breaker_opens']} "
        f"(now {doc['client']['breaker_state']})",
        f"  elapsed: {doc['elapsed_s']}s "
        f"(server exit {doc['server_exit_code']})",
    ]
    if doc["driver_error"]:
        lines.append(f"  driver error: {doc['driver_error']}")
    for m in doc["mismatches"]:
        lines.append(
            f"  MISMATCH epoch {m['epoch']}: {m['src']}->{m['dst']} "
            f"got {m['got']} want {m['want']}"
        )
    return "\n".join(lines)
