"""Fault-epoch table overlays: keep serving while the network degrades.

The serving layer answers from read-only distance tables; ``repro.faults``
models a network whose links and nodes go down underneath those tables.
This module joins the two: a :class:`FaultEpochManager` holds one
:class:`~repro.faults.health.LinkHealth` mask per served topology, applies
fault events to it, and materializes an :class:`EpochShard` — a complete
replacement distance table built on the *healthy subgraph* — that the
registry swaps in atomically (``ShardRegistry.set_overlay`` is one dict
assignment).

**Epoch lifecycle.**  Every install carries a monotone integer *label*
(the pristine base table is label 0).  The server stamps the label of the
shard a batch executed against into each response, so clients — and the
chaos harness's offline oracle — can attribute every answer to exactly
one network state.  Because batch flushing is synchronous in the event
loop and the swap is a single assignment, an in-flight coalesced batch
never straddles two epochs.

**Parity contract.**  An overlay is built by
``build_distance_table(health.healthy_graph())`` — the same BFS builder
the store uses for pristine tables, on the same healthy subgraph
``FaultAwareRouter``/``LinkHealth.bfs_from`` route on.  Served distances
under an epoch are therefore byte-equal to offline fault-aware routing on
the same mask (``tests/test_serve_faults.py`` asserts this), with the
int16 sentinel mapped to ``-1``/``None`` on the wire exactly like
:data:`~repro.faults.health.UNREACHABLE` marks cut-off vertices offline.

**Store bypass.**  Epoch tables are deliberately *not* store artifacts:
the content-addressed cache holds durable, pristine state only
(``docs/ARCHITECTURE.md``, fault-epoch invalidation contract).  An
overlay is ephemeral — it dies with the fault state that produced it.

Everything here is synchronous.  The server runs :meth:`stage` (the
expensive build) in an executor thread and :meth:`install` on the event
loop; staging touches only the manager's own health state, so queries
keep flowing against the old epoch while the new table builds.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro import obs
from repro.faults.health import LinkHealth
from repro.faults.model import FaultEvent, FaultSchedule
from repro.routing.table import build_distance_table
from repro.serve.engine import ShardRegistry, TableShard

__all__ = ["EpochShard", "FaultEpochManager"]

#: Epoch-table build-time histogram buckets (seconds): 1ms .. ~16s.
_BUILD_BOUNDS = obs.exponential_buckets(1e-3, 2.0, 15)


class EpochShard(TableShard):
    """One fault epoch of a base shard: healthy subgraph + rebuilt table.

    Answers exactly like a :class:`TableShard` (same vectorized kernels),
    but for the degraded network: pairs cut apart by the fault mask come
    back ``-1``/``None``, and reconstructed paths only traverse healthy
    links.  ``epoch`` is the install label stamped into responses.
    """

    # No __slots__: instances carry overlay metadata in a regular __dict__.

    def __init__(
        self,
        base: TableShard,
        epoch_graph,
        dist,
        label: int,
        links_down: int,
        nodes_down: int,
        events_applied: int,
    ) -> None:
        super().__init__(base.name, epoch_graph, dist, topology=base.topology)
        if label < 1:
            raise ValueError(f"epoch label must be >= 1, got {label}")
        self.base = base
        self.epoch = int(label)
        self.links_down = int(links_down)
        self.nodes_down = int(nodes_down)
        self.events_applied = int(events_applied)


class _TopologyFaults:
    """Per-topology fault state: the live mask plus install bookkeeping."""

    __slots__ = ("health", "label", "swaps", "events_applied")

    def __init__(self, health: LinkHealth) -> None:
        self.health = health
        self.label = 0
        self.swaps = 0
        self.events_applied = 0


class FaultEpochManager:
    """Applies fault events to served topologies as atomic table overlays.

    The manager is the *sync* side of fault-aware serving: ``stage`` is
    expensive (a BFS table build) and safe to run off the event loop;
    ``install``/``clear`` are cheap swaps the server performs on the loop
    after flushing pending batches, so every admitted pair answers against
    exactly one epoch.  The server serializes stage/install per topology;
    the manager itself holds no locks.
    """

    def __init__(self, registry: ShardRegistry) -> None:
        self.registry = registry
        self._states: dict[str, _TopologyFaults] = {}

    def _state(self, name: str) -> _TopologyFaults:
        state = self._states.get(name)
        if state is None:
            base = self.registry.base(name)
            state = self._states[name] = _TopologyFaults(LinkHealth(base.graph))
        return state

    def stage(
        self,
        name: str,
        events: Sequence[FaultEvent],
        label: int | None = None,
    ) -> EpochShard:
        """Apply *events* to the topology's health mask and build the next
        epoch's overlay shard.

        Validates the whole event batch against the base graph *before*
        mutating anything (a bad event cannot leave the mask half-applied),
        then rebuilds the distance table on the healthy subgraph.  Does
        **not** swap — pass the returned shard to :meth:`install` (the
        server does so after flushing in-flight batches).  Raises
        :class:`ValueError` on unknown links/vertices or a non-increasing
        label.
        """
        state = self._state(name)
        base = self.registry.base(name)
        events = list(events)
        FaultSchedule(events, graph=base.graph)  # batch validation only
        if label is None:
            label = state.label + 1
        elif label < 1:
            raise ValueError(f"epoch label must be >= 1, got {label}")
        for ev in events:
            state.health.apply(ev)
        t0 = time.perf_counter()
        epoch_graph = state.health.healthy_graph()
        # Deliberate store bypass: epoch tables are ephemeral fault state,
        # and the artifact store only holds durable pristine artifacts
        # (docs/ARCHITECTURE.md fault-epoch contract).
        dist = build_distance_table(epoch_graph)  # repro-lint: disable=RL107
        dt = time.perf_counter() - t0
        obs.get_registry().histogram(
            "serve.epoch.build.seconds",
            help="fault-epoch overlay table build time",
            bounds=_BUILD_BOUNDS,
        ).observe(dt)
        state.events_applied += len(events)
        return EpochShard(
            base,
            epoch_graph,
            dist,
            label=label,
            links_down=state.health.links_down_count(),
            nodes_down=state.health.nodes_down_count(),
            events_applied=state.events_applied,
        )

    def install(self, name: str, shard: EpochShard) -> None:
        """Swap *shard* in as the serving overlay for *name* (atomic)."""
        state = self._state(name)
        self.registry.set_overlay(name, shard)
        state.label = shard.epoch
        state.swaps += 1
        obs.get_registry().counter(
            "serve.epoch.swaps",
            help="fault-epoch overlay installs (clears included)",
        ).inc()

    def clear(self, name: str) -> None:
        """Reset *name* to the pristine epoch-0 table (counts as a swap)."""
        state = self._state(name)
        state.health.reset()
        state.label = 0
        state.events_applied = 0
        state.swaps += 1
        self.registry.clear_overlay(name)
        obs.get_registry().counter(
            "serve.epoch.swaps",
            help="fault-epoch overlay installs (clears included)",
        ).inc()

    def status(self) -> dict:
        """Per-topology fault-epoch status for ``stats`` / admin responses."""
        out: dict = {}
        for name in self.registry.names():
            state = self._states.get(name)
            if state is None:
                out[name] = {
                    "epoch": 0,
                    "links_down": 0,
                    "nodes_down": 0,
                    "swaps": 0,
                    "events_applied": 0,
                }
            else:
                out[name] = {
                    "epoch": state.label,
                    "links_down": state.health.links_down_count(),
                    "nodes_down": state.health.nodes_down_count(),
                    "swaps": state.swaps,
                    "events_applied": state.events_applied,
                }
        return out
