"""Synchronous batch client for the NDJSON route-query protocol.

The client is deliberately plain-socket (no event loop — RL112 keeps
loop creation inside :mod:`repro.serve.server`): tests, the CLI and the
load generator all speak through :class:`ServeClient`, one JSON line per
request, blocking for the matching response line.

:func:`wait_until_ready` pairs with the server's ready banner — start the
server as a subprocess, hand its stdout here, get the bound port back.
"""

from __future__ import annotations

import json
import socket
from typing import IO

__all__ = ["ServeClient", "ServeError", "wait_until_ready"]

from repro.serve.server import READY_PREFIX


class ServeError(RuntimeError):
    """A protocol-level error response (carries the HTTP-flavored code)."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


def wait_until_ready(stdout: IO[str], timeout: float = 60.0) -> dict:
    """Read a server subprocess's stdout until the ready banner appears.

    Returns the banner payload (``{"port": ..., "host": ...,
    "topologies": [...]}``).  ``timeout`` bounds the wait via the stream's
    underlying socket/pipe semantics — we simply stop at EOF, so pass the
    stdout of a process you know is starting.
    """
    del timeout  # line-buffered pipe reads block until the process writes
    for line in stdout:
        if line.startswith(READY_PREFIX):
            payload = json.loads(line[len(READY_PREFIX):])
            if not isinstance(payload, dict):
                raise ServeError(500, "malformed ready banner")
            return payload
    raise ServeError(500, "server exited before becoming ready")


class ServeClient:
    """One blocking NDJSON connection to a :class:`~repro.serve.server.ServeServer`.

    Usable as a context manager; every query method raises
    :class:`ServeError` on an ``ok: false`` response (``exc.code`` holds
    400/404/429/503) so callers can branch on backpressure explicitly.
    """

    def __init__(
        self, host: str, port: int, timeout: float | None = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("r", encoding="utf-8", newline="\n")
        self._next_id = 0

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- protocol ----------------------------------------------------------

    def request(self, req: dict) -> dict:
        """Send one request object, block for its response object."""
        self._next_id += 1
        req = dict(req, id=self._next_id)
        self._sock.sendall(json.dumps(req).encode() + b"\n")
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        resp = json.loads(line)
        if not isinstance(resp, dict):
            raise ServeError(500, "malformed response line")
        if not resp.get("ok", False):
            raise ServeError(
                int(resp.get("code", 500)), str(resp.get("error", "unknown"))
            )
        return resp

    # -- queries -----------------------------------------------------------

    def ping(self) -> list[str]:
        """Liveness probe; returns the served topology names."""
        return list(self.request({"op": "ping"})["topologies"])

    def stats(self) -> dict:
        """Server-side counters and latency quantiles."""
        stats = self.request({"op": "stats"})["stats"]
        if not isinstance(stats, dict):
            raise ServeError(500, "malformed stats response")
        return stats

    def distance(self, topology: str, pairs: object) -> list[int]:
        """Batched distance lookup; ``-1`` marks unreachable pairs."""
        resp = self.request(
            {"op": "distance", "topology": topology,
             "pairs": _pairs_payload(pairs)}
        )
        return [int(v) for v in resp["result"]]

    def path(self, topology: str, pairs: object) -> list[list[int] | None]:
        """Batched minimal-path lookup; ``None`` marks unreachable pairs."""
        resp = self.request(
            {"op": "path", "topology": topology, "pairs": _pairs_payload(pairs)}
        )
        return [None if p is None else [int(v) for v in p]
                for p in resp["result"]]


def _pairs_payload(pairs: object) -> list[list[int]]:
    """Normalize array-likes (lists, ndarrays) to the JSON wire shape."""
    return [[int(s), int(d)] for s, d in pairs]  # type: ignore[union-attr]
