"""Synchronous batch client for the NDJSON route-query protocol.

The client is deliberately plain-socket (no event loop — RL112 keeps
loop creation inside :mod:`repro.serve.server`): tests, the CLI and the
load generator all speak through :class:`ServeClient`, one JSON line per
request, blocking for the matching response line.

:func:`wait_until_ready` pairs with the server's ready banner — start the
server as a subprocess, hand its stdout here, get the bound port back.

For a client that survives restarts, drains and backpressure, wrap the
connection details in :class:`repro.serve.reliability.RetryingClient`.
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import time
from typing import IO

__all__ = ["ServeClient", "ServeError", "wait_until_ready"]

from repro.serve.server import READY_PREFIX


class ServeError(RuntimeError):
    """A protocol-level error response (carries the HTTP-flavored code).

    ``kind`` refines the code when the server sent one: ``"engine"``
    (500), ``"deadline"`` (504), ``"route_unavailable"`` (the 404 variant
    for strict queries cut apart by a fault epoch).
    """

    def __init__(self, code: int, message: str, kind: str | None = None) -> None:
        label = f"[{code}]" if kind is None else f"[{code}/{kind}]"
        super().__init__(f"{label} {message}")
        self.code = code
        self.kind = kind


def _banner_payload(line: str) -> dict:
    payload = json.loads(line[len(READY_PREFIX):])
    if not isinstance(payload, dict):
        raise ServeError(500, "malformed ready banner")
    return payload


def wait_until_ready(stdout: IO[str], timeout: float = 60.0) -> dict:
    """Read a server subprocess's stdout until the ready banner appears.

    Returns the banner payload (``{"port": ..., "host": ...,
    "topologies": [...]}``).  The deadline is real: the pipe is polled
    with :mod:`selectors` and drained with non-blocking ``os.read``, so a
    wedged server raises :class:`TimeoutError` carrying whatever partial
    output was seen instead of blocking forever.  Pass the stdout of a
    freshly-spawned process nothing else has read (the poll loop bypasses
    the text wrapper's buffer); objects without a real file descriptor
    (e.g. ``io.StringIO``) fall back to plain line iteration, where only
    EOF ends the wait.
    """
    deadline = time.monotonic() + timeout
    try:
        fd: int | None = stdout.fileno()
    except (OSError, ValueError, AttributeError):
        fd = None
    if fd is None:
        for line in stdout:
            if line.startswith(READY_PREFIX):
                return _banner_payload(line)
        raise ServeError(500, "server exited before becoming ready")
    buf = ""
    sel = selectors.DefaultSelector()
    sel.register(fd, selectors.EVENT_READ)
    try:
        while True:
            while "\n" in buf:
                line, buf = buf.split("\n", 1)
                if line.startswith(READY_PREFIX):
                    return _banner_payload(line)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"server not ready within {timeout:.1f}s; partial "
                    f"output: {buf[-500:]!r}"
                )
            if not sel.select(min(remaining, 0.25)):
                continue
            chunk = os.read(fd, 65536)
            if not chunk:
                raise ServeError(500, "server exited before becoming ready")
            buf += chunk.decode("utf-8", errors="replace")
    finally:
        sel.close()


class ServeClient:
    """One blocking NDJSON connection to a :class:`~repro.serve.server.ServeServer`.

    Usable as a context manager; every query method raises
    :class:`ServeError` on an ``ok: false`` response (``exc.code`` holds
    400/404/429/500/503/504, ``exc.kind`` the refinement when sent) so
    callers can branch on backpressure explicitly.
    """

    def __init__(
        self, host: str, port: int, timeout: float | None = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("r", encoding="utf-8", newline="\n")
        self._next_id = 0

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- protocol ----------------------------------------------------------

    def request(self, req: dict) -> dict:
        """Send one request object, block for its response object.

        A caller-supplied ``id`` is preserved verbatim (the idempotent
        resend contract :class:`~repro.serve.reliability.RetryingClient`
        relies on); otherwise a connection-local counter is stamped in.
        """
        if "id" not in req:
            self._next_id += 1
            req = dict(req, id=self._next_id)
        self._sock.sendall(json.dumps(req).encode() + b"\n")
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        resp = json.loads(line)
        if not isinstance(resp, dict):
            raise ServeError(500, "malformed response line")
        if not resp.get("ok", False):
            raise ServeError(
                int(resp.get("code", 500)),
                str(resp.get("error", "unknown")),
                kind=resp.get("kind"),
            )
        return resp

    # -- queries -----------------------------------------------------------

    def ping(self) -> list[str]:
        """Liveness probe; returns the served topology names."""
        return list(self.request({"op": "ping"})["topologies"])

    def stats(self) -> dict:
        """Server-side counters and latency quantiles."""
        stats = self.request({"op": "stats"})["stats"]
        if not isinstance(stats, dict):
            raise ServeError(500, "malformed stats response")
        return stats

    def query(
        self,
        op: str,
        topology: str,
        pairs: object,
        *,
        deadline_ms: float | None = None,
        strict: bool = False,
    ) -> dict:
        """One distance/path request, returning the full response object
        (``result`` plus the fault-epoch label the batch answered under)."""
        req: dict = {
            "op": op, "topology": topology, "pairs": _pairs_payload(pairs)
        }
        if deadline_ms is not None:
            req["deadline_ms"] = deadline_ms
        if strict:
            req["strict"] = True
        return self.request(req)

    def distance(
        self,
        topology: str,
        pairs: object,
        *,
        deadline_ms: float | None = None,
        strict: bool = False,
    ) -> list[int]:
        """Batched distance lookup; ``-1`` marks unreachable pairs."""
        resp = self.query(
            "distance", topology, pairs, deadline_ms=deadline_ms, strict=strict
        )
        return [int(v) for v in resp["result"]]

    def path(
        self,
        topology: str,
        pairs: object,
        *,
        deadline_ms: float | None = None,
        strict: bool = False,
    ) -> list[list[int] | None]:
        """Batched minimal-path lookup; ``None`` marks unreachable pairs."""
        resp = self.query(
            "path", topology, pairs, deadline_ms=deadline_ms, strict=strict
        )
        return [None if p is None else [int(v) for v in p]
                for p in resp["result"]]

    # -- fault-epoch administration ----------------------------------------

    def apply_faults(
        self, topology: str, events: object, label: int | None = None
    ) -> dict:
        """Admin op: apply fault events as a new epoch overlay.

        ``events`` is a sequence of :class:`~repro.faults.model.FaultEvent`
        (or their ``to_jsonable`` dict form); the response reports the
        installed epoch label and the degraded-link/node counts.
        """
        payload = [
            e.to_jsonable() if hasattr(e, "to_jsonable") else e
            for e in events  # type: ignore[attr-defined,union-attr]
        ]
        req: dict = {
            "op": "faults", "action": "apply",
            "topology": topology, "events": payload,
        }
        if label is not None:
            req["label"] = label
        return self.request(req)

    def clear_faults(self, topology: str) -> dict:
        """Admin op: drop the fault overlay, back to the pristine table."""
        return self.request(
            {"op": "faults", "action": "clear", "topology": topology}
        )

    def fault_status(self) -> dict:
        """Admin op: per-topology fault-epoch status."""
        status = self.request({"op": "faults", "action": "status"})["status"]
        if not isinstance(status, dict):
            raise ServeError(500, "malformed faults status response")
        return status


def _pairs_payload(pairs: object) -> list[list[int]]:
    """Normalize array-likes (lists, ndarrays) to the JSON wire shape."""
    return [[int(s), int(d)] for s, d in pairs]  # type: ignore[union-attr]
