"""``repro.serve`` — batched route-query service over shared distance tables.

The serving layer turns the store's cached int16 distance tables (the
``TableRouter(dist=)`` sharing contract) into an online query surface:

* :mod:`repro.serve.engine` — pure-sync core: batch planning, vectorized
  distance lookup, path reconstruction by next-hop walking, and the
  per-topology :class:`ShardRegistry` (with atomic fault-epoch overlays);
* :mod:`repro.serve.epochs` — fault-epoch tables: apply a fault mask,
  rebuild the distance table on the healthy subgraph, swap atomically;
* :mod:`repro.serve.server` — asyncio NDJSON TCP front end with request
  coalescing, bounded in-flight backpressure, deadline-aware admission,
  live ``faults`` admin ops and graceful drain;
* :mod:`repro.serve.client` — blocking batch client (tests, CLI, bench);
* :mod:`repro.serve.reliability` — client reliability kit: seeded backoff,
  circuit breaker, idempotent retrying client;
* :mod:`repro.serve.chaos` — chaos harness: query burst vs fault epochs
  and SIGKILL/restart cycles, checked against the offline oracle;
* :mod:`repro.serve.bench` — load generator emitting ``BENCH_serve.json``.

See ``docs/SERVING.md`` for the protocol, operational semantics, the
resilience model and the RL112/RL113 serve-discipline rules this package
is written under.
"""

from repro.serve.bench import format_bench, run_bench
from repro.serve.chaos import ChaosConfig, format_chaos, run_chaos
from repro.serve.client import ServeClient, ServeError, wait_until_ready
from repro.serve.engine import (
    BadBatchError,
    QueryEngine,
    ShardRegistry,
    TableShard,
    UnknownTopologyError,
    plan_batch,
)
from repro.serve.epochs import EpochShard, FaultEpochManager
from repro.serve.reliability import (
    BackoffPolicy,
    BreakerOpenError,
    CircuitBreaker,
    RetryingClient,
)
from repro.serve.server import (
    DeadlineExceededError,
    EngineFailureError,
    ServeServer,
    ServerConfig,
    run_server,
)

__all__ = [
    "BackoffPolicy",
    "BadBatchError",
    "BreakerOpenError",
    "ChaosConfig",
    "CircuitBreaker",
    "DeadlineExceededError",
    "EngineFailureError",
    "EpochShard",
    "FaultEpochManager",
    "QueryEngine",
    "RetryingClient",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "ServerConfig",
    "ShardRegistry",
    "TableShard",
    "UnknownTopologyError",
    "format_bench",
    "format_chaos",
    "plan_batch",
    "run_bench",
    "run_chaos",
    "run_server",
    "wait_until_ready",
]
