"""``repro.serve`` — batched route-query service over shared distance tables.

The serving layer turns the store's cached int16 distance tables (the
``TableRouter(dist=)`` sharing contract) into an online query surface:

* :mod:`repro.serve.engine` — pure-sync core: batch planning, vectorized
  distance lookup, path reconstruction by next-hop walking, and the
  per-topology :class:`ShardRegistry`;
* :mod:`repro.serve.server` — asyncio NDJSON TCP front end with request
  coalescing, bounded in-flight backpressure and graceful drain;
* :mod:`repro.serve.client` — blocking batch client (tests, CLI, bench);
* :mod:`repro.serve.bench` — load generator emitting ``BENCH_serve.json``.

See ``docs/SERVING.md`` for the protocol, operational semantics and the
RL112 serve-discipline rules this package is written under.
"""

from repro.serve.bench import format_bench, run_bench
from repro.serve.client import ServeClient, ServeError, wait_until_ready
from repro.serve.engine import (
    BadBatchError,
    QueryEngine,
    ShardRegistry,
    TableShard,
    UnknownTopologyError,
    plan_batch,
)
from repro.serve.server import ServeServer, ServerConfig, run_server

__all__ = [
    "BadBatchError",
    "QueryEngine",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "ServerConfig",
    "ShardRegistry",
    "TableShard",
    "UnknownTopologyError",
    "format_bench",
    "plan_batch",
    "run_bench",
    "run_server",
    "wait_until_ready",
]
