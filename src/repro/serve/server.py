"""Asyncio NDJSON front end for the batched route-query engine.

Protocol — one JSON object per line, in both directions::

    -> {"op": "distance", "topology": "PS-IQ", "pairs": [[0, 7], ...], "id": 3}
    <- {"ok": true, "id": 3, "op": "distance", "result": [2, ...]}

    -> {"op": "path", "topology": "PS-IQ", "pairs": [[0, 7]]}
    <- {"ok": true, "op": "path", "result": [[0, 12, 7]]}

    -> {"op": "ping"}          <- {"ok": true, "op": "ping", "topologies": [...]}
    -> {"op": "stats"}         <- {"ok": true, "op": "stats", "stats": {...}}

    -> {"op": "faults", "action": "apply", "topology": "PS-IQ",
        "events": [{"kind": "link_down", "u": 3, "v": 17}], "label": 1}
    <- {"ok": true, "op": "faults", "topology": "PS-IQ", "epoch": 1, ...}

Errors answer ``{"ok": false, "code": <int>, "error": "..."}`` with
HTTP-flavored codes: 400 malformed request, 404 unknown topology (or,
with ``"kind": "route_unavailable"``, a strict query whose pairs are cut
apart by the current fault epoch), 429 backpressure, 500 batch execution
failure (``"kind": "engine"``), 503 draining, 504 deadline shed
(``"kind": "deadline"``).

Design constraints (docs/SERVING.md, lint rule RL112):

* **All store traffic happens before the event loop runs.**  Tables are
  resolved in :meth:`ServeServer.warm` — the synchronous startup path fed
  by ``repro store warm`` — so async handlers never block on a BFS build
  or disk I/O; they only do dict lookups and NumPy kernels.
* **Batching window.**  Requests for the same ``(topology, op)`` coalesce
  for up to ``max_delay`` seconds or ``max_batch`` pairs, whichever comes
  first, then execute as one vectorized engine call; each requester gets
  its slice of the batch result.  A request ``deadline_ms`` tightens its
  bucket's window (flush fires with half the tightest budget left), and
  work whose deadline has already expired is shed with 504, never
  computed late.
* **Fault epochs.**  The ``faults`` admin op applies
  :class:`~repro.faults.model.FaultEvent` records to a per-topology
  :class:`~repro.serve.epochs.FaultEpochManager`; the expensive overlay
  build runs in an executor (queries keep answering the old epoch), then
  pending buckets are flushed and the new table swaps in atomically.
  Every query response carries the ``epoch`` label its batch executed
  against (0 = pristine).
* **Bounded in-flight queue.**  Admitted-but-unanswered pairs are capped
  at ``max_inflight``; excess requests are rejected immediately with 429
  (and counted in ``serve.rejected``) instead of queueing unboundedly.
* **Graceful drain.**  SIGTERM finishes admitted work then exits 0;
  SIGINT does the same but exits 130 (the repo-wide interrupt code); a
  second signal aborts immediately.

This module is the only place in ``src/repro`` allowed to create an event
loop (RL112); everything reusable lives in the sync engine.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs, store
from repro.faults.model import FaultEvent
from repro.serve.engine import (
    OPS,
    BadBatchError,
    QueryEngine,
    ShardRegistry,
    UnknownTopologyError,
    plan_batch,
)
from repro.serve.epochs import FaultEpochManager

__all__ = [
    "DeadlineExceededError",
    "EngineFailureError",
    "ServerConfig",
    "ServeServer",
    "run_server",
]

#: Request-latency histogram buckets (seconds): 50us .. ~1.6s.
_LATENCY_BOUNDS = obs.exponential_buckets(5e-5, 2.0, 15)

#: Ready banner prefix; tests and the CI smoke job parse the JSON after it.
READY_PREFIX = "REPRO_SERVE_READY "


@dataclass(frozen=True)
class ServerConfig:
    """Static configuration for one :class:`ServeServer` process."""

    topologies: tuple[str, ...]
    scale: str = "full"
    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 4096
    max_delay: float = 0.002
    max_inflight: int = 65536
    metrics_out: str | None = None
    #: Optional path to a JSON fault schedule applied during warm() — the
    #: server comes up already degraded (see docs/SERVING.md).
    fault_schedule: str | None = None


class DeadlineExceededError(Exception):
    """An admitted request's ``deadline_ms`` expired before execution."""


class EngineFailureError(Exception):
    """A coalesced batch raised inside the engine; waiters get a 500."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(f"{type(cause).__name__}: {cause}")
        self.cause = cause


@dataclass
class _Waiter:
    """One admitted request waiting for its slice of a coalesced batch."""

    src: np.ndarray
    dst: np.ndarray
    future: asyncio.Future
    #: Absolute loop-clock deadline (None = no deadline).
    deadline: float | None = None


@dataclass
class _Bucket:
    """Pending requests for one ``(topology, op)`` coalescing key."""

    waiters: list[_Waiter] = field(default_factory=list)
    pairs: int = 0
    timer: asyncio.TimerHandle | None = None
    #: Loop-clock instant the pending timer fires at (deadline-tightened).
    flush_at: float = 0.0


class ServeServer:
    """Batched NDJSON TCP server over a :class:`QueryEngine`."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.registry = ShardRegistry()
        self.engine = QueryEngine(self.registry)
        self.epochs = FaultEpochManager(self.registry)
        # Local (non-ambient) latency histogram: `stats` answers work even
        # when the process runs without an obs session.
        self.latency = obs.Histogram(_LATENCY_BOUNDS)
        self.requests = 0
        self.rejected = 0
        self.batches = 0
        #: Error-response tally by kind (mirrors the serve.errors counter).
        self.errors: dict[str, int] = {}
        self.started_at = time.monotonic()
        self._inflight = 0
        self._buckets: dict[tuple[str, str], _Bucket] = {}
        #: Per-topology serialization of stage/install admin operations.
        self._fault_locks: dict[str, asyncio.Lock] = {}
        self._draining = False
        self._exit_code = 0
        self._signals = 0
        self._server: asyncio.AbstractServer | None = None
        self._stopped: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        #: Set once the listening socket is bound; ``port`` is valid then.
        self.ready = threading.Event()
        self.port: int | None = None

    # -- startup (sync; the only store-facing path) ------------------------

    def warm(self) -> None:
        """Resolve every configured topology through the store.

        Runs before the event loop starts: on a cold store this is where
        the single BFS table build happens; on a warm store (after
        ``repro store warm``) it is pure cache reads.
        """
        for spec in self.config.topologies:
            shard = self.registry.load(spec, scale=self.config.scale)
            print(
                f"repro-serve: loaded {spec!r} "
                f"(n={shard.n}, table={shard.table_bytes >> 20} MiB)",
                file=sys.stderr,
                flush=True,
            )
        if self.config.fault_schedule:
            self._apply_schedule_file(self.config.fault_schedule)

    def _apply_schedule_file(self, path: str) -> None:
        """Apply a JSON fault schedule during startup (still sync).

        The file is an object with an ``events`` array (the
        ``FaultEvent.to_jsonable`` form, as written by ``repro faults
        schedule``), an optional ``topology`` spec (required when the
        server hosts several) and an optional epoch ``label`` (default 1).
        """
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict) or not isinstance(doc.get("events"), list):
            raise ValueError(
                f"fault schedule {path!r} must be a JSON object with an "
                "'events' array"
            )
        events = [FaultEvent.from_jsonable(o) for o in doc["events"]]
        label = int(doc.get("label", 1))
        target = doc.get("topology")
        names = self.registry.names()
        if target is None:
            if len(names) != 1:
                raise ValueError(
                    f"fault schedule {path!r} needs an explicit 'topology' "
                    f"when serving several ({names})"
                )
            target = names[0]
        elif target not in names:
            raise ValueError(
                f"fault schedule topology {target!r} is not served ({names})"
            )
        shard = self.epochs.stage(target, events, label=label)
        self.epochs.install(target, shard)
        print(
            f"repro-serve: fault epoch {shard.epoch} applied to {target!r} "
            f"(links_down={shard.links_down}, nodes_down={shard.nodes_down})",
            file=sys.stderr,
            flush=True,
        )

    # -- protocol ----------------------------------------------------------

    def _error(
        self,
        code: int,
        message: str,
        req_id: object = None,
        kind: str | None = None,
    ) -> dict:
        if code == 429:
            self.rejected += 1
            obs.get_registry().counter(
                "serve.rejected",
                help="requests rejected by in-flight backpressure",
            ).inc()
        if kind is not None:
            self.errors[kind] = self.errors.get(kind, 0) + 1
            obs.get_registry().counter(
                "serve.errors",
                help="error responses by kind",
                labels=("kind",),
            ).labels(kind=kind).inc()
        out: dict = {"ok": False, "code": code, "error": message}
        if kind is not None:
            out["kind"] = kind
        if req_id is not None:
            out["id"] = req_id
        return out

    def _stats(self) -> dict:
        return {
            "uptime_s": time.monotonic() - self.started_at,
            "topologies": self.registry.names(),
            "topology_sizes": {
                s.name: s.n for s in self.registry.shards()
            },
            "shards": len(self.registry),
            "table_bytes": self.registry.total_table_bytes(),
            "requests": self.requests,
            "rejected": self.rejected,
            "batches": self.batches,
            "errors": dict(sorted(self.errors.items())),
            "faults": self.epochs.status(),
            "inflight_pairs": self._inflight,
            "latency": {
                "count": self.latency.count,
                "mean_s": self.latency.mean(),
                "p50_s": self.latency.quantile(0.50),
                "p99_s": self.latency.quantile(0.99),
                "max_s": self.latency.max if self.latency.count else None,
            },
        }

    async def _answer(self, req: dict) -> dict:
        """Answer one decoded request object (never raises)."""
        req_id = req.get("id")
        op = req.get("op")
        if op == "ping":
            return {"ok": True, "id": req_id, "op": "ping",
                    "topologies": self.registry.names()}
        if op == "stats":
            return {"ok": True, "id": req_id, "op": "stats",
                    "stats": self._stats()}
        if op == "faults":
            return await self._faults_admin(req, req_id)
        if op not in OPS:
            return self._error(400, f"unknown op {op!r}", req_id)
        if self._draining:
            return self._error(503, "server is draining", req_id)
        topology = req.get("topology")
        if not isinstance(topology, str):
            return self._error(400, "missing 'topology'", req_id)
        try:
            shard = self.registry.get(topology)
        except UnknownTopologyError as exc:
            return self._error(404, str(exc), req_id)
        try:
            src, dst = plan_batch(req.get("pairs", []), shard.n)
        except BadBatchError as exc:
            return self._error(400, str(exc), req_id)
        deadline_ms = req.get("deadline_ms")
        deadline: float | None = None
        if deadline_ms is not None:
            if (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or deadline_ms < 0
            ):
                return self._error(
                    400, "deadline_ms must be a non-negative number", req_id
                )
            deadline = asyncio.get_running_loop().time() + float(deadline_ms) / 1e3
        strict = bool(req.get("strict", False))
        npairs = int(src.shape[0])
        if npairs == 0:
            return {"ok": True, "id": req_id, "op": op, "result": [],
                    "epoch": int(shard.epoch)}
        if self._inflight + npairs > self.config.max_inflight:
            return self._error(
                429,
                f"in-flight pair budget exhausted "
                f"({self._inflight}+{npairs} > {self.config.max_inflight})",
                req_id,
            )
        if deadline is not None and deadline <= asyncio.get_running_loop().time():
            return self._error(
                504, "deadline already expired at admission", req_id,
                kind="deadline",
            )
        t0 = time.monotonic()
        self.requests += 1
        self._inflight += npairs
        obs.get_registry().counter(
            "serve.requests", help="admitted query requests", labels=("op",)
        ).labels(op=op).inc()
        try:
            result, epoch = await self._enqueue(topology, op, src, dst, deadline)
        except DeadlineExceededError:
            return self._error(
                504,
                f"deadline_ms={deadline_ms} expired before the batch executed",
                req_id,
                kind="deadline",
            )
        except EngineFailureError as exc:
            return self._error(
                500, f"batch execution failed: {exc}", req_id, kind="engine"
            )
        finally:
            self._inflight -= npairs
        if strict:
            unreachable = (
                sum(1 for v in result if v == -1)
                if op == "distance"
                else sum(1 for p in result if p is None)
            )
            if unreachable:
                return self._error(
                    404,
                    f"{unreachable}/{npairs} pairs unreachable under fault "
                    f"epoch {epoch}",
                    req_id,
                    kind="route_unavailable",
                )
        dt = time.monotonic() - t0
        self.latency.observe(dt)
        obs.get_registry().histogram(
            "serve.request.seconds",
            help="request latency (admission to answer)",
            bounds=_LATENCY_BOUNDS,
        ).observe(dt)
        return {"ok": True, "id": req_id, "op": op, "result": result,
                "epoch": epoch}

    # -- fault-epoch administration ---------------------------------------

    async def _faults_admin(self, req: dict, req_id: object) -> dict:
        """Handle the ``faults`` admin op: ``status``/``apply``/``clear``.

        ``apply`` stages the overlay build in an executor thread — queries
        keep answering the old epoch meanwhile — then flushes the
        topology's pending buckets and installs the new table, all within
        one event-loop step, so no batch ever straddles two epochs.
        """
        action = req.get("action", "status")
        if action == "status":
            return {"ok": True, "id": req_id, "op": "faults",
                    "status": self.epochs.status()}
        if self._draining:
            return self._error(503, "server is draining", req_id)
        topology = req.get("topology")
        if not isinstance(topology, str):
            return self._error(400, "missing 'topology'", req_id)
        try:
            self.registry.base(topology)
        except UnknownTopologyError as exc:
            return self._error(404, str(exc), req_id)
        lock = self._fault_locks.setdefault(topology, asyncio.Lock())
        async with lock:
            if action == "clear":
                for op_name in OPS:
                    self._flush((topology, op_name))
                self.epochs.clear(topology)
                return {"ok": True, "id": req_id, "op": "faults",
                        "topology": topology,
                        **self.epochs.status()[topology]}
            if action != "apply":
                return self._error(
                    400, f"unknown faults action {action!r}", req_id
                )
            raw = req.get("events")
            if not isinstance(raw, list):
                return self._error(
                    400, "faults apply needs an 'events' array", req_id
                )
            label = req.get("label")
            if label is not None and (
                isinstance(label, bool) or not isinstance(label, int) or label < 1
            ):
                return self._error(
                    400, "label must be a positive integer", req_id
                )
            try:
                events = [FaultEvent.from_jsonable(o) for o in raw]
            except ValueError as exc:
                return self._error(400, str(exc), req_id)
            loop = asyncio.get_running_loop()
            try:
                shard = await loop.run_in_executor(
                    None, self.epochs.stage, topology, events, label
                )
            except ValueError as exc:
                return self._error(400, f"bad fault event: {exc}", req_id)
            # Flush so every already-admitted pair answers the old epoch,
            # then swap — no awaits in between, so the install is atomic
            # with respect to every other handler.
            for op_name in OPS:
                self._flush((topology, op_name))
            self.epochs.install(topology, shard)
            print(
                f"repro-serve: fault epoch {shard.epoch} installed for "
                f"{topology!r} (links_down={shard.links_down}, "
                f"nodes_down={shard.nodes_down})",
                file=sys.stderr,
                flush=True,
            )
            return {"ok": True, "id": req_id, "op": "faults",
                    "topology": topology, **self.epochs.status()[topology]}

    # -- coalescing --------------------------------------------------------

    async def _enqueue(
        self,
        topology: str,
        op: str,
        src: np.ndarray,
        dst: np.ndarray,
        deadline: float | None = None,
    ) -> tuple[list, int]:
        """Admit one planned batch into the coalescing window.

        Resolves to ``(result_slice, epoch_label)``.  A request deadline
        tightens the bucket's flush timer: the batch fires when half the
        tightest remaining budget is burnt (never later than
        ``max_delay``), so deadline-carrying requests are answered with
        margin instead of being shed at the window's edge.
        """
        loop = asyncio.get_running_loop()
        key = (topology, op)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket()
        waiter = _Waiter(src, dst, loop.create_future(), deadline=deadline)
        bucket.waiters.append(waiter)
        bucket.pairs += int(src.shape[0])
        if bucket.pairs >= self.config.max_batch:
            self._flush(key)
        else:
            now = loop.time()
            flush_at = now + self.config.max_delay
            if deadline is not None:
                flush_at = min(flush_at, now + max(0.0, (deadline - now) * 0.5))
            if bucket.timer is not None and flush_at < bucket.flush_at - 1e-9:
                bucket.timer.cancel()
                bucket.timer = None
            if bucket.timer is None:
                bucket.flush_at = flush_at
                bucket.timer = loop.call_later(
                    max(0.0, flush_at - now), self._flush, key
                )
        return await waiter.future

    def _flush(self, key: tuple[str, str]) -> None:
        """Execute one coalesced batch and distribute the slices.

        Runs synchronously in the event loop: the serving shard (and its
        epoch label) is read exactly once per batch, so every pair in the
        batch answers against one fault epoch even when an admin swap
        lands between flushes.  Waiters whose deadline already expired are
        shed with :class:`DeadlineExceededError` (the 504 path) before the
        engine runs; an engine failure resolves every live waiter to
        :class:`EngineFailureError` (the structured 500 path) without
        killing the connection.
        """
        bucket = self._buckets.pop(key, None)
        if bucket is None or not bucket.waiters:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        topology, op = key
        now = time.monotonic()
        live: list[_Waiter] = []
        for w in bucket.waiters:
            if w.deadline is not None and now > w.deadline:
                if not w.future.done():
                    w.future.set_exception(DeadlineExceededError())
            else:
                live.append(w)
        if not live:
            return
        src = np.concatenate([w.src for w in live])
        dst = np.concatenate([w.dst for w in live])
        self.batches += 1
        try:
            epoch = int(self.registry.get(topology).epoch)
            result = self.engine.lookup(topology, op, src, dst)
        except Exception as exc:
            print(
                f"repro-serve: batch {key} of {int(src.shape[0])} pairs "
                f"failed: {exc!r}",
                file=sys.stderr,
                flush=True,
            )
            failure = EngineFailureError(exc)
            for w in live:
                if not w.future.done():
                    w.future.set_exception(failure)
            return
        offset = 0
        for w in live:
            k = int(w.src.shape[0])
            chunk = result[offset : offset + k]
            offset += k
            if not w.future.done():
                if op == "distance":
                    w.future.set_result(([int(v) for v in chunk], epoch))
                else:
                    w.future.set_result((list(chunk), epoch))

    def _flush_all(self) -> None:
        for key in list(self._buckets):
            self._flush(key)

    # -- connections -------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    req = json.loads(line)
                    if not isinstance(req, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    resp = self._error(400, f"bad request line: {exc}")
                else:
                    resp = await self._answer(req)
                writer.write(json.dumps(resp).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- lifecycle ---------------------------------------------------------

    def _begin_drain(self, code: int) -> None:
        self._draining = True
        self._exit_code = code
        if self._stopped is None:
            raise RuntimeError("drain requested before the server started")
        self._stopped.set()

    def request_stop(self, code: int = 0) -> None:
        """Thread-safe programmatic drain (embedding, tests)."""
        if self._loop is None:
            raise RuntimeError("server is not running")
        self._loop.call_soon_threadsafe(self._begin_drain, code)

    def _on_signal(self, signame: str, code: int) -> None:
        self._signals += 1
        if self._signals > 1:
            print(f"repro-serve: second signal ({signame}), aborting",
                  file=sys.stderr, flush=True)
            raise SystemExit(code)
        print(f"repro-serve: {signame} received, draining",
              file=sys.stderr, flush=True)
        self._begin_drain(code)

    async def _main(self) -> int:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stopped = asyncio.Event()
        try:
            loop.add_signal_handler(
                signal.SIGINT, self._on_signal, "SIGINT", 130
            )
            loop.add_signal_handler(
                signal.SIGTERM, self._on_signal, "SIGTERM", 0
            )
        except (NotImplementedError, RuntimeError):
            # Non-main thread (embedded/tests) or platform without signal
            # support: request_stop() is the drain path instead.
            pass
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        port = self._server.sockets[0].getsockname()[1]
        self.port = int(port)
        self.ready.set()
        print(
            READY_PREFIX
            + json.dumps(
                {
                    "port": int(port),
                    "host": self.config.host,
                    "topologies": self.registry.names(),
                },
                sort_keys=True,
            ),
            flush=True,
        )
        await self._stopped.wait()
        # Drain: stop accepting, answer everything already admitted.  A
        # handler that decremented the in-flight count has already buffered
        # its response bytes (write() is synchronous into the transport),
        # so once the count hits zero it is safe to wind the tasks down —
        # closing transports flushes, never truncates.
        self._server.close()
        await self._server.wait_closed()
        deadline = time.monotonic() + 5.0
        while self._inflight and time.monotonic() < deadline:
            self._flush_all()
            await asyncio.sleep(0.005)
        self._flush_all()
        await asyncio.sleep(0)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        return self._exit_code

    def serve_forever(self) -> int:
        """Run the server until a signal drains it; returns the exit code."""
        return asyncio.run(self._main())


def run_server(config: ServerConfig) -> int:
    """Warm the registry, serve until drained, export metrics; exit code.

    When ``config.metrics_out`` is set an enabled observability session
    covers the whole lifetime — including the warm path, so the exported
    ``routing.table.builds`` counter distinguishes cold starts (one build
    per distinct graph) from warm restarts (zero).
    """
    if config.metrics_out is None:
        server = ServeServer(config)
        server.warm()
        return server.serve_forever()
    with obs.session() as (registry, tracer):
        server = ServeServer(config)
        server.warm()
        try:
            code = server.serve_forever()
        finally:
            manifest = obs.RunManifest.capture(
                artifacts=store.get_store().resolved(),
                topologies=",".join(config.topologies),
                scale=config.scale,
            )
            obs.export_json(config.metrics_out, registry, tracer, manifest)
    return code
