"""Pure-sync batched route-query core over shared distance tables.

The engine answers vectorized batches of ``(src, dst)`` pairs — thousands
per call — against **store-resolved, read-only int16 distance tables**
(the ``TableRouter(dist=)`` sharing contract from ``docs/ARCHITECTURE.md``):

* :class:`TableShard` — one topology's routing state: the graph's CSR
  adjacency plus the shared distance table.  Distance lookups are a single
  fancy-indexing pass; path reconstruction walks next hops for the whole
  batch at once via :func:`repro.routing.table.first_minimal_hops`, so a
  diameter-3 network needs at most three vectorized steps per batch.
* :class:`ShardRegistry` — the per-topology table registry for multi-graph
  deployments.  :meth:`ShardRegistry.load` is the **only** resolution
  path, and it is synchronous by design: the serving layer calls it at
  startup (the warm path, fed by ``repro store warm``), never from inside
  a request handler (lint rule RL112 enforces this).
* :class:`QueryEngine` — batch planning + dispatch with
  :mod:`repro.obs` wiring (``serve.queries``/``serve.batches`` counters,
  batch-size histogram).

Everything here is thread-safe for concurrent readers: the distance table
is a read-only array shared across threads (and, through the store's disk
tier, across spawn workers), and lookups allocate only their outputs.
"""

from __future__ import annotations

import numpy as np

from repro import obs, store
from repro.graphs.base import Graph
from repro.routing.table import first_minimal_hops
from repro.topologies.base import Topology

__all__ = [
    "BadBatchError",
    "QueryEngine",
    "ShardRegistry",
    "TableShard",
    "UnknownTopologyError",
    "plan_batch",
]

#: Sentinel the distance table stores for unreachable pairs.
_UNREACHABLE = np.iinfo(np.int16).max

#: Batch-size histogram buckets: 1 .. 32768 pairs, powers of two-ish.
_BATCH_BUCKETS = (1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 32768.0)

#: Query operations the engine answers.
OPS = ("distance", "path")


class UnknownTopologyError(KeyError):
    """A query named a topology the registry has not loaded."""


class BadBatchError(ValueError):
    """A pair batch failed validation (shape, dtype, or vertex bounds)."""


def plan_batch(pairs: object, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Validate and plan one query batch: ``pairs`` → ``(src, dst)`` arrays.

    ``pairs`` is anything array-like of shape ``(k, 2)`` (a list of
    ``[src, dst]`` pairs, the protocol's JSON payload).  Raises
    :class:`BadBatchError` on ragged or wrong-shape input, non-integer
    entries, or vertex ids outside ``[0, n)``.
    """
    try:
        arr = np.asarray(pairs, dtype=np.int64)
    except (ValueError, TypeError) as exc:
        raise BadBatchError(f"pairs must be an array of [src, dst]: {exc}") from exc
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise BadBatchError(
            f"pairs must have shape (k, 2), got {arr.shape}"
        )
    if arr.size and (arr.min() < 0 or arr.max() >= n):
        raise BadBatchError(
            f"vertex id out of range [0, {n}) in pair batch"
        )
    return arr[:, 0].copy(), arr[:, 1].copy()


class TableShard:
    """One topology's routing state: CSR graph + shared read-only table.

    The ``dist`` array is the store's cached int16 table — never copied,
    never written.  Two shards for the same graph (or the same shard read
    from many threads) share one table object.
    """

    __slots__ = ("name", "graph", "dist", "topology")

    #: Fault-epoch label of the answers this shard produces.  The pristine
    #: store-resolved table is epoch 0; overlays built by
    #: :mod:`repro.serve.epochs` carry the label they were installed under.
    epoch = 0

    def __init__(
        self,
        name: str,
        graph: Graph,
        dist: np.ndarray,
        topology: Topology | None = None,
    ) -> None:
        if dist.shape != (graph.n, graph.n):
            raise ValueError(
                f"distance table shape {dist.shape} does not match graph "
                f"with {graph.n} vertices"
            )
        self.name = name
        self.graph = graph
        self.dist = dist
        self.topology = topology

    @property
    def n(self) -> int:
        """Router count (valid vertex ids are ``0..n-1``)."""
        return self.graph.n

    @property
    def table_bytes(self) -> int:
        """Memory footprint of the shared distance table."""
        return int(self.dist.nbytes)

    def distances(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Vectorized distance lookup; ``-1`` marks unreachable pairs."""
        d = self.dist[src, dst].astype(np.int64)
        d[d == _UNREACHABLE] = -1
        return d

    def paths(self, src: np.ndarray, dst: np.ndarray) -> list[list[int] | None]:
        """Minimal paths for the whole batch via next-hop walking.

        Returns one vertex list per pair (both endpoints included; a
        single-element list when ``src == dst``) or ``None`` where *dst*
        is unreachable.  Each walking step advances **every** unfinished
        pair at once, so the Python-level loop runs at most
        ``max(distance)`` times — three for a diameter-3 network.
        """
        npairs = int(src.shape[0])
        d16 = self.dist[src, dst]
        reach = d16 != _UNREACHABLE
        dmax = int(d16[reach].max()) if bool(reach.any()) else 0
        cols = np.full((npairs, dmax + 1), -1, dtype=np.int64)
        if npairs:
            cols[:, 0] = src
        cur = src.copy()
        for step in range(dmax):
            active = reach & (cur != dst)
            if not active.any():
                break
            nxt = first_minimal_hops(self.graph, self.dist, cur[active], dst[active])
            if (nxt < 0).any():
                raise RuntimeError(
                    f"inconsistent distance table for {self.name!r}: no "
                    "closer neighbor found mid-walk"
                )
            cur[active] = nxt
            cols[active, step + 1] = nxt
        out: list[list[int] | None] = []
        for i in range(npairs):
            if not reach[i]:
                out.append(None)
            else:
                out.append([int(v) for v in cols[i, : int(d16[i]) + 1]])
        return out


class ShardRegistry:
    """Per-topology table registry for multi-graph deployments.

    ``load`` is the synchronous startup/warm path: it resolves the
    topology and its distance table through :mod:`repro.store` (one BFS
    build cold, zero warm) and registers the shard under its spec string.
    ``get`` is the hot path: a dict lookup, no store traffic, safe to call
    from request handlers.

    A registry may additionally carry one **fault-epoch overlay** per
    topology (:mod:`repro.serve.epochs`): ``get`` prefers the overlay when
    one is installed, ``base`` always answers the pristine shard, and
    ``set_overlay``/``clear_overlay`` swap atomically (a single dict
    assignment — readers see either the old epoch or the new one, never a
    mixture).
    """

    def __init__(self) -> None:
        self._shards: dict[str, TableShard] = {}
        self._overlays: dict[str, TableShard] = {}

    def load(self, spec: str, scale: str = "full") -> TableShard:
        """Resolve (or recall) the shard for topology *spec*.

        This touches the artifact store and may run a BFS table build on a
        cold store — call it at startup or from ``repro store warm``-style
        warm paths only, never inside an async request handler (RL112).
        """
        shard = self._shards.get(spec)
        if shard is not None:
            return shard
        topo = store.resolve_topology(spec, scale=scale)
        dist = store.distance_table(topo)
        shard = TableShard(spec, topo.graph, dist, topology=topo)
        self._shards[spec] = shard
        self._update_gauges()
        return shard

    def get(self, name: str) -> TableShard:
        """The serving shard for *name* — the installed fault-epoch overlay
        when one is active, else the pristine base shard; raises
        :class:`UnknownTopologyError`."""
        shard = self._overlays.get(name)
        if shard is not None:
            return shard
        return self.base(name)

    def base(self, name: str) -> TableShard:
        """The pristine (epoch-0) shard for *name*, overlay or not."""
        shard = self._shards.get(name)
        if shard is None:
            raise UnknownTopologyError(
                f"topology {name!r} is not loaded; serving: {self.names()}"
            )
        return shard

    def overlay(self, name: str) -> TableShard | None:
        """The installed fault-epoch overlay for *name* (``None`` = pristine)."""
        return self._overlays.get(name)

    def set_overlay(self, name: str, shard: TableShard) -> None:
        """Atomically install *shard* as the serving overlay for *name*.

        The base shard must already be loaded; the swap is one dict
        assignment, so concurrent readers (the synchronous batch-flush
        path) see exactly one epoch per batch.
        """
        base = self.base(name)
        if shard.n != base.n:
            raise ValueError(
                f"overlay for {name!r} has {shard.n} vertices, base has {base.n}"
            )
        self._overlays[name] = shard
        self._update_gauges()

    def clear_overlay(self, name: str) -> None:
        """Drop the overlay for *name*; ``get`` answers the pristine shard."""
        self._overlays.pop(name, None)
        self._update_gauges()

    def names(self) -> list[str]:
        return sorted(self._shards)

    def shards(self) -> list[TableShard]:
        return [self._shards[k] for k in self.names()]

    def __len__(self) -> int:
        return len(self._shards)

    def total_table_bytes(self) -> int:
        """Combined footprint of every loaded table (shared, not copied),
        fault-epoch overlays included."""
        return sum(s.table_bytes for s in self._shards.values()) + sum(
            s.table_bytes for s in self._overlays.values()
        )

    def _update_gauges(self) -> None:
        reg = obs.get_registry()
        reg.gauge(
            "serve.shards", help="distance-table shards loaded in the registry"
        ).set(len(self._shards))
        reg.gauge(
            "serve.table.bytes",
            help="combined bytes of the shared distance tables",
        ).set(self.total_table_bytes())
        reg.gauge(
            "serve.epoch.active",
            help="topologies currently serving a fault-epoch overlay",
        ).set(len(self._overlays))


class QueryEngine:
    """Batched query dispatch over a :class:`ShardRegistry`.

    The engine is pure-sync and stateless apart from the registry: the
    asyncio front end (:mod:`repro.serve.server`), the CLI ``repro route``
    command, the bench harness and tests all share this one code path.
    """

    def __init__(self, registry: ShardRegistry) -> None:
        self.registry = registry

    def lookup(
        self, topology: str, op: str, src: np.ndarray, dst: np.ndarray
    ) -> np.ndarray | list[list[int] | None]:
        """Answer one planned batch (``src``/``dst`` from :func:`plan_batch`)."""
        if op not in OPS:
            raise ValueError(f"unknown op {op!r}; expected one of {OPS}")
        shard = self.registry.get(topology)
        reg = obs.get_registry()
        npairs = int(src.shape[0])
        reg.counter(
            "serve.queries",
            help="individual (src, dst) pairs answered",
            labels=("op",),
        ).labels(op=op).inc(npairs)
        reg.counter(
            "serve.batches",
            help="vectorized batches executed by the engine",
            labels=("op",),
        ).labels(op=op).inc()
        reg.histogram(
            "serve.batch.pairs",
            help="pairs per executed batch",
            bounds=_BATCH_BUCKETS,
        ).observe(npairs)
        with obs.span(f"serve.{op}"):
            if op == "distance":
                return shard.distances(src, dst)
            return shard.paths(src, dst)

    def distances(self, topology: str, pairs: object) -> np.ndarray:
        """Plan + answer a distance batch (``-1`` = unreachable)."""
        src, dst = plan_batch(pairs, self.registry.get(topology).n)
        result = self.lookup(topology, "distance", src, dst)
        return result  # type: ignore[return-value]

    def paths(self, topology: str, pairs: object) -> list[list[int] | None]:
        """Plan + answer a path batch (``None`` = unreachable)."""
        src, dst = plan_batch(pairs, self.registry.get(topology).n)
        result = self.lookup(topology, "path", src, dst)
        return result  # type: ignore[return-value]
