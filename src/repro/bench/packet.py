"""Engine-vs-reference benchmark of the packet simulator.

This is the perf-trajectory guard for the struct-of-arrays packet engine:
it drives the **fig09 packet sweep** (the same topology set, pattern and
load grid as :func:`repro.experiments.fig09.packet_sim_curves`) through
both engines — the SoA kernel and the pinned scalar reference — timing
every (topology, load) point and byte-comparing the two
:class:`~repro.sim.packet.PacketSimResult` streams.

The report (schema ``repro.bench.packet/v1``) carries:

* per-point wall-clock for each engine plus the point speedup;
* sweep totals and the headline ``speedup`` (total reference seconds over
  total SoA seconds);
* ``parity`` — True only if every point's result dataclass compared equal
  field-for-field across engines;
* a :class:`~repro.obs.RunManifest` pinning machine, interpreter, git
  revision, seed and simulator config, so the checked-in
  ``benchmarks/results/BENCH_packet.json`` is self-describing.

Timing protocol: the two engines run back-to-back per point (adjacent in
time, so slow drift hits both), and ``repeats`` > 1 takes the minimum
wall-clock per engine per point — the standard low-noise estimator.  A
fresh simulator is constructed per run so repeated timings are identical
seeded executions.
"""

from __future__ import annotations

import time
from dataclasses import asdict

from repro.obs import RunManifest
from repro.sim.packet import PacketSimConfig, PacketSimulator

__all__ = [
    "BENCH_SCHEMA",
    "FIG09_NAMES",
    "FIG09_LOADS",
    "quick_preset",
    "run_bench",
    "format_bench",
]

BENCH_SCHEMA = "repro.bench.packet/v1"

#: The fig09 packet sweep: reduced-scale Table 3 analogues x uniform
#: traffic x the experiment's load grid (early-stopped at instability,
#: exactly like ``latency_load_sweep``).
FIG09_NAMES = ("PS-IQ", "PS-Pal", "BF", "DF", "HX")
FIG09_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def quick_preset() -> dict:
    """CI ``perf-smoke`` point: one topology, one load, shortened cycles.

    Small enough for a pull-request gate (~tens of seconds for the
    reference engine) while still exercising injection, contention, the
    drain tail, and the full parity comparison.
    """
    return {
        "names": ("PS-IQ",),
        "loads": (0.6,),
        "config": PacketSimConfig(
            warmup_cycles=500, measure_cycles=2000, drain_cycles=2000, seed=1
        ),
    }


def _timed_run(topo, router, pattern_obj, cfg, engine, load, repeats):
    """Best-of-``repeats`` wall clock; the seeded result is run-invariant
    because each repeat constructs a fresh simulator."""
    best = float("inf")
    res = None
    for _ in range(repeats):
        sim = PacketSimulator(topo, router, pattern_obj, cfg, engine=engine)
        t0 = time.perf_counter()
        res = sim.run(load)
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best, res


def run_bench(
    names=FIG09_NAMES,
    loads=FIG09_LOADS,
    scale: str = "reduced",
    pattern: str = "uniform",
    config: PacketSimConfig | None = None,
    repeats: int = 1,
) -> dict:
    """Run the sweep through both engines; returns the report dict."""
    from repro.experiments.fig09 import PATTERNS
    from repro.store import table3_router, table3_topology

    cfg = config if config is not None else PacketSimConfig(seed=1)
    rows = []
    total = {"soa": 0.0, "reference": 0.0}
    parity = True
    for name in names:
        topo = table3_topology(name, scale=scale)
        router, _ = table3_router(name, scale=scale)
        pattern_obj = PATTERNS[pattern](topo)
        for load in loads:
            point = {"topology": name, "load": float(load)}
            results = {}
            for engine in ("soa", "reference"):
                secs, res = _timed_run(
                    topo, router, pattern_obj, cfg, engine, float(load), repeats
                )
                total[engine] += secs
                results[engine] = res
                point[f"{engine}_seconds"] = secs
            point_parity = asdict(results["soa"]) == asdict(results["reference"])
            parity = parity and point_parity
            point["parity"] = point_parity
            point["stable"] = bool(results["soa"].stable)
            point["speedup"] = (
                point["reference_seconds"] / point["soa_seconds"]
                if point["soa_seconds"] > 0
                else float("inf")
            )
            rows.append(point)
            if not results["soa"].stable:
                # Mirror latency_load_sweep: past saturation the curve is
                # meaningless, so the fig09 sweep stops here too.
                break
    manifest = RunManifest.capture(
        seed=cfg.seed,
        config=cfg,
        sweep="fig09-packet",
        names=list(names),
        scale=scale,
        pattern=pattern,
        repeats=repeats,
    )
    return {
        "schema": BENCH_SCHEMA,
        "sweep": "fig09-packet",
        "names": list(names),
        "scale": scale,
        "pattern": pattern,
        "loads": [float(x) for x in loads],
        "repeats": int(repeats),
        "config": asdict(cfg),
        "seed": cfg.seed,
        "rows": rows,
        "totals": {
            "soa_seconds": total["soa"],
            "reference_seconds": total["reference"],
            "speedup": (
                total["reference"] / total["soa"] if total["soa"] > 0 else float("inf")
            ),
        },
        "parity": parity,
        "manifest": manifest.to_dict(),
    }


def format_bench(doc: dict) -> str:
    """Console rendering of a packet bench report."""
    t = doc["totals"]
    lines = [
        f"packet bench — {doc['sweep']} (scale={doc['scale']}, "
        f"pattern={doc['pattern']}, seed={doc['seed']}, "
        f"repeats={doc['repeats']})",
        f"  {'topology':>8} {'load':>5} {'soa':>8} {'reference':>10} "
        f"{'speedup':>8}  parity",
    ]
    for r in doc["rows"]:
        lines.append(
            f"  {r['topology']:>8} {r['load']:>5.2f} "
            f"{r['soa_seconds']:>7.2f}s {r['reference_seconds']:>9.2f}s "
            f"{r['speedup']:>7.2f}x  {'ok' if r['parity'] else 'MISMATCH'}"
        )
    lines.append(
        f"  totals: soa={t['soa_seconds']:.2f}s "
        f"reference={t['reference_seconds']:.2f}s "
        f"speedup={t['speedup']:.2f}x "
        f"parity={'ok' if doc['parity'] else 'MISMATCH'}"
    )
    return "\n".join(lines)
