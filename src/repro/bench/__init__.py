"""``repro.bench`` — performance benchmarks with checked-in reports.

The umbrella behind the ``repro bench`` CLI: each submodule owns one
benchmark family and emits a schema-versioned JSON report that lives in
``benchmarks/results/`` as a perf-trajectory record:

* :mod:`repro.bench.packet` — SoA packet engine vs the pinned scalar
  reference over the fig09 packet sweep (``BENCH_packet.json``);
* :mod:`repro.serve.bench` — batched route-query throughput vs a scalar
  lookup loop (``BENCH_serve.json``; predates this package and stays in
  the serve subsystem, surfaced here under ``repro bench serve``).
"""

from repro.bench.packet import (
    BENCH_SCHEMA as PACKET_BENCH_SCHEMA,
)
from repro.bench.packet import (
    FIG09_LOADS,
    FIG09_NAMES,
    format_bench,
    quick_preset,
    run_bench,
)

__all__ = [
    "PACKET_BENCH_SCHEMA",
    "FIG09_NAMES",
    "FIG09_LOADS",
    "quick_preset",
    "run_bench",
    "format_bench",
]
