"""Dimension-aligned minimal routing for HyperX (Ahn et al. 2009).

A minimal HyperX path aligns each mismatched coordinate exactly once, in
any order — so the minimal next hops from *u* toward *t* are the neighbors
of *u* with one more coordinate aligned.  No tables are needed beyond the
dimension strides (the property §9.3 credits HyperX with).
"""

from __future__ import annotations

import numpy as np

from repro.routing.base import Router
from repro.topologies.base import Topology

__all__ = [
    "HyperXRouter",
    "HyperXDoalRouter",
]


class HyperXRouter(Router):
    """All-minimal-path dimension-ordered routing on a HyperX."""

    def __init__(self, topology: Topology):
        if "dims" not in topology.meta:
            raise ValueError("HyperXRouter needs a hyperx_topology network")
        self.topology = topology
        self.graph = topology.graph
        self.dims = tuple(topology.meta["dims"])
        self.strides = np.asarray(topology.meta["strides"], dtype=np.int64)

    def coords(self, router: int) -> tuple[int, ...]:
        out = []
        for stride, size in zip(self.strides, self.dims):
            out.append((router // stride) % size)
        return tuple(out)

    def distance(self, current: int, dest: int) -> int:
        cc, tc = self.coords(current), self.coords(dest)
        return sum(int(a != b) for a, b in zip(cc, tc))

    def next_hops(self, current: int, dest: int) -> list[int]:
        if current == dest:
            return []
        cc, tc = self.coords(current), self.coords(dest)
        hops = []
        for axis, (a, b) in enumerate(zip(cc, tc)):
            if a != b:
                hops.append(int(current + (b - a) * self.strides[axis]))
        return hops


class HyperXDoalRouter(HyperXRouter):
    """DOAL ("Dimensionally-Adaptive, Load-balanced") routing, as provided
    by SST/Merlin for HyperX (§10.1).

    In each unaligned dimension the packet may either move directly to the
    destination coordinate or detour via one random intermediate coordinate
    of that dimension ("adaptively routes at most once in each dimension").
    ``next_hops`` exposes both the direct hop and the candidate detours;
    adaptive simulators pick by queue depth, and :meth:`next_hop` stays
    minimal so the router remains usable as a deterministic policy.
    """

    def __init__(self, topology, detours_per_dim: int = 1, seed: int = 0):
        super().__init__(topology)
        self.detours_per_dim = detours_per_dim
        self._rng = __import__("numpy").random.default_rng(seed)

    def adaptive_candidates(self, current: int, dest: int) -> list[int]:
        """Minimal next hops plus one random same-dimension detour each."""
        cands = list(self.next_hops(current, dest))
        cc, tc = self.coords(current), self.coords(dest)
        for axis, (a, b) in enumerate(zip(cc, tc)):
            if a == b:
                continue
            size = self.dims[axis]
            for _ in range(self.detours_per_dim):
                alt = int(self._rng.integers(0, size))
                if alt not in (a, b):
                    cands.append(int(current + (alt - a) * self.strides[axis]))
        return cands
