"""Routing: minimal (analytic and table-based) and adaptive (Valiant/UGAL).

* :class:`TableRouter` — all-minimal-path, BFS-table-based (what Booksim
  uses for SF/BF; §9.3 notes its storage cost).
* :class:`PolarStarRouter` — the paper's analytic minimal routing (§9.2);
  stores only structure-graph tables plus O(supernode²) local state.
* :class:`DragonflyRouter` / :class:`HyperXRouter` — the standard
  hierarchical / dimension-ordered minimal schemes.
* :class:`ValiantMixin`-style helpers for UGAL live in
  :mod:`repro.routing.ugal` and are consumed by the simulators.
"""

from repro.routing.base import Router, route_path
from repro.routing.table import TableRouter, batched_next_hops, next_hop_table
from repro.routing.polarstar_routing import PolarStarRouter
from repro.routing.dragonfly_routing import DragonflyRouter
from repro.routing.hyperx_routing import HyperXRouter
from repro.routing.ugal import UgalPolicy, valiant_path

__all__ = [
    "Router",
    "route_path",
    "TableRouter",
    "batched_next_hops",
    "next_hop_table",
    "PolarStarRouter",
    "DragonflyRouter",
    "HyperXRouter",
    "UgalPolicy",
    "valiant_path",
]
