"""Hierarchical minimal routing for Dragonfly (local-global-local).

Stores only a group-pair gateway table (``O(g²)``), not per-router state:
a packet in group *G* headed for group *T* first moves locally to the
router owning the single G–T global link, crosses it, then moves locally to
the destination router.  This matches Booksim's built-in Dragonfly MIN
routing (§9.1).
"""

from __future__ import annotations

import numpy as np

from repro.routing.base import Router
from repro.topologies.base import Topology

__all__ = [
    "DragonflyRouter",
]


class DragonflyRouter(Router):
    """Minimal l-g-l routing on a :func:`dragonfly_topology` network."""

    def __init__(self, topology: Topology):
        if topology.groups is None or "a" not in topology.meta:
            raise ValueError("DragonflyRouter needs a dragonfly_topology network")
        self.topology = topology
        self.graph = topology.graph
        self.a = topology.meta["a"]
        self.h = topology.meta["h"]
        self.g = topology.meta["num_groups"]
        self.groups = topology.groups

        # gateway[src_group, dst_group] = router (id) in src_group owning the
        # global link toward dst_group.
        gw = np.full((self.g, self.g), -1, dtype=np.int64)
        for grp in range(self.g):
            for k in range(self.a * self.h):
                tgt = k if k < grp else k + 1
                gw[grp, tgt] = grp * self.a + k // self.h
        self.gateway = gw

    def distance(self, current: int, dest: int) -> int:
        if current == dest:
            return 0
        gc, gt = self.groups[current], self.groups[dest]
        if gc == gt:
            return 1  # groups are cliques
        src_gw = self.gateway[gc, gt]
        dst_gw = self.gateway[gt, gc]
        return int(current != src_gw) + 1 + int(dest != dst_gw)

    def next_hops(self, current: int, dest: int) -> list[int]:
        if current == dest:
            return []
        gc, gt = self.groups[current], self.groups[dest]
        if gc == gt:
            return [dest]
        src_gw = int(self.gateway[gc, gt])
        if current == src_gw:
            dst_gw = int(self.gateway[gt, gc])
            return [dst_gw]
        return [src_gw]

    @property
    def table_bytes(self) -> int:
        return self.gateway.nbytes
