"""Table-based all-minimal-path routing.

This is the reference policy: a full BFS distance matrix, with the minimal
next hops of ``(u, t)`` being the neighbors of *u* one step closer to *t*.
It is exact for every topology, at ``O(n²)`` memory — the storage cost the
paper calls out for SF and BF (§9.3, Fig. 9 caption).  PolarStar's analytic
router avoids it; we use the table router for baselines and as the oracle
in tests.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distances import bfs_distances
from repro.graphs.base import Graph
from repro.routing.base import Router

__all__ = [
    "TableRouter",
]


class TableRouter(Router):
    """All-minpath routing from a precomputed distance matrix."""

    def __init__(self, graph: Graph, chunk: int = 512):
        self.graph = graph
        n = graph.n
        dist = np.empty((n, n), dtype=np.int16)
        for start in range(0, n, chunk):
            idx = np.arange(start, min(start + chunk, n))
            block = bfs_distances(graph, idx)
            block[np.isinf(block)] = np.iinfo(np.int16).max
            dist[idx] = block.astype(np.int16)
        self.dist = dist

    def distance(self, current: int, dest: int) -> int:
        return int(self.dist[current, dest])

    def next_hops(self, current: int, dest: int) -> list[int]:
        if current == dest:
            return []
        nbrs = self.graph.neighbors(current)
        closer = nbrs[self.dist[nbrs, dest] == self.dist[current, dest] - 1]
        return [int(v) for v in closer]

    def num_minimal_paths(self, src: int, dest: int) -> int:
        """Count of distinct minimal paths (path-diversity metric)."""
        if src == dest:
            return 1
        counts = {src: 1}
        order = [src]
        seen = {src}
        qi = 0
        while qi < len(order):
            u = order[qi]
            qi += 1
            if u == dest:
                continue
            for v in self.next_hops(u, dest):
                if v not in seen:
                    seen.add(v)
                    order.append(v)
                    counts[v] = 0
                counts[v] += counts[u]
        return counts.get(dest, 0)

    @property
    def table_bytes(self) -> int:
        """Memory footprint of the routing table (§9.3 comparison)."""
        return self.dist.nbytes
