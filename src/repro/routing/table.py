"""Table-based all-minimal-path routing.

This is the reference policy: a full BFS distance matrix, with the minimal
next hops of ``(u, t)`` being the neighbors of *u* one step closer to *t*.
It is exact for every topology, at ``O(n²)`` memory — the storage cost the
paper calls out for SF and BF (§9.3, Fig. 9 caption).  PolarStar's analytic
router avoids it; we use the table router for baselines and as the oracle
in tests.

Distance tables are expensive (one BFS per vertex), so they are a first
class artifact: :func:`build_distance_table` is the only code path that
constructs one, it counts each construction in the ``routing.table.builds``
metric, and :func:`repro.store.distance_table` caches the result by graph
content so warm runs never rebuild (see ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import weakref

import numpy as np

from repro import obs
from repro.graphs.base import Graph
from repro.routing.base import HopView, Router

__all__ = [
    "TableRouter",
    "batched_next_hops",
    "build_distance_table",
    "first_minimal_hops",
    "next_hop_table",
]


def build_distance_table(graph: Graph, chunk: int = 512) -> np.ndarray:
    """All-pairs BFS distance matrix of *graph* as a read-only int16 array
    (unreachable pairs hold ``iinfo(int16).max``).

    Every call performs the full ``n`` BFS sweeps and increments the
    ``routing.table.builds`` counter — callers wanting reuse go through
    :func:`repro.store.distance_table`, which shares one table per graph
    digest across routers, processes and runs.
    """
    # Imported here, not at module level: repro.analysis pulls in the
    # topologies/store stack, which circularly imports repro.routing — a
    # module-level import makes `import repro.routing` order-dependent.
    from repro.analysis.distances import bfs_distances

    obs.get_registry().counter(
        "routing.table.builds",
        help="BFS distance-table constructions performed by this process",
    ).inc()
    n = graph.n
    dist = np.empty((n, n), dtype=np.int16)
    for start in range(0, n, chunk):
        idx = np.arange(start, min(start + chunk, n))
        block = bfs_distances(graph, idx)
        block[np.isinf(block)] = np.iinfo(np.int16).max
        dist[idx] = block.astype(np.int16)
    dist.setflags(write=False)
    return dist


def first_minimal_hops(
    graph: Graph, dist: np.ndarray, cur: np.ndarray, dst: np.ndarray
) -> np.ndarray:
    """Vectorized single-next-hop kernel over a shared distance table.

    For every pair ``(cur[i], dst[i])`` returns the smallest-id neighbor of
    ``cur[i]`` that is one step closer to ``dst[i]`` — the same hop
    :meth:`TableRouter.next_hop` picks, computed for thousands of pairs in
    a handful of NumPy passes instead of one Python call each.  Entries
    where ``cur == dst`` or ``dst`` is unreachable come back as ``-1``.

    This is the walking step of the batched path-reconstruction service
    (:mod:`repro.serve.engine`); a diameter-3 table needs at most three
    applications to materialize every path in a batch.
    """
    cur = np.asarray(cur, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if cur.shape != dst.shape or cur.ndim != 1:
        raise ValueError("cur and dst must be matching 1-D index arrays")
    out = np.full(cur.shape, -1, dtype=np.int64)
    if cur.size == 0:
        return out
    d = dist[cur, dst].astype(np.int32)
    active = (cur != dst) & (d < np.iinfo(np.int16).max)
    if not active.any():
        return out
    acur = cur[active]
    adst = dst[active]
    starts = graph.indptr[acur]
    lens = (graph.indptr[acur + 1] - starts).astype(np.int64)
    total = int(lens.sum())
    # Flat gather of every active pair's neighbor list (CSR segments).
    seg_start = np.cumsum(lens) - lens
    flat = np.repeat(starts - seg_start, lens) + np.arange(total, dtype=np.int64)
    nbrs = graph.indices[flat]
    closer = dist[nbrs, np.repeat(adst, lens)] == np.repeat(d[active] - 1, lens)
    hit = np.flatnonzero(closer)
    # First hit per segment = smallest-id closer neighbor (CSR is sorted).
    seg_of_hit = np.searchsorted(seg_start, hit, side="right") - 1
    first_seg, first_idx = np.unique(seg_of_hit, return_index=True)
    picked = np.full(acur.shape, -1, dtype=np.int64)
    picked[first_seg] = nbrs[hit[first_idx]]
    out[active] = picked
    return out


#: Per-router-object next-hop table memo.  ``next_hop`` answers are
#: deterministic and history-free for every policy in this package, so one
#: table per router object is safe to share across simulator instances and
#: load points (the SoA packet engine builds one per sweep, not per run).
_NEXT_HOP_TABLES: "weakref.WeakKeyDictionary[Router, np.ndarray]" = (
    weakref.WeakKeyDictionary()
)


def next_hop_table(router: Router) -> np.ndarray:
    """Dense single-next-hop matrix ``T`` with ``T[u, t] == router.next_hop(u, t)``.

    Read-only ``(n, n)`` int32; the diagonal and unreachable pairs hold
    ``-1``.  For a :class:`TableRouter` the whole matrix is produced by the
    vectorized :func:`first_minimal_hops` kernel over its shared distance
    table; any other policy is sampled pair-by-pair (a one-time ``O(n²)``
    cost, memoized per router object).  This is the batched table path the
    struct-of-arrays packet engine fancy-indexes instead of calling
    ``next_hop`` once per event.
    """
    try:
        cached = _NEXT_HOP_TABLES.get(router)
    except TypeError:
        cached = None
    if cached is not None:
        return cached
    n = router.graph.n
    obs.get_registry().counter(
        "routing.nexthop_table.builds",
        help="dense next-hop-table constructions performed by this process",
    ).inc()
    with obs.span("routing.nexthop_table"):
        if isinstance(router, TableRouter):
            cur = np.repeat(np.arange(n, dtype=np.int64), n)
            dst = np.tile(np.arange(n, dtype=np.int64), n)
            tab = first_minimal_hops(router.graph, router.dist, cur, dst)
            tab = tab.reshape(n, n).astype(np.int32)
        else:
            tab = np.full((n, n), -1, dtype=np.int32)
            for u in range(n):
                row = tab[u]
                hop = router.next_hop
                for t in range(n):
                    if t == u:
                        continue
                    try:
                        row[t] = hop(u, t)
                    except ValueError:
                        pass  # unreachable pair stays -1
    tab.setflags(write=False)
    try:
        _NEXT_HOP_TABLES[router] = tab
    except TypeError:
        pass  # non-weakref-able router: still correct, just unmemoized
    return tab


def batched_next_hops(
    table: np.ndarray, srcs: np.ndarray, dests: np.ndarray
) -> np.ndarray:
    """Next hops for every pair ``(srcs[i], dests[i])`` from a dense table
    built by :func:`next_hop_table` — one fancy-indexed gather replacing a
    Python ``next_hop`` call per pair.  (VC assignment is by hop count in
    the packet simulator and never influences the route, so no VC input.)
    """
    return table[srcs, dests]


class TableRouter(Router):
    """All-minpath routing from a precomputed distance matrix.

    Pass ``dist=`` to share a cached table (the store does this); without
    it the constructor builds a fresh table via :func:`build_distance_table`.
    """

    def __init__(self, graph: Graph, chunk: int = 512, dist: np.ndarray | None = None):
        self.graph = graph
        if dist is None:
            dist = build_distance_table(graph, chunk=chunk)
        elif dist.shape != (graph.n, graph.n):
            raise ValueError(
                f"distance table shape {dist.shape} does not match "
                f"graph with {graph.n} vertices"
            )
        self.dist = dist

    def distance(self, current: int, dest: int) -> int:
        return int(self.dist[current, dest])

    def next_hops(self, current: int, dest: int) -> HopView:
        if current == dest:
            return HopView(np.empty(0, dtype=np.int64))
        nbrs = self.graph.neighbors(current)
        closer = nbrs[self.dist[nbrs, dest] == self.dist[current, dest] - 1]
        return HopView(closer)

    def num_minimal_paths(self, src: int, dest: int) -> int:
        """Count of distinct minimal paths (path-diversity metric)."""
        if src == dest:
            return 1
        counts = {src: 1}
        order = [src]
        seen = {src}
        qi = 0
        while qi < len(order):
            u = order[qi]
            qi += 1
            if u == dest:
                continue
            for v in self.next_hops(u, dest):
                if v not in seen:
                    seen.add(v)
                    order.append(v)
                    counts[v] = 0
                counts[v] += counts[u]
        return counts.get(dest, 0)

    @property
    def table_bytes(self) -> int:
        """Memory footprint of the routing table (§9.3 comparison)."""
        return self.dist.nbytes
