"""Analytic minimal routing for star-product networks (§9.2).

The router computes every minimal path from the star-product structure
instead of global tables.  Stored state (the paper's selling point over the
SF/BF routing tables):

* structure-graph tables: adjacency, one 2-walk *middle* witness per vertex
  pair (``O(n_s²)`` for ``n_s = q²+q+1`` supernodes — not ``O(n²)`` routers),
* supernode-local tables: adjacency, the bijection *f*, and intra-supernode
  next-hop tables of size ``O(n'²)`` (``n' = 2d'+2``).

Routing case analysis (source ``(c, c')``, destination ``(t, t')``):

* **same supernode** — route intra-supernode (quadric supernodes also have
  the ``f``-matching edges) unless a neighbor detour
  ``(c,c') → (a, g c') → (a, g t') → (c, t')`` is shorter;
* **adjacent supernodes** — the four R*/R_1 cases of §9.2: the direct cross
  edge, cross-then-intra, intra-then-cross, or an alternating 2-walk via a
  structure middle (Property R guarantees one for *every* pair, including
  adjacent ones);
* **non-adjacent supernodes** — hop to the 2-walk middle, then the adjacent
  case finishes in ≤ 2 more hops (Theorems 4/5 give diameter 3).

Both involution supernodes (IQ, Theorem 4) and R_1 supernodes (Paley,
Theorem 5 — where crossing an arc forward applies ``f`` and backward
``f⁻¹``) are supported.  Tests verify path lengths against a BFS oracle on
every vertex pair of several PolarStar instances.
"""

from __future__ import annotations

import numpy as np

from repro.core.star_product import StarProduct
from repro.graphs.base import Graph
from repro.routing.base import Router

__all__ = [
    "PolarStarRouter",
]


def _dense_adj(graph: Graph, aug_diag: bool = False) -> np.ndarray:
    a = np.zeros((graph.n, graph.n), dtype=bool)
    e = graph.edge_array
    if len(e):
        a[e[:, 0], e[:, 1]] = True
        a[e[:, 1], e[:, 0]] = True
    if aug_diag and len(graph.self_loops):
        a[graph.self_loops, graph.self_loops] = True
    return a


def _bfs_tables(adj: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """All-pairs (distance, first-hop) tables for a dense boolean adjacency."""
    n = len(adj)
    dist = np.full((n, n), 127, dtype=np.int8)
    nxt = np.full((n, n), -1, dtype=np.int64)
    for s in range(n):
        dist[s, s] = 0
        frontier = [s]
        while frontier:
            new = []
            for u in frontier:
                for v in np.nonzero(adj[u])[0]:
                    if dist[s, v] == 127:
                        dist[s, v] = dist[s, u] + 1
                        nxt[s, v] = v if u == s else nxt[s, u]
                        new.append(int(v))
            frontier = new
    return dist, nxt


class PolarStarRouter(Router):
    """Destination-based analytic minimal routing on a :class:`StarProduct`."""

    def __init__(self, star: StarProduct):
        self.star = star
        self.graph = star.graph
        self.f = star.f
        self.f_inv = star.f_inv
        self.involution = bool(np.array_equal(self.f, self.f_inv))
        self.np_ = star.supernode.n

        s = star.structure
        self.s_adj = _dense_adj(s, aug_diag=False)
        s_aug = _dense_adj(s, aug_diag=True)
        self.quadric = np.zeros(s.n, dtype=bool)
        self.quadric[s.self_loops] = True

        # middle[c, t]: one witness b with c~b~t in the self-loop-augmented
        # structure graph (Property R guarantees existence for every pair).
        self.middle = np.full((s.n, s.n), -1, dtype=np.int64)
        for c in range(s.n):
            reach = s_aug[c][:, None] & s_aug  # reach[b, t]
            found = reach.any(axis=0)
            self.middle[c, found] = np.argmax(reach, axis=0)[found]

        # A lowest / highest structure neighbor per vertex, for directed
        # detours in the R_1 (non-involution) case.
        self.lo_nbr = np.full(s.n, -1, dtype=np.int64)
        self.hi_nbr = np.full(s.n, -1, dtype=np.int64)
        for v in range(s.n):
            nbrs = s.neighbors(v)
            if len(nbrs):
                self.lo_nbr[v] = nbrs[0] if nbrs[0] < v else -1
                self.hi_nbr[v] = nbrs[-1] if nbrs[-1] > v else -1

        # Supernode tables: plain, and augmented with the f-matching edges
        # that quadric supernodes carry.
        self.sn_adj = _dense_adj(star.supernode)
        self.intra_dist_plain, self.intra_next_plain = _bfs_tables(self.sn_adj)
        aug = self.sn_adj.copy()
        ids = np.arange(self.np_)
        moved = ids[self.f != ids]
        aug[moved, self.f[moved]] = True
        aug[self.f[moved], moved] = True
        self.intra_dist_aug, self.intra_next_aug = _bfs_tables(aug)

    # -- primitive moves -------------------------------------------------------

    def _cross(self, c: int, t: int, xp: int) -> int:
        """Supernode coordinate after crossing the structure edge {c, t}
        starting from c (forward arcs apply f, backward f⁻¹)."""
        return int(self.f[xp]) if c < t else int(self.f_inv[xp])

    def _cross_pre(self, c: int, t: int, tp: int) -> int:
        """Coordinate z' with ``cross(c, t, z') == tp``."""
        return int(self.f_inv[tp]) if c < t else int(self.f[tp])

    def _intra(self, c: int) -> tuple[np.ndarray, np.ndarray]:
        if self.quadric[c]:
            return self.intra_dist_aug, self.intra_next_aug
        return self.intra_dist_plain, self.intra_next_plain

    # -- distance (closed form; oracle-verified in tests) ----------------------

    def distance(self, current: int, dest: int) -> int:
        c, cp = self.star.split(current)
        t, tp = self.star.split(dest)
        if c == t:
            if cp == tp:
                return 0
            d, _ = self._intra(c)
            return min(int(d[cp, tp]), 3)
        if self.s_adj[c, t]:
            return 1 if tp == self._cross(c, t, cp) else (2 if self._adjacent_two_hop(c, cp, t, tp) else 3)
        return 2 if self._nonadjacent_two_hop(c, cp, t, tp) is not None else 3

    def _adjacent_two_hop(self, c, cp, t, tp) -> bool:
        img = self._cross(c, t, cp)
        if self.sn_adj[img, tp] or self.sn_adj[cp, self._cross_pre(c, t, tp)]:
            return True
        # Alternating 2-walk through a structure middle (case b).
        return self._walk_two_hop(c, cp, t, tp)

    def _walk_two_hop(self, c, cp, t, tp) -> bool:
        if self.involution:
            return tp == cp and self.middle[c, t] >= 0
        b = int(self.middle[c, t])
        if b < 0:
            return False
        for b2 in self._middle_candidates(c, t):
            if self._walk_landing_matches(c, cp, b2, t, tp):
                return True
        return False

    def _middle_candidates(self, c, t):
        # Unique in ER for non-adjacent pairs; cheap scan keeps generality.
        b = int(self.middle[c, t])
        return [b] if b >= 0 else []

    def _walk_landing_matches(self, c, cp, b, t, tp) -> bool:
        for first in self._walk_first_images(c, b, cp):
            for final in self._walk_first_images(b, t, first):
                if final == tp:
                    return True
        return False

    def _walk_first_images(self, c: int, b: int, xp: int) -> list[int]:
        """Possible supernode coordinates after traversing the walk step
        c -> b (a self-loop step uses the matching edge, either direction)."""
        if b == c:
            imgs = {int(self.f[xp]), int(self.f_inv[xp])}
            imgs.discard(xp)
            return sorted(imgs)
        return [self._cross(c, b, xp)]

    def _nonadjacent_two_hop(self, c, cp, t, tp) -> int | None:
        """Return a middle b giving a 2-hop path, else None."""
        b = int(self.middle[c, t])
        if b < 0:
            return None
        if self._cross(b, t, self._cross(c, b, cp)) == tp:
            return b
        return None

    # -- next hop ----------------------------------------------------------------

    def next_hops(self, current: int, dest: int) -> list[int]:
        if current == dest:
            return []
        return [self._next_hop(current, dest)]

    def all_minimal_hops(self, current: int, dest: int) -> list[int]:
        """Every neighbor on some minimal path (one-step lookahead with the
        analytic distance).  Costs O(radix) distance evaluations — used by
        the path-diversity ablation; plain ``next_hops`` stays single-path
        as in §9.2."""
        if current == dest:
            return []
        d = self.distance(current, dest)
        return [
            int(v)
            for v in self.graph.neighbors(current)
            if self.distance(int(v), dest) == d - 1
        ]

    def _next_hop(self, current: int, dest: int) -> int:
        star = self.star
        c, cp = star.split(current)
        t, tp = star.split(dest)

        if c == t:
            return self._same_supernode_hop(c, cp, tp)

        if self.s_adj[c, t]:
            img = self._cross(c, t, cp)
            if tp == img or self.sn_adj[img, tp]:
                return star.node_id(t, img)  # direct cross / cross-then-intra
            z = self._cross_pre(c, t, tp)
            if self.sn_adj[cp, z]:
                return star.node_id(c, z)  # intra-then-cross
            # Case (b): alternating 2-walk via a structure middle.
            b = int(self.middle[c, t])
            if b == c:
                # quadric self-loop at c: matching edge first
                return star.node_id(c, self._matching_step(cp))
            return star.node_id(b, self._cross(c, b, cp))

        # Non-adjacent supernodes: go to the 2-walk middle.
        b = self._nonadjacent_two_hop(c, cp, t, tp)
        if b is None:
            b = int(self.middle[c, t])
        return star.node_id(b, self._cross(c, b, cp))

    def _matching_step(self, xp: int) -> int:
        img = int(self.f[xp])
        return img if img != xp else int(self.f_inv[xp])

    def _same_supernode_hop(self, c: int, cp: int, tp: int) -> int:
        star = self.star
        d, nxt = self._intra(c)
        intra = int(d[cp, tp])
        if intra <= 3:
            return star.node_id(c, int(nxt[cp, tp]))
        # Rare degenerate supernodes (e.g. IQ_0): leave and come back.
        for g, a in ((self.f, int(self.hi_nbr[c])), (self.f_inv, int(self.lo_nbr[c]))):
            if a >= 0 and self.sn_adj[g[cp], g[tp]]:
                return star.node_id(a, int(g[cp]))  # detour via neighbor a
        # f-pair fallback: any neighbor, then the adjacent 2-walk case.
        a = int(self.hi_nbr[c]) if self.hi_nbr[c] >= 0 else int(self.lo_nbr[c])
        return star.node_id(a, self._cross(c, a, cp))

    # -- storage accounting (the §9.3 routing-table comparison) -----------------

    @property
    def table_bytes(self) -> int:
        """Bytes of routing state: structure middles + supernode tables."""
        return (
            self.middle.nbytes
            + self.s_adj.nbytes
            + self.sn_adj.nbytes
            + self.intra_dist_plain.nbytes
            + self.intra_next_plain.nbytes
            + self.intra_dist_aug.nbytes
            + self.intra_next_aug.nbytes
            + self.f.nbytes
        )
