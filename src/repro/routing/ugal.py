"""Valiant misrouting and UGAL path selection (§9.3).

Valiant routing sends a packet minimally to a random intermediate router,
then minimally to the destination — trading path length for load balance.
UGAL ("Universal Globally-Adaptive Load-balancing") chooses per packet
between the minimal path and the best of a few sampled Valiant paths, using
estimated latency = hops x local queue occupancy (the paper samples 4
intermediates and predicts latency from local buffer occupancy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.routing.base import Router, route_path

__all__ = [
    "valiant_path",
    "UgalDecision",
    "UgalPolicy",
]


def valiant_path(router: Router, src: int, dest: int, intermediate: int) -> list[int]:
    """Minimal path src -> intermediate -> dest (duplicate joint removed)."""
    first = route_path(router, src, intermediate)
    second = route_path(router, intermediate, dest)
    return first + second[1:]


@dataclass
class UgalDecision:
    """Outcome of a UGAL choice for one packet."""

    minimal: bool
    intermediate: int | None
    est_cost: float


class UgalPolicy:
    """UGAL-L source routing decision.

    ``queue_fn(router, next_hop)`` must return the local congestion estimate
    for the output port of *router* toward *next_hop* (e.g. buffer occupancy
    in the cycle simulator, or 0 for an uncongested probe).
    """

    def __init__(
        self,
        router: Router,
        samples: int = 4,
        seed: int = 0,
        bias: float = 1.0,
        metrics: MetricsRegistry | None = None,
    ):
        self.router = router
        self.samples = samples
        self.rng = np.random.default_rng(seed)
        self.bias = bias  # multiplicative preference for minimal paths
        # Decision counters resolve against the ambient registry unless an
        # explicit one is given; a disabled registry hands back null
        # instruments, so the per-choice cost is one no-op call.
        reg = metrics if metrics is not None else obs.get_registry()
        self._decisions = reg.counter(
            "routing.ugal.decisions",
            help="UGAL path choices by outcome (minimal vs Valiant detour)",
            labels=("choice",),
        )

    def choose(
        self,
        src: int,
        dest: int,
        queue_fn: Callable[[int, int], float],
    ) -> UgalDecision:
        """Pick minimal vs. one of ``samples`` random Valiant intermediates."""
        n = self.router.graph.n
        min_hops = self.router.distance(src, dest)
        min_next = self.router.next_hop(src, dest) if src != dest else src
        best = UgalDecision(
            minimal=True,
            intermediate=None,
            est_cost=self.bias * min_hops * (1.0 + queue_fn(src, min_next)),
        )
        for _ in range(self.samples):
            mid = int(self.rng.integers(0, n))
            if mid in (src, dest):
                continue
            hops = self.router.distance(src, mid) + self.router.distance(mid, dest)
            nxt = self.router.next_hop(src, mid)
            cost = hops * (1.0 + queue_fn(src, nxt))
            if cost < best.est_cost:
                best = UgalDecision(minimal=False, intermediate=mid, est_cost=cost)
        self._decisions.labels(
            choice="minimal" if best.minimal else "nonminimal"
        ).inc()
        return best
