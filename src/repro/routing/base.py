"""Router interface.

A router answers one question: *from router u, heading to router t, which
neighbors lie on a minimal path?*  Everything else (adaptive choices,
Valiant detours, simulation mechanics) composes on top of this.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator, Sequence
from typing import overload

import numpy as np

from repro.graphs.base import Graph

__all__ = [
    "HopView",
    "Router",
    "route_path",
]


class HopView(Sequence[int]):
    """Zero-copy sequence view over a NumPy array of next-hop candidates.

    Routers hand back next-hop sets as array slices; this adapter gives
    those slices ``list``-like semantics (iteration yields Python ``int``,
    ``==`` compares element-wise against any sequence, emptiness is a plain
    ``bool``) without materializing a list per query.  Vectorized consumers
    can grab the underlying array via :meth:`to_array`.
    """

    __slots__ = ("_arr",)

    def __init__(self, arr: np.ndarray) -> None:
        self._arr = arr

    def __len__(self) -> int:
        return int(self._arr.shape[0])

    def __bool__(self) -> bool:
        return self._arr.shape[0] > 0

    @overload
    def __getitem__(self, index: int) -> int: ...

    @overload
    def __getitem__(self, index: slice) -> "HopView": ...

    def __getitem__(self, index: int | slice) -> "int | HopView":
        if isinstance(index, slice):
            return HopView(self._arr[index])
        return int(self._arr[index])

    def __iter__(self) -> Iterator[int]:
        return (int(v) for v in self._arr)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, HopView):
            return bool(np.array_equal(self._arr, other._arr))
        if isinstance(other, (list, tuple)):
            return len(other) == len(self) and all(
                int(a) == b for a, b in zip(self._arr, other)
            )
        if isinstance(other, np.ndarray):
            return bool(np.array_equal(self._arr, other))
        return NotImplemented  # type: ignore[return-value]

    def __repr__(self) -> str:
        return f"HopView({self._arr.tolist()!r})"

    def to_array(self) -> np.ndarray:
        """The underlying candidate array (do not mutate)."""
        return self._arr

    __hash__ = None  # type: ignore[assignment]


class Router(ABC):
    """Destination-based minimal routing policy for one graph."""

    graph: Graph

    @abstractmethod
    def next_hops(self, current: int, dest: int) -> Sequence[int]:
        """All neighbors of *current* on minimal paths to *dest*.

        Must be empty iff ``current == dest`` or *dest* unreachable.
        Implementations may return a ``list`` or a :class:`HopView`; both
        compare equal to lists and are falsy when empty.
        """

    @abstractmethod
    def distance(self, current: int, dest: int) -> int:
        """Minimal-path length from *current* to *dest* under this policy.

        For exact-minimal routers this is the graph distance; analytic
        schemes may exceed it on corner cases only if documented.
        """

    def next_hop(self, current: int, dest: int) -> int:
        """A single deterministic minimal next hop (first candidate)."""
        hops = self.next_hops(current, dest)
        if not hops:
            raise ValueError(f"no next hop from {current} to {dest}")
        return int(hops[0])


def route_path(router: Router, src: int, dest: int, max_hops: int = 64) -> list[int]:
    """Follow ``router.next_hop`` from *src* to *dest*; returns the vertex
    sequence including both endpoints.  Guards against routing loops."""
    path = [src]
    cur = src
    while cur != dest:
        if len(path) > max_hops:
            raise RuntimeError(
                f"routing loop: no progress from {src} to {dest} within {max_hops} hops"
            )
        cur = router.next_hop(cur, dest)
        path.append(cur)
    return path
