"""Router interface.

A router answers one question: *from router u, heading to router t, which
neighbors lie on a minimal path?*  Everything else (adaptive choices,
Valiant detours, simulation mechanics) composes on top of this.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.graphs.base import Graph

__all__ = [
    "Router",
    "route_path",
]


class Router(ABC):
    """Destination-based minimal routing policy for one graph."""

    graph: Graph

    @abstractmethod
    def next_hops(self, current: int, dest: int) -> list[int]:
        """All neighbors of *current* on minimal paths to *dest*.

        Must return ``[]`` iff ``current == dest`` or *dest* unreachable.
        """

    @abstractmethod
    def distance(self, current: int, dest: int) -> int:
        """Minimal-path length from *current* to *dest* under this policy.

        For exact-minimal routers this is the graph distance; analytic
        schemes may exceed it on corner cases only if documented.
        """

    def next_hop(self, current: int, dest: int) -> int:
        """A single deterministic minimal next hop (first candidate)."""
        hops = self.next_hops(current, dest)
        if not hops:
            raise ValueError(f"no next hop from {current} to {dest}")
        return hops[0]


def route_path(router: Router, src: int, dest: int, max_hops: int = 64) -> list[int]:
    """Follow ``router.next_hop`` from *src* to *dest*; returns the vertex
    sequence including both endpoints.  Guards against routing loops."""
    path = [src]
    cur = src
    while cur != dest:
        if len(path) > max_hops:
            raise RuntimeError(
                f"routing loop: no progress from {src} to {dest} within {max_hops} hops"
            )
        cur = router.next_hop(cur, dest)
        path.append(cur)
    return path
