"""The runtime's own chaos experiment: trials that misbehave on purpose.

``repro run chaos`` plans ``trials`` deterministic work units (a seeded
integer reduction each) and lets ``modes`` assign a failure behavior per
trial index, so tests and the CI smoke job can prove every supervision
path — retry, backoff, crash recovery, watchdog, degradation, quarantine —
against *scheduled* faults instead of flaky timing tricks:

========== =============================================================
mode        behavior
========== =============================================================
``ok``      compute and return (the default)
``slow``    sleep ``sleep`` seconds first (interrupt/kill windows)
``fail``    raise for the first ``fail_attempts`` attempts, then succeed
``crash``   SIGKILL the worker process for the first ``fail_attempts``
            attempts (a worker dies mid-trial; supervisor must replace it)
``stop``    SIGSTOP the worker (heartbeat goes stale; the hung-worker
            watchdog must kill + retry); first ``fail_attempts`` attempts
``hang``    sleep far past any sane per-trial timeout, every attempt
``hang_packet``  hang only at ``packet`` fidelity — succeeds after the
            supervisor degrades the trial to ``flow``
========== =============================================================

Chaos trials declare ``packet`` fidelity so the degradation ladder is
exercisable; the computed value folds the fidelity in, making a degraded
result visibly (and deterministically) different.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np

from repro.experiments.common import format_table

__all__ = [
    "MODES",
    "TRIAL_FIDELITY",
    "plan_trials",
    "run_trial",
    "merge_trials",
    "format_figure",
]

MODES = ("ok", "slow", "fail", "crash", "stop", "hang", "hang_packet")

TRIAL_FIDELITY = "packet"

#: "Forever" for hanging modes — any per-trial timeout fires first.
_HANG_SECONDS = 3600.0


def plan_trials(opts: dict) -> list[dict]:
    """One trial per index; ``modes`` maps index (as a string) to a mode."""
    n = int(opts.get("trials", 4))
    if n < 1:
        raise ValueError("chaos needs trials >= 1")
    modes = dict(opts.get("modes", {}))
    fail_attempts = int(opts.get("fail_attempts", 1))
    sleep = float(opts.get("sleep", 1.0))
    seed = int(opts.get("seed", 0))
    out = []
    for i in range(n):
        mode = str(modes.get(str(i), "ok"))
        if mode not in MODES:
            raise ValueError(f"unknown chaos mode {mode!r}; options: {MODES}")
        params = {"index": i, "mode": mode, "seed": seed}
        if mode in ("fail", "crash", "stop"):
            params["fail_attempts"] = fail_attempts
        if mode == "slow":
            params["sleep"] = sleep
        out.append(params)
    return out


def _compute(index: int, seed: int, fidelity: str) -> int:
    rng = np.random.default_rng([seed, index])
    value = int(rng.integers(0, 1_000_000, size=64).sum())
    # Fold the fidelity in so a degraded result is distinguishable.
    return value + (1 if fidelity == "flow" else 0)


def run_trial(params: dict, fidelity: str = "packet", attempt: int = 1) -> dict:
    """Execute one chaos trial (worker side; may never return, on purpose)."""
    mode = params.get("mode", "ok")
    fail_attempts = int(params.get("fail_attempts", 1))
    if mode == "slow":
        time.sleep(float(params.get("sleep", 1.0)))
    elif mode == "fail" and attempt <= fail_attempts:
        raise RuntimeError(
            f"chaos: scheduled failure (attempt {attempt}/{fail_attempts})"
        )
    elif mode == "crash" and attempt <= fail_attempts:
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "stop" and attempt <= fail_attempts:
        os.kill(os.getpid(), signal.SIGSTOP)
    elif mode == "hang" or (mode == "hang_packet" and fidelity == "packet"):
        time.sleep(_HANG_SECONDS)
    return {
        "index": int(params["index"]),
        "value": _compute(int(params["index"]), int(params.get("seed", 0)), fidelity),
        "fidelity": fidelity,
    }


def merge_trials(opts: dict, outcomes: list[dict]) -> dict:
    """Fold outcomes into rows (quarantined/pending trials stay visible)."""
    rows = []
    for o in outcomes:
        row = {"index": o["params"]["index"], "mode": o["params"].get("mode", "ok"),
               "status": o["status"]}
        if o["status"] == "done" and o["result"] is not None:
            row["value"] = o["result"]["value"]
            row["fidelity"] = o["result"].get("fidelity", o.get("fidelity"))
        rows.append(row)
    return {"rows": rows}


def format_figure(result: dict) -> str:
    """Render the chaos outcome table."""
    headers = ["index", "mode", "status", "fidelity", "value"]
    rows = [
        [
            r["index"],
            r["mode"],
            r["status"],
            r.get("fidelity", "-"),
            r.get("value", "-"),
        ]
        for r in result["rows"]
    ]
    return format_table(headers, rows)
