"""``repro.runtime`` — the crash-safe, resumable experiment runtime.

Experiments decompose into deterministic, content-addressed *trials*
(:mod:`repro.runtime.plan`) that execute on a supervised spawn-based
worker pool (:mod:`repro.runtime.pool`, :mod:`repro.runtime.supervisor`)
with per-trial wall-clock timeouts, exponential-backoff retries with
seeded jitter, a hung-worker heartbeat watchdog, graceful packet→flow
fidelity degradation, and quarantine of persistently failing trials.
Every finished trial is checkpointed into an append-only JSONL journal
(:mod:`repro.runtime.journal`), so ``repro run <experiment> --resume``
skips completed work and reproduces the uninterrupted run byte-for-byte.

See ``docs/RUNTIME.md`` for the trial model, journal format,
retry/quarantine semantics, the degradation ladder and the resume
contract.  Lint rule RL108 confines process-spawning primitives to this
package.
"""

from repro.runtime.crashpoints import CrashPointReport, explore as explore_crashpoints
from repro.runtime.journal import (
    Journal,
    JournalError,
    JournalWriteError,
    atomic_write_text,
    completed_trials,
    load_records,
    run_headers,
)
from repro.runtime.plan import (
    DEGRADE_LADDER,
    PLANNED_EXPERIMENTS,
    Plan,
    TrialSpec,
    build_plan,
    execute_trial,
    experiment_module,
)
from repro.runtime.procmgr import ManagedProcess
from repro.runtime.supervisor import (
    PoolConfig,
    RunInterrupted,
    RunInterruptedWithReport,
    RunReport,
    Supervisor,
    TrialOutcome,
    run_plan,
    runs_root,
)

__all__ = [
    "CrashPointReport",
    "DEGRADE_LADDER",
    "Journal",
    "JournalError",
    "JournalWriteError",
    "ManagedProcess",
    "PLANNED_EXPERIMENTS",
    "Plan",
    "PoolConfig",
    "RunInterrupted",
    "RunInterruptedWithReport",
    "RunReport",
    "Supervisor",
    "TrialOutcome",
    "TrialSpec",
    "atomic_write_text",
    "build_plan",
    "completed_trials",
    "execute_trial",
    "experiment_module",
    "explore_crashpoints",
    "load_records",
    "run_headers",
    "run_plan",
    "runs_root",
]
