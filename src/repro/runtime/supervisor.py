"""The crash-safe trial supervisor: scheduling, retries, quarantine, resume.

:func:`run_plan` is the front door: given a :class:`~repro.runtime.plan.Plan`
and a journal path it replays completed trials from the journal, schedules
the remainder onto a spawn-based worker pool, and returns a
:class:`RunReport` whose outcomes (in plan order) are what
``merge_trials`` folds back into the experiment result.

Failure policy, per trial:

* a worker **error** (exception), **crash** (process death — SIGKILL, OOM),
  **timeout** (wall-clock budget exceeded) or **hang** (heartbeat stopped)
  consumes one attempt; the trial is re-queued after an exponential
  backoff with seeded jitter, and the dead/poisoned worker is replaced;
* a dispatch that never reports start (a live worker stuck because a
  crashed sibling poisoned the shared result queue's write lock) does
  *not* consume an attempt: the whole pool — workers and queue — is
  rebuilt (at most :data:`MAX_POOL_RESETS` times per run) and every
  in-flight trial is re-queued;
* after ``degrade_after`` timeout-class failures a trial whose fidelity
  has a lower rung (``packet`` → ``flow``) is *degraded* rather than
  retried at full cost — the downgrade is journaled and stamped into the
  result;
* after ``retries + 1`` total attempts the trial is **quarantined**: the
  sweep keeps going and the report lists the poisoned trial explicitly
  instead of hanging or crashing the harness.

Signal policy (the CLI contract): the first SIGINT/SIGTERM stops
dispatching, flushes the journal, tears the pool down and raises
:class:`RunInterrupted` (the CLI exits non-zero with a ``--resume`` hint);
a second signal hard-kills the process immediately.

Observability: ``runtime.trials{status}``, ``runtime.retries{cause}`` and
``runtime.worker.restarts`` counters, a ``runtime.heartbeat.age`` gauge
(high-water mark) and a ``runtime.trial.duration`` histogram land in the
ambient :mod:`repro.obs` registry; the run's resume lineage and per-trial
attempt history go into the manifest via :meth:`RunReport.manifest_info`.
"""

from __future__ import annotations

import heapq
import logging
import multiprocessing
import os
import queue
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro import obs
from repro.faults.io import DiskIo
from repro.runtime import journal as journal_mod
from repro.runtime.plan import DEGRADE_LADDER, Plan, TrialSpec
from repro.runtime.pool import (
    MSG_DONE,
    MSG_ERROR,
    MSG_START,
    WorkerHandle,
    spawn_worker,
)

__all__ = [
    "PoolConfig",
    "RunInterrupted",
    "RunInterruptedWithReport",
    "RunReport",
    "Supervisor",
    "TrialOutcome",
    "run_plan",
    "runs_root",
]

logger = logging.getLogger(__name__)

#: How many times one run may rebuild the whole pool (workers + result
#: queue) before a startup stall is treated as an ordinary trial failure.
MAX_POOL_RESETS = 3


class RunInterrupted(RuntimeError):
    """The run was stopped by SIGINT/SIGTERM after a clean journal flush."""


class _DegradingJournal:
    """Journal wrapper that turns write failures into a memory-only run.

    The journal is an *optimization* (resume) layered on a run that is
    otherwise pure compute — so a full disk mid-run (ENOSPC, EIO) must
    not kill hours of work.  The first :class:`~repro.runtime.journal.
    JournalWriteError` flips ``degraded``: the failure is logged and
    counted (``runtime.journal.degraded``), every later append becomes a
    no-op (no point hammering a dead disk once per trial), the run
    finishes on in-memory state alone, and the report carries
    ``journal_degraded=True`` so the CLI can warn that *this* run cannot
    be resumed.
    """

    def __init__(self, journal: journal_mod.Journal) -> None:
        self._journal = journal
        self.degraded = False

    @property
    def path(self) -> Path:
        return self._journal.path

    def append(self, record: dict) -> None:
        if self.degraded:
            return
        try:
            self._journal.append(record)
        except journal_mod.JournalWriteError as exc:
            self.degraded = True
            obs.get_registry().counter(
                "runtime.journal.degraded",
                help="runs whose journal hit an I/O error and continued "
                "memory-only (not resumable)",
            ).inc()
            logger.error(
                "runtime: %s — continuing without checkpoints; this run "
                "cannot be resumed", exc,
            )


def runs_root() -> Path:
    """Directory journals default into: ``$REPRO_RUNS_DIR``, else a ``runs/``
    subdirectory of the artifact-store root, else ``~/.cache/repro-runs``."""
    from repro.store import default_root

    explicit = os.environ.get("REPRO_RUNS_DIR")
    if explicit:
        return Path(explicit)
    store_root = default_root()
    if store_root is not None:
        return store_root / "runs"
    return Path.home() / ".cache" / "repro-runs"


@dataclass
class PoolConfig:
    """Supervisor knobs (CLI flags map one-to-one onto these)."""

    jobs: int = 1
    timeout: float = 300.0  # per-trial wall-clock budget, seconds (0 = none)
    retries: int = 3  # extra attempts after the first
    backoff_base: float = 0.5  # seconds; doubles per failure
    backoff_cap: float = 30.0
    degrade_after: int = 2  # timeout-class failures before degrading
    heartbeat_interval: float = 0.5
    watchdog_grace: float = 15.0  # stale-heartbeat threshold, seconds
    seed: int = 0  # jitter seed (mixed with trial digest + attempt)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")


@dataclass
class TrialOutcome:
    """Final state of one planned trial after the run."""

    digest: str
    params: dict
    status: str  # "done" | "quarantined" | "pending"
    result: dict | None = None
    fidelity: str = "flow"
    attempts: int = 0
    skipped: bool = False  # replayed from the journal, not executed
    degraded: bool = False
    error: str | None = None
    history: list[dict] = field(default_factory=list)


@dataclass
class RunReport:
    """Everything a driver needs after :func:`run_plan` returns."""

    experiment: str
    plan_digest: str
    generation: int
    outcomes: list[TrialOutcome]
    retries: int = 0
    worker_restarts: int = 0
    pool_resets: int = 0
    interrupted: bool = False
    journal_degraded: bool = False  # journal lost to I/O error; not resumable

    def counts(self) -> dict[str, int]:
        c = {"total": len(self.outcomes), "done": 0, "quarantined": 0,
             "pending": 0, "skipped": 0, "degraded": 0}
        for o in self.outcomes:
            c[o.status] += 1
            if o.skipped:
                c["skipped"] += 1
            if o.degraded:
                c["degraded"] += 1
        return c

    def merge_outcomes(self) -> list[dict]:
        """Plan-order outcome dicts in the shape ``merge_trials`` consumes."""
        return [
            {
                "params": o.params,
                "status": o.status,
                "result": o.result,
                "fidelity": o.fidelity,
            }
            for o in self.outcomes
        ]

    def manifest_info(self) -> dict:
        """Resume lineage + per-trial attempt history for the RunManifest."""
        return {
            "experiment": self.experiment,
            "plan": self.plan_digest,
            "generation": self.generation,
            "counts": self.counts(),
            "retries": self.retries,
            "worker_restarts": self.worker_restarts,
            "pool_resets": self.pool_resets,
            "interrupted": self.interrupted,
            "journal_degraded": self.journal_degraded,
            "trials": {
                o.digest[:16]: {
                    "status": o.status,
                    "attempts": o.attempts,
                    "skipped": o.skipped,
                    "fidelity": o.fidelity,
                    "degraded": o.degraded,
                    "error": o.error,
                    "history": o.history,
                }
                for o in self.outcomes
            },
        }


class _TrialState:
    """Supervisor-internal mutable execution state for one trial."""

    __slots__ = ("spec", "attempts", "timeout_failures", "fidelity", "degraded",
                 "last_error", "history")

    def __init__(self, spec: TrialSpec) -> None:
        self.spec = spec
        self.attempts = 0
        self.timeout_failures = 0
        self.fidelity = spec.fidelity
        self.degraded = False
        self.last_error: str | None = None
        self.history: list[dict] = []


class Supervisor:
    """Runs one plan's pending trials on a supervised worker pool."""

    def __init__(
        self,
        plan: Plan,
        journal: journal_mod.Journal | _DegradingJournal,
        config: PoolConfig,
    ) -> None:
        self.plan = plan
        self.journal = journal
        self.config = config
        self._ctx = multiprocessing.get_context("spawn")
        self._result_q: Any = self._ctx.Queue()
        self._workers: dict[int, WorkerHandle] = {}
        self._next_worker_id = 0
        self._stop_signals = 0
        self._prev_handlers: dict[int, Any] = {}
        self.retries = 0
        self.worker_restarts = 0
        self.pool_resets = 0

    # -- observability -------------------------------------------------------

    def _count_trial(self, status: str) -> None:
        obs.get_registry().counter(
            "runtime.trials",
            help="supervised trials by terminal status",
            labels=("status",),
        ).labels(status=status).inc()

    def _count_retry(self, cause: str) -> None:
        obs.get_registry().counter(
            "runtime.retries",
            help="trial retries by failure cause",
            labels=("cause",),
        ).labels(cause=cause).inc()
        self.retries += 1

    def _count_restart(self) -> None:
        obs.get_registry().counter(
            "runtime.worker.restarts",
            help="worker processes killed and replaced by the supervisor",
        ).inc()
        self.worker_restarts += 1

    def _observe_duration(self, seconds: float) -> None:
        obs.get_registry().histogram(
            "runtime.trial.duration",
            help="wall-clock seconds per successful trial attempt",
            bounds=obs.exponential_buckets(0.05, 2.0, 16),
        ).observe(seconds)

    def _gauge_heartbeat(self, age: float) -> None:
        obs.get_registry().gauge(
            "runtime.heartbeat.age",
            help="oldest observed worker heartbeat age (high-water mark)",
        ).set_max(age)

    # -- signals -------------------------------------------------------------

    def _install_signals(self) -> None:
        def handler(signum: int, frame: Any) -> None:
            self._stop_signals += 1
            if self._stop_signals >= 2:
                os._exit(128 + signum)  # second signal: hard kill, no cleanup

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._prev_handlers[signum] = signal.signal(signum, handler)
            except ValueError:
                pass  # not the main thread (embedded/test use) — skip

    def _restore_signals(self) -> None:
        for signum, prev in self._prev_handlers.items():
            try:
                signal.signal(signum, prev)
            except ValueError:
                pass
        self._prev_handlers.clear()

    # -- workers -------------------------------------------------------------

    def _spawn(self) -> WorkerHandle:
        self._next_worker_id += 1
        w = spawn_worker(
            self._next_worker_id,
            self._result_q,
            ctx=self._ctx,
            heartbeat_interval=self.config.heartbeat_interval,
        )
        self._workers[w.worker_id] = w
        return w

    def _replace(self, worker: WorkerHandle) -> None:
        worker.kill()
        self._workers.pop(worker.worker_id, None)
        self._count_restart()
        self._spawn()

    def _teardown(self) -> None:
        for w in list(self._workers.values()):
            w.shutdown()
        self._workers.clear()

    def _reset_pool(
        self,
        states: dict[str, _TrialState],
        in_flight: dict[str, WorkerHandle],
        pending_heap: list[tuple[float, str]],
    ) -> None:
        """Rebuild every worker *and* the shared result queue.

        A worker SIGKILLed mid-``put`` can die while its queue feeder
        thread holds the result queue's shared write lock; from then on
        every message from every worker blocks forever, so replacing
        individual workers cannot recover.  The observable symptom is a
        startup stall: a live, beating worker whose assigned trial never
        reports MSG_START.  Requeue all in-flight trials without
        consuming an attempt — none of them produced a trustworthy
        result — and respawn the pool on a fresh queue.
        """
        lost = sorted(in_flight)
        for digest in lost:
            states[digest].attempts -= 1  # dispatch rolled back, not failed
            heapq.heappush(pending_heap, (time.monotonic(), digest))
        in_flight.clear()
        respawn = max(1, len(self._workers))
        for w in list(self._workers.values()):
            w.kill()
            self._count_restart()
        self._workers.clear()
        try:
            self._result_q.close()
        except (OSError, ValueError):
            pass
        self._result_q = self._ctx.Queue()
        self.pool_resets += 1
        obs.get_registry().counter(
            "runtime.pool.resets",
            help="full pool rebuilds after a suspected poisoned result queue",
        ).inc()
        self.journal.append(
            {
                "type": "pool_reset",
                "reset": self.pool_resets,
                "requeued": [d[:16] for d in lost],
            }
        )
        logger.warning(
            "runtime: pool reset #%d — result queue suspected poisoned; "
            "requeued %d in-flight trial(s)", self.pool_resets, len(lost),
        )
        for _ in range(respawn):
            self._spawn()

    # -- retry / quarantine policy ------------------------------------------

    def _jitter(self, digest: str, attempt: int) -> float:
        rng = np.random.default_rng(
            [self.config.seed, attempt, int(digest[:12], 16)]
        )
        return float(rng.uniform(0.0, 0.25))

    def _backoff(self, digest: str, attempt: int) -> float:
        base = self.config.backoff_base * (2.0 ** max(0, attempt - 1))
        return min(self.config.backoff_cap, base) * (1.0 + self._jitter(digest, attempt))

    def _handle_failure(
        self,
        state: _TrialState,
        cause: str,
        error: str,
        pending_heap: list[tuple[float, str]],
        quarantined: dict[str, _TrialState],
    ) -> None:
        """One attempt failed; decide retry / degrade / quarantine."""
        digest = state.spec.digest
        state.last_error = error
        state.history.append(
            {"attempt": state.attempts, "status": cause, "fidelity": state.fidelity}
        )
        if cause in ("timeout", "hung"):
            state.timeout_failures += 1
            lower = DEGRADE_LADDER.get(state.fidelity)
            if state.timeout_failures >= self.config.degrade_after and lower:
                state.fidelity = lower
                state.degraded = True
                state.timeout_failures = 0
                self.journal.append(
                    {
                        "type": "degrade",
                        "trial": digest,
                        "fidelity": lower,
                        "after_attempt": state.attempts,
                    }
                )
                logger.warning(
                    "runtime: trial %s degraded to %s fidelity after repeated "
                    "timeouts", digest[:12], lower,
                )
        if state.attempts > self.config.retries:
            self.journal.append(
                {
                    "type": "trial",
                    "trial": digest,
                    "status": "quarantined",
                    "attempt": state.attempts,
                    "cause": cause,
                    "error": error,
                }
            )
            self._count_trial("quarantined")
            quarantined[digest] = state
            logger.error(
                "runtime: trial %s quarantined after %d attempts (%s: %s)",
                digest[:12], state.attempts, cause, error,
            )
            return
        delay = self._backoff(digest, state.attempts)
        self.journal.append(
            {
                "type": "retry",
                "trial": digest,
                "attempt": state.attempts,
                "cause": cause,
                "delay": round(delay, 3),
            }
        )
        self._count_retry(cause)
        heapq.heappush(pending_heap, (time.monotonic() + delay, digest))

    # -- main loop -----------------------------------------------------------

    def run(
        self, pending: list[_TrialState]
    ) -> tuple[dict[str, dict], dict[str, _TrialState]]:
        """Execute *pending* trials; returns ``(done, quarantined)`` maps.

        ``done`` maps trial digest to the journaled ``done`` record written
        for it this run; ``quarantined`` maps digest to its final state.
        Raises :class:`RunInterrupted` on the first SIGINT/SIGTERM (after
        flushing the journal and tearing down the pool).
        """
        states = {s.spec.digest: s for s in pending}
        # (ready_at, digest) heap; plan order seeds the initial ordering.
        pending_heap: list[tuple[float, str]] = [
            (0.0, s.spec.digest) for s in pending
        ]
        heapq.heapify(pending_heap)
        in_flight: dict[str, WorkerHandle] = {}
        done: dict[str, dict] = {}
        quarantined: dict[str, _TrialState] = {}

        if not states:
            return done, quarantined

        self._install_signals()
        try:
            target_workers = min(self.config.jobs, len(states))
            for _ in range(target_workers):
                self._spawn()

            while len(done) + len(quarantined) < len(states):
                if self._stop_signals:
                    raise RunInterrupted()
                now = time.monotonic()

                # Dispatch ready trials onto idle workers.
                idle = [w for w in self._workers.values()
                        if w.busy_digest is None and w.alive()]
                while idle and pending_heap and pending_heap[0][0] <= now:
                    _, digest = heapq.heappop(pending_heap)
                    if digest in done or digest in quarantined:
                        continue  # a late result landed while this retry waited
                    if digest in in_flight:
                        continue  # already assigned; a duplicate retry entry
                    state = states[digest]
                    state.attempts += 1
                    worker = idle.pop()
                    worker.assign(
                        state.spec.to_wire(
                            fidelity=state.fidelity, attempt=state.attempts
                        ),
                        self.config.timeout,
                    )
                    in_flight[digest] = worker

                self._drain_results(states, in_flight, done, quarantined,
                                    pending_heap)
                self._police_workers(states, in_flight, pending_heap,
                                     quarantined)
        finally:
            self._restore_signals()
            self._teardown()
        return done, quarantined

    def _drain_results(
        self,
        states: dict[str, _TrialState],
        in_flight: dict[str, WorkerHandle],
        done: dict[str, dict],
        quarantined: dict[str, _TrialState],
        pending_heap: list[tuple[float, str]],
    ) -> None:
        """Pull every available worker message (blocking briefly for one)."""
        block = True
        while True:
            try:
                msg = self._result_q.get(timeout=0.05 if block else 0.0)
            except queue.Empty:
                return
            except (OSError, EOFError) as exc:
                # A worker killed mid-put can poison its end of the pipe;
                # the watchdog/crash path re-queues whatever it was running.
                logger.warning("runtime: result queue hiccup: %s", exc)
                return
            block = False
            kind = msg[0]
            if kind == MSG_START:
                worker = self._workers.get(msg[1])
                if worker is not None and worker.busy_digest == msg[2]:
                    worker.mark_started()  # arm the wall-clock deadline
                continue
            _, worker_id, digest = msg[0], msg[1], msg[2]
            worker = self._workers.get(worker_id)
            state = states.get(digest)
            if state is None or digest in done or digest in quarantined:
                continue  # stale message from a superseded attempt
            if worker is not None and worker.busy_digest == digest:
                if kind == MSG_DONE:
                    self._observe_duration(
                        max(
                            0.0,
                            time.monotonic()
                            - (worker.started_at or worker.assigned_at),
                        )
                    )
                worker.release()
            in_flight.pop(digest, None)
            if kind == MSG_DONE:
                record = {
                    "type": "trial",
                    "trial": digest,
                    "status": "done",
                    "attempt": state.attempts,
                    "fidelity": state.fidelity,
                    "degraded": state.degraded,
                    "params": state.spec.params,
                    "result": msg[3],
                }
                self.journal.append(record)
                self._count_trial("done")
                state.history.append(
                    {"attempt": state.attempts, "status": "done",
                     "fidelity": state.fidelity}
                )
                done[digest] = record
            elif kind == MSG_ERROR:
                self._handle_failure(
                    state, "error", msg[3], pending_heap, quarantined
                )

    def _police_workers(
        self,
        states: dict[str, _TrialState],
        in_flight: dict[str, WorkerHandle],
        pending_heap: list[tuple[float, str]],
        quarantined: dict[str, _TrialState],
    ) -> None:
        """Detect timeouts, hangs and crashes; kill + replace + re-queue."""
        now = time.monotonic()
        for worker in list(self._workers.values()):
            age = worker.heartbeat_age()
            self._gauge_heartbeat(age)
            digest = worker.busy_digest
            cause: str | None = None
            startup_stall = False
            if digest is not None:
                startup_stall = (
                    worker.started_at == 0.0
                    and now - worker.assigned_at > self.config.watchdog_grace
                )
                if not worker.alive():
                    cause = "crash"
                elif now > worker.deadline:
                    cause = "timeout"
                elif age > self.config.watchdog_grace:
                    cause = "hung"
                elif startup_stall:
                    # A live worker whose assigned trial never reported
                    # MSG_START has no armed deadline and (its heartbeat
                    # thread still beating) never goes stale — without
                    # this clause a message lost to a poisoned result
                    # queue would leave the pool waiting forever.
                    if self.pool_resets < MAX_POOL_RESETS:
                        self._reset_pool(states, in_flight, pending_heap)
                        return  # pool rebuilt; this iteration is stale
                    cause = "hung"
            elif not worker.alive():
                # Idle worker died (shouldn't happen) — just replace it.
                self._replace(worker)
                continue
            if cause is None or digest is None:
                continue
            state = states[digest]
            in_flight.pop(digest, None)
            self._replace(worker)
            detail = {
                "crash": "worker process died mid-trial",
                "timeout": f"exceeded {self.config.timeout:.1f}s wall budget",
                "hung": (
                    f"assigned trial never started within "
                    f"{self.config.watchdog_grace:.1f}s "
                    f"(after {MAX_POOL_RESETS} pool resets)"
                    if startup_stall and age <= self.config.watchdog_grace
                    else f"worker heartbeat stale for {age:.1f}s"
                ),
            }[cause]
            self._handle_failure(state, cause, detail, pending_heap, quarantined)


def _check_plan_match(header: dict, plan: Plan) -> None:
    if header.get("plan") != plan.digest:
        raise journal_mod.JournalError(
            f"journal belongs to plan {header.get('plan', '?')[:12]} "
            f"({header.get('experiment')}), not {plan.digest[:12]} "
            f"({plan.experiment}); use a fresh --journal path"
        )


def run_plan(
    plan: Plan,
    journal_path: str | Path,
    config: PoolConfig | None = None,
    resume: bool = False,
    io: DiskIo | None = None,
) -> RunReport:
    """Execute *plan* under supervision, checkpointing into *journal_path*.

    With ``resume=False`` the journal must not already contain trial
    records (refusing to silently mix two runs); with ``resume=True``
    completed trials are replayed from the journal and only the remainder
    executes.  Returns the :class:`RunReport`; raises
    :class:`RunInterrupted` on first-signal shutdown.

    *io* is the journal's OS-call seam (fault-injection tests pass a
    :class:`repro.faults.io.FaultyIo`).  A journal append the disk
    refuses does **not** kill the run: the supervisor degrades to a
    memory-only run and stamps ``journal_degraded`` into the report.
    """
    config = config or PoolConfig()
    records = journal_mod.load_records(journal_path)
    headers = journal_mod.run_headers(records)
    if headers:
        _check_plan_match(headers[-1], plan)
    completed = journal_mod.completed_trials(records)
    has_trials = any(r.get("type") == "trial" for r in records)
    if has_trials and not resume:
        raise journal_mod.JournalError(
            f"journal {journal_path} already has checkpointed trials; "
            "pass --resume to continue it (or point --journal elsewhere)"
        )

    plan_digests = {s.digest for s in plan.specs}
    completed = {d: rec for d, rec in completed.items() if d in plan_digests}
    pending = [
        _TrialState(s) for s in plan.specs if s.digest not in completed
    ]
    generation = len(headers) + 1

    reg = obs.get_registry()
    for _ in completed:
        reg.counter(
            "runtime.trials",
            help="supervised trials by terminal status",
            labels=("status",),
        ).labels(status="skipped").inc()

    with journal_mod.Journal(journal_path, io=io) as raw_journal:
        journal = _DegradingJournal(raw_journal)
        journal.append(
            {
                "type": "run",
                "experiment": plan.experiment,
                "opts": plan.opts,
                "plan": plan.digest,
                "trials": len(plan.specs),
                "generation": generation,
                "resumed": bool(resume and (completed or has_trials)),
                "skipped": len(completed),
                "jobs": config.jobs,
                "timeout": config.timeout,
                "retries": config.retries,
            }
        )
        supervisor = Supervisor(plan, journal, config)
        interrupted = False
        try:
            done, quarantined = supervisor.run(pending)
        except RunInterrupted:
            interrupted = True
            done, quarantined = {}, {}
            # Re-read this run's own checkpoints so the report is honest
            # about what finished before the signal landed.
            for rec in journal_mod.load_records(journal_path):
                if rec.get("type") == "trial" and rec.get("status") == "done":
                    if rec["trial"] in plan_digests and rec["trial"] not in completed:
                        done[rec["trial"]] = rec
            journal.append(
                {"type": "interrupted", "generation": generation,
                 "done_this_run": len(done)}
            )
        else:
            journal.append(
                {
                    "type": "complete",
                    "generation": generation,
                    "done": len(completed) + len(done),
                    "quarantined": len(quarantined),
                }
            )

    outcomes: list[TrialOutcome] = []
    state_by_digest = {s.spec.digest: s for s in pending}
    for spec in plan.specs:
        digest = spec.digest
        if digest in completed:
            rec = completed[digest]
            outcomes.append(
                TrialOutcome(
                    digest=digest,
                    params=spec.params,
                    status="done",
                    result=rec.get("result"),
                    fidelity=rec.get("fidelity", spec.fidelity),
                    attempts=int(rec.get("attempt", 1)),
                    skipped=True,
                    degraded=bool(rec.get("degraded", False)),
                )
            )
            continue
        state = state_by_digest[digest]
        if digest in done:
            rec = done[digest]
            outcomes.append(
                TrialOutcome(
                    digest=digest,
                    params=spec.params,
                    status="done",
                    result=rec.get("result"),
                    fidelity=rec.get("fidelity", spec.fidelity),
                    attempts=int(rec.get("attempt", 1)),
                    degraded=bool(rec.get("degraded", False)),
                    history=list(state.history),
                )
            )
        elif digest in quarantined:
            outcomes.append(
                TrialOutcome(
                    digest=digest,
                    params=spec.params,
                    status="quarantined",
                    fidelity=state.fidelity,
                    attempts=state.attempts,
                    degraded=state.degraded,
                    error=state.last_error,
                    history=list(state.history),
                )
            )
        else:  # interrupted before this trial finished
            outcomes.append(
                TrialOutcome(
                    digest=digest,
                    params=spec.params,
                    status="pending",
                    fidelity=state.fidelity,
                    attempts=state.attempts,
                    degraded=state.degraded,
                    error=state.last_error,
                    history=list(state.history),
                )
            )

    report = RunReport(
        experiment=plan.experiment,
        plan_digest=plan.digest,
        generation=generation,
        outcomes=outcomes,
        retries=supervisor.retries,
        worker_restarts=supervisor.worker_restarts,
        pool_resets=supervisor.pool_resets,
        interrupted=interrupted,
        journal_degraded=journal.degraded,
    )
    if interrupted:
        raise RunInterruptedWithReport(report)
    return report


class RunInterruptedWithReport(RunInterrupted):
    """Interrupt carrying the partial :class:`RunReport` for the CLI."""

    def __init__(self, report: RunReport) -> None:
        super().__init__("run interrupted by signal; resume with --resume")
        self.report = report
