"""Managed subprocess lifecycle for harnesses that kill and restart.

The chaos harness (:mod:`repro.serve.chaos`) needs to SIGKILL a serving
process mid-burst and bring a replacement up — process-spawning
primitives live in :mod:`repro.runtime` (lint rule RL108), so the
lifecycle wrapper lives here.  :class:`ManagedProcess` is deliberately
protocol-agnostic: it pipes stdout and hands the raw stream back; what
the child prints (ready banners, NDJSON, nothing) is the caller's
business, keeping the runtime layer below the serving layer (RL109).
"""

from __future__ import annotations

import signal
import subprocess
from typing import IO, Mapping, Sequence

__all__ = ["ManagedProcess"]


class ManagedProcess:
    """One supervised child process with piped stdout and kill/restart ops.

    stdout is piped (text mode, line-buffered as far as the OS allows) so
    callers can watch for readiness output; stderr is inherited so crash
    tracebacks land in the supervising terminal/log.  Use as a context
    manager for guaranteed cleanup, or call :meth:`kill`/:meth:`close`
    explicitly when exercising crash paths.
    """

    def __init__(
        self,
        argv: Sequence[str],
        *,
        env: Mapping[str, str] | None = None,
    ) -> None:
        self.argv = list(argv)
        self._proc = subprocess.Popen(  # noqa: S603 - harness-controlled argv
            self.argv,
            stdout=subprocess.PIPE,
            text=True,
            env=dict(env) if env is not None else None,
        )

    @property
    def pid(self) -> int:
        return self._proc.pid

    @property
    def stdout(self) -> IO[str]:
        """The child's piped stdout stream."""
        out = self._proc.stdout
        if out is None:
            raise RuntimeError("child stdout is not piped")
        return out

    def poll(self) -> int | None:
        """Exit code if the child has exited, else ``None``."""
        return self._proc.poll()

    def running(self) -> bool:
        return self._proc.poll() is None

    def send_signal(self, sig: int) -> None:
        """Deliver *sig* to the child (no-op once it has exited)."""
        if self.running():
            self._proc.send_signal(sig)

    def terminate(self) -> None:
        """Ask the child to drain and exit (SIGTERM)."""
        self.send_signal(signal.SIGTERM)

    def kill(self) -> int:
        """SIGKILL the child and reap it; returns the exit code.

        This is the crash injection primitive: no drain, no flushing —
        the child dies mid-whatever-it-was-doing.
        """
        if self.running():
            self._proc.kill()
        return self._proc.wait()

    def wait(self, timeout: float | None = None) -> int:
        """Block until the child exits; returns the exit code.

        Raises :class:`subprocess.TimeoutExpired` when *timeout* lapses.
        """
        return self._proc.wait(timeout=timeout)

    def close(self) -> None:
        """Kill the child if still running and release the stdout pipe."""
        if self.running():
            self._proc.kill()
            self._proc.wait()
        out = self._proc.stdout
        if out is not None:
            out.close()

    def __enter__(self) -> "ManagedProcess":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
