"""Crash-point exploration: prove every durability op recoverable.

``repro faults crashpoints`` answers, by exhaustive construction, the
question the durability layer's docs assert: *is there any instant a
power cut leaves the store or the journal unrecoverable?*

The explorer runs a representative workload — populate the artifact
store with a few arrays, run a journaled trial sweep over them, and
commit a final ``--out`` artifact — once under a recording
:class:`~repro.faults.io.FaultyIo` to enumerate every durability-relevant
I/O operation, then re-runs it once per *(operation, crash mode)* pair
with a scripted :class:`~repro.faults.io.SimulatedCrash` at exactly that
point.  Each crash's durable filesystem state (per the crash-consistency
model in :mod:`repro.faults.io`: ``sync`` = only fsync'd state survives,
``flush`` = the OS flushed everything, ``torn`` = half the in-flight
write landed) is materialized into the sandbox and recovery is verified
against four invariants:

1. **no corrupt serve** — the store never returns a wrong value for any
   artifact; torn/partial entries are detected, deleted, counted
   (``store.corrupt_recovered``) and rebuilt;
2. **gc is safe** — ``gc`` (with temp-file reaping) never removes an
   entry that was cleanly loadable, and leaves no ``.tmp-*`` strays;
3. **resume is exact** — re-running the workload replays every durably
   checkpointed trial (zero re-execution) and produces a final artifact
   byte-identical to the uninterrupted run;
4. **the journal heals** — torn tails are dropped (counted in
   ``journal.recovered_records``) without losing any complete record.

The report (schema ``repro.faults.crashpoints/v1``) is byte-deterministic:
op traces use deterministic temp names, paths are sandbox-relative, and
nothing reads a clock.  CI runs the explorer and fails on any violation
(see the ``crash-consistency`` job).
"""

from __future__ import annotations

import hashlib
import json
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.faults.io import (
    DiskIo,
    FaultyIo,
    IoFault,
    IoOp,
    ScriptedPolicy,
    SimulatedCrash,
)
from repro.runtime.journal import (
    Journal,
    atomic_write_text,
    completed_trials,
    load_records,
)
from repro.store.codecs import ARRAY, get_codec
from repro.store.core import CORRUPT_ERRORS, ArtifactStore
from repro.store.keys import ArtifactKey

__all__ = [
    "CrashPointReport",
    "WorkloadResult",
    "explore",
    "run_workload",
]

SCHEMA = "repro.faults.crashpoints/v1"

#: Workload shape: a handful of artifacts and trials is enough to cover
#: every distinct op pattern (store npz+sidecar commits, journal appends,
#: resume, final artifact) while keeping the point count tractable.
N_ARTIFACTS = 3
N_TRIALS = 4


def _artifact_key(i: int) -> ArtifactKey:
    return ArtifactKey("dist_table", "crashpoints", {"case": i})


def _artifact_value(i: int) -> np.ndarray:
    return (np.arange(24, dtype=np.int32) * (i + 1)).reshape(4, 6)


def _trial_digest(t: int) -> str:
    return hashlib.sha256(f"crashpoints-trial-{t}".encode()).hexdigest()


def _trial_result(t: int, value: np.ndarray) -> dict:
    checksum = hashlib.sha256(value.tobytes() + str(t).encode()).hexdigest()
    return {"trial": t, "artifact": t % N_ARTIFACTS, "checksum": checksum}


@dataclass
class WorkloadResult:
    """What one workload pass did (the explorer compares these)."""

    executed: list[int] = field(default_factory=list)  # trials run this pass
    rebuilt: list[int] = field(default_factory=list)  # artifacts (re)built
    out_bytes: bytes = b""


def run_workload(sandbox: Path, io: DiskIo) -> WorkloadResult:
    """Store populate + journaled sweep + final artifact, through *io*.

    Idempotent by construction: artifacts resolve through the store,
    trials are skipped when the journal already has their ``done``
    record, and the final artifact is derived purely from the journal —
    so running it again after any interruption is exactly ``--resume``.
    """
    result = WorkloadResult()
    store_root = sandbox / "store"
    run_dir = sandbox / "run"
    store_root.mkdir(parents=True, exist_ok=True)
    run_dir.mkdir(parents=True, exist_ok=True)

    store = ArtifactStore(root=store_root, io=io)
    values: dict[int, np.ndarray] = {}
    for i in range(N_ARTIFACTS):
        def build(i: int = i) -> np.ndarray:
            result.rebuilt.append(i)
            return _artifact_value(i)

        values[i] = store.get_or_build(_artifact_key(i), build, ARRAY)

    journal_path = run_dir / "journal.jsonl"
    done = completed_trials(load_records(journal_path))
    with Journal(journal_path, io=io) as journal:
        journal.append(
            {"type": "run", "experiment": "crashpoints", "trials": N_TRIALS}
        )
        for t in range(N_TRIALS):
            digest = _trial_digest(t)
            if digest in done:
                continue
            journal.append(
                {
                    "type": "trial",
                    "trial": digest,
                    "status": "done",
                    "attempt": 1,
                    "result": _trial_result(t, values[t % N_ARTIFACTS]),
                }
            )
            result.executed.append(t)
        journal.append({"type": "complete", "trials": N_TRIALS})

    done = completed_trials(load_records(journal_path))
    out = {
        "schema": "repro.faults.crashpoints.workload/v1",
        "results": {d: rec["result"] for d, rec in sorted(done.items())},
    }
    out_path = sandbox / "out.json"
    atomic_write_text(
        out_path, json.dumps(out, sort_keys=True, indent=1) + "\n", io=io
    )
    result.out_bytes = out_path.read_bytes()
    return result


def _probe_loadable(store_root: Path) -> set[str]:
    """Digests of entries that decode cleanly, *without* mutating the store.

    This is the explorer's read-only twin of ``ArtifactStore._disk_load``
    (which deletes what it cannot read): the pre-gc "live set" that gc
    must never shrink.
    """
    loadable: set[str] = set()
    for meta_path in sorted(store_root.glob("*.json")):
        digest = meta_path.name[: -len(".json")]
        try:
            meta = json.loads(meta_path.read_text())
            codec = get_codec(meta["codec"])
            arrays: dict = {}
            if meta.get("has_arrays"):
                with np.load(
                    store_root / (digest + ".npz"), allow_pickle=False
                ) as npz:
                    arrays = {k: npz[k] for k in npz.files}
            codec.decode(arrays, meta.get("payload", {}))
        except CORRUPT_ERRORS:
            continue
        loadable.add(digest)
    return loadable


def _verify_recovery(
    sandbox: Path, golden: WorkloadResult
) -> tuple[list[str], dict]:
    """Restart "after the crash" and check the four recovery invariants."""
    violations: list[str] = []
    io = DiskIo()
    store_root = sandbox / "store"
    journal_path = sandbox / "run" / "journal.jsonl"

    # Invariant 2: gc never deletes a cleanly loadable entry, and reaps
    # every stray temp file the crash left behind (age 0 = reap all now).
    loadable_before = _probe_loadable(store_root)
    gc_store = ArtifactStore(root=store_root, io=io)
    gc_report = gc_store.gc(reap_tmp_age=0.0)
    for digest in gc_report["removed"]:
        if digest in loadable_before:
            violations.append(f"gc removed live entry {digest[:16]}")
    strays = sorted(p.name for p in store_root.glob(".tmp-*"))
    if strays:
        violations.append(f"stray temp files survived gc: {strays}")

    # Zero re-execution: trials durably checkpointed before the restart
    # must be replayed, never run again.
    durably_done = completed_trials(load_records(journal_path))

    # Invariants 1 + 3: the resumed workload serves only correct artifact
    # values (rebuilding anything corrupt) and converges to the golden
    # final artifact byte-for-byte.
    resumed = run_workload(sandbox, io)
    for t in resumed.executed:
        if _trial_digest(t) in durably_done:
            violations.append(f"re-executed durably checkpointed trial {t}")
    if resumed.out_bytes != golden.out_bytes:
        violations.append("resumed out.json is not byte-identical to golden")

    # Every artifact the resumed pass decoded must be the true value; a
    # wrong value would have poisoned the trial checksums above, but check
    # directly too so the report pins the failure to the store.
    check_store = ArtifactStore(root=store_root, io=io)
    for i in range(N_ARTIFACTS):
        value = check_store.get_or_build(
            _artifact_key(i), lambda i=i: _artifact_value(i), ARRAY
        )
        if not np.array_equal(value, _artifact_value(i)):
            violations.append(f"store served wrong value for artifact {i}")

    # Invariant 4: after recovery the journal must hold one clean done
    # record per trial, each carrying the golden checksum.
    final_done = completed_trials(load_records(journal_path))
    for t in range(N_TRIALS):
        rec = final_done.get(_trial_digest(t))
        if rec is None:
            violations.append(f"trial {t} missing from recovered journal")
        elif rec.get("result", {}).get("checksum") != _trial_result(
            t, _artifact_value(t % N_ARTIFACTS)
        )["checksum"]:
            violations.append(f"trial {t} result drifted after recovery")

    detail = {
        "rebuilt": len(resumed.rebuilt),
        "reexecuted": len(resumed.executed),
        "gc_removed": len(gc_report["removed"]),
        "gc_reaped_tmp": len(gc_report["reaped_tmp"]),
    }
    return violations, detail


@dataclass
class CrashPointReport:
    """The explorer's full result (serialize with :meth:`to_dict`)."""

    ops: int
    crash_points: int
    violations: int
    points: list[dict]

    @property
    def ok(self) -> bool:
        return self.violations == 0

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "workload": {
                "artifacts": N_ARTIFACTS,
                "trials": N_TRIALS,
                "ops": self.ops,
            },
            "crash_points": self.crash_points,
            "violations": self.violations,
            "ok": self.ok,
            "points": self.points,
        }


def _crash_modes(op: IoOp) -> tuple[str, ...]:
    # Every op gets the adversarial minimum ("sync") and the
    # everything-flushed maximum ("flush"); writes additionally get the
    # torn half-record. Between them these bracket every durable state a
    # real power cut can leave at this boundary.
    return ("sync", "flush", "torn") if op.kind == "write" else ("sync", "flush")


def explore(
    base_dir: str | Path | None = None,
    max_points: int | None = None,
    keep: bool = False,
) -> CrashPointReport:
    """Enumerate every crash point of the workload and verify recovery.

    ``max_points`` truncates the exploration (smoke tests); ``keep``
    leaves the sandboxes on disk for post-mortems.  Returns the
    :class:`CrashPointReport`; it is the caller's job to gate on
    ``report.ok``.
    """
    own_base = base_dir is None
    base = Path(base_dir) if base_dir is not None else Path(
        tempfile.mkdtemp(prefix="repro-crashpoints-")
    )
    try:
        golden_io = FaultyIo()
        golden_dir = base / "golden"
        golden = run_workload(golden_dir, golden_io)
        if golden_io.injected:
            raise RuntimeError("golden pass must not inject faults")

        specs: list[tuple[IoOp, str]] = [
            (op, mode) for op in golden_io.ops for mode in _crash_modes(op)
        ]
        if max_points is not None:
            specs = specs[:max_points]

        points: list[dict] = []
        total_violations = 0
        for op, mode in specs:
            sandbox = base / f"cp-{op.seq:04d}-{mode}"
            policy = ScriptedPolicy(
                [IoFault("crash", op_seq=op.seq, crash_mode=mode)]
            )
            crash_io = FaultyIo(policy)
            crashed = True
            try:
                run_workload(sandbox, crash_io)
                crashed = False
            except SimulatedCrash:
                pass
            violations: list[str]
            detail: dict = {}
            if not crashed:
                violations = [f"workload never reached op #{op.seq}"]
            else:
                crash_io.materialize_crash_state()
                violations, detail = _verify_recovery(sandbox, golden)
            total_violations += len(violations)
            rel_path = op.path
            golden_root = str(golden_dir)
            if rel_path.startswith(golden_root):
                rel_path = rel_path[len(golden_root):].lstrip("/")
            points.append(
                {
                    "seq": op.seq,
                    "op": op.kind,
                    "path": rel_path,
                    "mode": mode,
                    "violations": violations,
                    **detail,
                }
            )
            if not keep and not violations:
                shutil.rmtree(sandbox, ignore_errors=True)

        return CrashPointReport(
            ops=len(golden_io.ops),
            crash_points=len(specs),
            violations=total_violations,
            points=points,
        )
    finally:
        if own_base and not keep:
            shutil.rmtree(base, ignore_errors=True)
