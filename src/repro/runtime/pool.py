"""Spawn-based worker processes for the supervised trial runtime.

Each worker is a fresh ``spawn`` interpreter (no inherited locks, no
copy-on-write surprises) running :func:`worker_main`: it pulls wire-format
trial tasks from its own single-slot task queue, executes them via
:func:`repro.runtime.plan.execute_trial`, and pushes ``(kind, ...)`` tuples
onto the shared result queue.  Workers inherit the parent environment, so
every worker resolves artifacts against the same ``REPRO_STORE_DIR`` root —
a resumed or parallel run hits the warm topologies/tables the first
execution materialized.

Liveness signals, in increasing severity of what they catch:

* **heartbeat** — a daemon thread stamps a shared ``Value`` with
  ``time.monotonic()`` every ``interval`` seconds; a worker that stops
  beating while busy (e.g. SIGSTOP, C-level wedge) is *hung* even if its
  process is technically alive.  The same thread watches the parent pid
  and exits the worker if the supervisor is SIGKILLed, so an interrupted
  run never strands orphan workers.
* **process death** — the supervisor polls ``Process.is_alive``; a worker
  that dies mid-trial (SIGKILL, OOM) is detected and replaced.

Workers never touch the journal; only the supervisor writes checkpoints.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import queue
import threading
import time
import traceback
from typing import Any

from repro.runtime.plan import execute_trial

__all__ = [
    "WorkerHandle",
    "spawn_worker",
    "worker_main",
]

logger = logging.getLogger(__name__)

#: Message kinds a worker can emit on the result queue.
MSG_START = "start"
MSG_DONE = "done"
MSG_ERROR = "error"


def _heartbeat_loop(beat: Any, interval: float, parent_pid: int) -> None:
    """Daemon thread: stamp the heartbeat and die with the parent."""
    while True:
        beat.value = time.monotonic()
        if os.getppid() != parent_pid:
            # The supervisor is gone (SIGKILL leaves us orphaned); there is
            # nobody to report to, so exit instead of running forever.
            os._exit(1)
        time.sleep(interval)


def worker_main(
    worker_id: int,
    task_q: Any,
    result_q: Any,
    beat: Any,
    interval: float,
    parent_pid: int,
) -> None:
    """Worker process entry point (module-level so ``spawn`` can pickle it)."""
    threading.Thread(
        target=_heartbeat_loop,
        args=(beat, interval, parent_pid),
        daemon=True,
        name=f"heartbeat-{worker_id}",
    ).start()
    while True:
        task = task_q.get()
        if task is None:
            return
        digest = task["digest"]
        result_q.put((MSG_START, worker_id, digest))
        try:
            value = execute_trial(task)
        except Exception as exc:  # noqa: BLE001 — boundary: error crosses process
            logger.warning("worker %d: trial %s failed: %s", worker_id, digest[:12], exc)
            result_q.put(
                (
                    MSG_ERROR,
                    worker_id,
                    digest,
                    f"{type(exc).__name__}: {exc}",
                    traceback.format_exc(limit=8),
                )
            )
        else:
            result_q.put((MSG_DONE, worker_id, digest, value))


class WorkerHandle:
    """Supervisor-side view of one worker process and its channels."""

    __slots__ = (
        "worker_id",
        "process",
        "task_q",
        "beat",
        "busy_digest",
        "assigned_at",
        "started_at",
        "trial_timeout",
        "deadline",
    )

    def __init__(self, worker_id: int, process: Any, task_q: Any, beat: Any) -> None:
        self.worker_id = worker_id
        self.process = process
        self.task_q = task_q
        self.beat = beat
        #: digest of the trial this worker is executing (None = idle).
        self.busy_digest: str | None = None
        self.assigned_at = 0.0
        self.started_at = 0.0
        self.trial_timeout = 0.0
        self.deadline = float("inf")

    def assign(self, task: dict, timeout: float) -> None:
        """Queue a trial.  The wall-clock deadline is armed only once the
        worker reports MSG_START (see :meth:`mark_started`), so interpreter
        spawn and import time never eat into the per-trial budget."""
        self.busy_digest = task["digest"]
        self.assigned_at = time.monotonic()
        self.started_at = 0.0
        self.trial_timeout = timeout
        self.deadline = float("inf")
        self.task_q.put(task)

    def mark_started(self) -> None:
        now = time.monotonic()
        self.started_at = now
        self.deadline = (
            now + self.trial_timeout if self.trial_timeout > 0 else float("inf")
        )

    def release(self) -> None:
        self.busy_digest = None
        self.assigned_at = 0.0
        self.started_at = 0.0
        self.trial_timeout = 0.0
        self.deadline = float("inf")

    def heartbeat_age(self) -> float:
        return max(0.0, time.monotonic() - self.beat.value)

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """Hard-stop the worker (timeout/hang path; nothing graceful left)."""
        try:
            self.process.kill()
            self.process.join(timeout=5.0)
        except (OSError, ValueError) as exc:
            logger.warning("pool: could not kill worker %d: %s", self.worker_id, exc)

    def shutdown(self, grace: float = 2.0) -> None:
        """Ask the worker to exit (sentinel), then escalate to kill."""
        if self.alive():
            try:
                self.task_q.put_nowait(None)
            except (OSError, ValueError, queue.Full):
                pass
            self.process.join(timeout=grace)
        if self.alive():
            self.kill()


def spawn_worker(
    worker_id: int,
    result_q: Any,
    ctx: Any = None,
    heartbeat_interval: float = 0.5,
) -> WorkerHandle:
    """Start one spawn-context worker wired to the shared result queue."""
    ctx = ctx or multiprocessing.get_context("spawn")
    task_q = ctx.Queue(maxsize=2)
    beat = ctx.Value("d", time.monotonic(), lock=False)
    process = ctx.Process(
        target=worker_main,
        args=(worker_id, task_q, result_q, beat, heartbeat_interval, os.getpid()),
        name=f"repro-worker-{worker_id}",
        daemon=True,
    )
    process.start()
    return WorkerHandle(worker_id, process, task_q, beat)
