"""Append-only JSONL checkpoint journal for supervised runs.

One :class:`Journal` file records everything a run does: a ``run`` header
per generation (first run, then one per ``--resume``), a ``trial`` record
per finished attempt (``done`` with the full JSON result, or
``quarantined`` with the terminal error), plus ``retry`` / ``degrade`` /
``interrupted`` / ``complete`` bookkeeping records.  The file is the
single source of truth for resume: a trial whose latest record says
``done`` is never re-executed — its journaled result is replayed, which is
what makes a resumed run byte-identical to an uninterrupted one.

Durability contract: every :meth:`Journal.append` writes one canonical
JSON line, flushes, and ``fsync``\\ s, so a SIGKILL at any instant loses at
most the line being written.  :func:`load_records` tolerates exactly that
failure mode — an undecodable (truncated) line is dropped with a warning —
and :class:`Journal` repairs a missing trailing newline before appending,
so a record written after a crash never fuses with the partial line.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path

__all__ = [
    "Journal",
    "JournalError",
    "atomic_write_text",
    "completed_trials",
    "load_records",
    "run_headers",
]

logger = logging.getLogger(__name__)


class JournalError(RuntimeError):
    """The journal on disk does not match the run being attempted."""


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write *text* to *path* via a same-directory temp file + ``os.replace``.

    Output artifacts (``--out`` files) must never be observable half-written:
    a ctrl-C mid-dump either leaves the previous file intact or the new one
    complete, nothing in between.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp-" + str(os.getpid()))
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            logger.warning("journal: stray temp file left behind: %s", tmp)
        raise


def load_records(path: str | Path) -> list[dict]:
    """Parse a journal file into its record dicts.

    Undecodable lines — the partial line a SIGKILL mid-``write`` leaves
    behind — are dropped with a warning rather than failing the resume;
    every complete line before and after them is kept.
    """
    path = Path(path)
    if not path.is_file():
        return []
    records: list[dict] = []
    for lineno, line in enumerate(path.read_bytes().decode("utf-8", "replace").splitlines(), 1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            logger.warning(
                "journal %s:%d: dropping undecodable (partial) record", path, lineno
            )
            continue
        if isinstance(rec, dict):
            records.append(rec)
    return records


def completed_trials(records: list[dict]) -> dict[str, dict]:
    """Latest ``done`` trial record per trial digest (the resume skip set)."""
    done: dict[str, dict] = {}
    for rec in records:
        if rec.get("type") == "trial" and rec.get("status") == "done":
            done[rec["trial"]] = rec
    return done


def run_headers(records: list[dict]) -> list[dict]:
    """Every ``run`` header, in order (one per generation)."""
    return [rec for rec in records if rec.get("type") == "run"]


class Journal:
    """Append-only, fsync-per-record JSONL writer for one run."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._repair_trailing_newline()
        self._fh = open(self.path, "a", encoding="utf-8")

    def _repair_trailing_newline(self) -> None:
        """Terminate a partial last line so the next record starts clean."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size == 0:
            return
        with open(self.path, "rb") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
        if last != b"\n":
            with open(self.path, "ab") as fh:
                fh.write(b"\n")
                fh.flush()
                os.fsync(fh.fileno())

    def append(self, record: dict) -> None:
        """Durably append one record (canonical JSON, flush, fsync)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
