"""Append-only JSONL checkpoint journal for supervised runs.

One :class:`Journal` file records everything a run does: a ``run`` header
per generation (first run, then one per ``--resume``), a ``trial`` record
per finished attempt (``done`` with the full JSON result, or
``quarantined`` with the terminal error), plus ``retry`` / ``degrade`` /
``interrupted`` / ``complete`` bookkeeping records.  The file is the
single source of truth for resume: a trial whose latest record says
``done`` is never re-executed — its journaled result is replayed, which is
what makes a resumed run byte-identical to an uninterrupted one.

Durability contract (see the table in ``docs/ARCHITECTURE.md``): every
:meth:`Journal.append` writes one canonical JSON line, flushes, and
``fsync``\\ s, so a SIGKILL or power cut at any instant loses at most the
line being written.  :func:`load_records` tolerates exactly that failure
mode — an undecodable (truncated) line is dropped with a warning and
counted in ``journal.recovered_records``; every complete line before
*and after* it is kept — and :class:`Journal` repairs a missing trailing
newline before appending, so a record written after a crash never fuses
with the partial line.  An append the disk refuses (ENOSPC, EIO) raises
the typed :class:`JournalWriteError` instead of corrupting the file; the
supervisor catches it and degrades to a memory-only run (see
``docs/RUNTIME.md``).

All writes go through the :class:`repro.faults.io.DiskIo` seam so
``repro faults crashpoints`` and the fault-injection tests can substitute
:class:`repro.faults.io.FaultyIo`.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path

from repro import obs
from repro.faults.io import DiskIo, IoFile

__all__ = [
    "Journal",
    "JournalError",
    "JournalWriteError",
    "atomic_write_text",
    "completed_trials",
    "load_records",
    "run_headers",
]

logger = logging.getLogger(__name__)


class JournalError(RuntimeError):
    """The journal on disk does not match the run being attempted."""


class JournalWriteError(JournalError):
    """A record could not be made durable (disk full, I/O error).

    Raised by :meth:`Journal.append` instead of letting a raw ``OSError``
    escape mid-record: the caller learns *which* record failed and that
    the journal can no longer be trusted for resume, and can choose to
    degrade (the supervisor continues memory-only) rather than crash.
    """

    def __init__(self, message: str, errno_code: int | None = None) -> None:
        super().__init__(message)
        self.errno = errno_code


def atomic_write_text(
    path: str | Path, text: str, io: DiskIo | None = None
) -> None:
    """Durably write *text* to *path* via a temp file + atomic rename.

    Output artifacts (``--out`` files) must never be observable
    half-written: a ctrl-C or power cut mid-dump either leaves the
    previous file intact or the new one complete, nothing in between.
    The temp file is fsync'd before the rename and the parent directory
    after it, so the committed file also survives power loss.
    """
    io = io if io is not None else DiskIo()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    f = io.exclusive_create(path.parent, prefix=path.name + ".tmp-")
    tmp = f.path
    try:
        io.write(f, text.encode("utf-8"))
        io.fsync(f)
        io.close(f)
        io.replace(tmp, path)
        io.fsync_dir(path.parent)
    except BaseException:
        io.close(f)
        try:
            io.unlink(tmp)
        except FileNotFoundError:
            pass  # already renamed into place (failure was post-replace)
        except OSError:
            logger.warning("journal: stray temp file left behind: %s", tmp)
        raise


def load_records(path: str | Path) -> list[dict]:
    """Parse a journal file into its record dicts.

    Undecodable lines — the partial line a SIGKILL or torn write leaves
    behind — are dropped with a warning rather than failing the resume;
    every complete line before and after them is kept.  Each dropped
    line increments the ambient counter ``journal.recovered_records``
    (the journal was *recovered past* that record).
    """
    path = Path(path)
    if not path.is_file():
        return []
    records: list[dict] = []
    for lineno, line in enumerate(path.read_bytes().decode("utf-8", "replace").splitlines(), 1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            logger.warning(
                "journal %s:%d: dropping undecodable (partial) record", path, lineno
            )
            obs.get_registry().counter(
                "journal.recovered_records",
                help="undecodable (torn) journal lines dropped during recovery",
            ).inc()
            continue
        if isinstance(rec, dict):
            records.append(rec)
    return records


def completed_trials(records: list[dict]) -> dict[str, dict]:
    """Latest ``done`` trial record per trial digest (the resume skip set)."""
    done: dict[str, dict] = {}
    for rec in records:
        if rec.get("type") == "trial" and rec.get("status") == "done":
            done[rec["trial"]] = rec
    return done


def run_headers(records: list[dict]) -> list[dict]:
    """Every ``run`` header, in order (one per generation)."""
    return [rec for rec in records if rec.get("type") == "run"]


class Journal:
    """Append-only, fsync-per-record JSONL writer for one run."""

    def __init__(self, path: str | Path, io: DiskIo | None = None):
        self.path = Path(path)
        self._io = io if io is not None else DiskIo()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._repair_trailing_newline()
        self._f: IoFile = self._io.open_append(self.path)

    def _repair_trailing_newline(self) -> None:
        """Terminate a partial last line so the next record starts clean."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size == 0:
            return
        with open(self.path, "rb") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
        if last != b"\n":
            f = self._io.open_append(self.path)
            try:
                self._io.write(f, b"\n")
                self._io.flush(f)
                self._io.fsync(f)
            finally:
                self._io.close(f)

    def append(self, record: dict) -> None:
        """Durably append one record (canonical JSON, flush, fsync).

        Raises :class:`JournalWriteError` if the disk refuses the record;
        the journal file itself stays recoverable (at worst a torn tail,
        which :func:`load_records` drops).
        """
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        try:
            self._io.write(self._f, (line + "\n").encode("utf-8"))
            self._io.flush(self._f)
            self._io.fsync(self._f)
        except OSError as exc:
            raise JournalWriteError(
                f"journal append of {record.get('type', '?')!r} record failed "
                f"({type(exc).__name__}: {exc}); the journal can no longer "
                "checkpoint this run",
                errno_code=exc.errno,
            ) from exc

    def close(self) -> None:
        self._io.close(self._f)

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
