"""Experiment decomposition into deterministic, content-addressed trials.

A *trial* is the unit the supervised runtime schedules, retries and
checkpoints: one independent, seeded piece of an experiment (one
``(topology, pattern)`` cell of Fig. 9, one failed-link fraction of the
fig14_dynamic sweep, ...).  Experiments opt in by exporting three module
functions, mirroring the builder registry of :mod:`repro.store`:

* ``plan_trials(opts) -> list[dict]`` — JSON-safe parameter dicts, one per
  trial, in deterministic output order;
* ``run_trial(params, fidelity) -> dict`` — execute one trial and return a
  JSON-safe result (workers call this in a subprocess);
* ``merge_trials(opts, outcomes) -> dict`` — fold the per-trial outcomes
  (plan order) back into the result shape ``format_figure`` renders.

Each trial is identified by an :class:`~repro.store.keys.ArtifactKey` of
kind ``"trial"`` over ``(experiment, params)`` — the same canonical-JSON
digest machinery the artifact store uses — so a trial's identity is stable
across processes, runs and resumes.  Execution *fidelity* ("packet" vs
"flow") is deliberately **not** part of the identity: a trial that the
supervisor degrades mid-run still checkpoints under its planned digest,
with the fidelity it actually ran at recorded in the journal and result.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass, field
from types import ModuleType

from repro.store.keys import ArtifactKey, canonical_params

__all__ = [
    "DEGRADE_LADDER",
    "PLANNED_EXPERIMENTS",
    "Plan",
    "TrialSpec",
    "build_plan",
    "execute_trial",
    "experiment_module",
]

#: Experiments with trial decompositions (``repro run`` targets).  ``chaos``
#: is the runtime's own fault-injection experiment (tests / CI smoke).
PLANNED_EXPERIMENTS = ("fig09", "fig10", "fig14_dynamic", "tab03", "chaos")

#: The graceful-degradation ladder: repeated per-trial timeouts step a
#: trial's fidelity down one rung (``None`` = nowhere left to go).
DEGRADE_LADDER = {"packet": "flow", "flow": None}


def experiment_module(name: str) -> ModuleType:
    """The module implementing the trial API for *name*."""
    if name not in PLANNED_EXPERIMENTS:
        raise ValueError(
            f"experiment {name!r} has no trial plan; options: {PLANNED_EXPERIMENTS}"
        )
    if name == "chaos":
        return importlib.import_module("repro.runtime.chaos")
    return importlib.import_module(f"repro.experiments.{name}")


@dataclass(frozen=True)
class TrialSpec:
    """One schedulable trial: an experiment name plus canonical params."""

    experiment: str
    params: dict
    fidelity: str = "flow"

    def __post_init__(self) -> None:
        if self.experiment not in PLANNED_EXPERIMENTS:
            raise ValueError(f"unknown experiment {self.experiment!r}")
        object.__setattr__(self, "params", canonical_params(self.params))

    def key(self) -> ArtifactKey:
        """Content address of this trial (fidelity excluded — see module
        docstring: degradation must not change a trial's identity)."""
        return ArtifactKey("trial", self.experiment, {"params": self.params})

    @property
    def digest(self) -> str:
        return self.key().digest

    def to_wire(self, fidelity: str | None = None, attempt: int = 1) -> dict:
        """Picklable task message handed to a worker."""
        return {
            "experiment": self.experiment,
            "params": self.params,
            "fidelity": fidelity or self.fidelity,
            "attempt": attempt,
            "digest": self.digest,
        }


@dataclass
class Plan:
    """A full experiment decomposition: opts plus the ordered trial list."""

    experiment: str
    opts: dict = field(default_factory=dict)
    specs: list[TrialSpec] = field(default_factory=list)

    @property
    def digest(self) -> str:
        """Content address of the whole plan (validates resume compatibility)."""
        key = ArtifactKey(
            "trial_plan",
            self.experiment,
            {"opts": self.opts, "trials": [s.digest for s in self.specs]},
        )
        return key.digest

    def __len__(self) -> int:
        return len(self.specs)


def build_plan(experiment: str, opts: dict | None = None) -> Plan:
    """Decompose *experiment* under *opts* into its deterministic trials."""
    opts = canonical_params(opts or {})
    mod = experiment_module(experiment)
    fidelity = getattr(mod, "TRIAL_FIDELITY", "flow")
    specs = [
        TrialSpec(experiment, params, fidelity=fidelity)
        for params in mod.plan_trials(opts)
    ]
    digests = [s.digest for s in specs]
    if len(set(digests)) != len(digests):
        raise ValueError(
            f"experiment {experiment!r} planned duplicate trials; params must "
            "make every trial unique"
        )
    return Plan(experiment=experiment, opts=opts, specs=specs)


def execute_trial(task: dict) -> dict:
    """Run one wire-format trial task; returns the canonical JSON result.

    This is the worker-side entry point: it dispatches to the experiment's
    ``run_trial`` and round-trips the result through canonical JSON, so an
    in-process result is byte-for-byte the same as one replayed from the
    journal — the resume determinism contract rests on this.
    """
    mod = experiment_module(task["experiment"])
    result = mod.run_trial(
        dict(task["params"]),
        fidelity=task.get("fidelity", "flow"),
        attempt=int(task.get("attempt", 1)),
    )
    return json.loads(json.dumps(result, sort_keys=True))
