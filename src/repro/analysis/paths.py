"""Minimal-path diversity analysis (§9.3).

SF and BF "saw poor performance when using a single minpath per router
pair" and need all-minpath tables; PolarStar routes well on one analytic
minpath.  The underlying structural quantity is the number of distinct
minimal paths per router pair, computed here by dynamic programming over
the shortest-path DAG (vectorized per destination).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.base import Graph

__all__ = [
    "PathDiversity",
    "minimal_path_counts",
    "path_diversity",
]


@dataclass
class PathDiversity:
    """Distribution statistics of minimal-path counts over vertex pairs."""

    mean: float
    median: float
    min: int
    max: int
    frac_single_path: float  # fraction of pairs with exactly one minpath

    def __repr__(self) -> str:
        return (
            f"PathDiversity(mean={self.mean:.2f}, median={self.median:.0f}, "
            f"range=[{self.min}, {self.max}], "
            f"single={self.frac_single_path:.1%})"
        )


def minimal_path_counts(graph: Graph, dest: int, dist: np.ndarray | None = None) -> np.ndarray:
    """Number of minimal paths from every vertex to *dest*.

    DP over the BFS DAG: ``count[u] = sum count[v]`` over minimal next hops
    *v*, processed by increasing distance from *dest*.  ``dist`` may pass a
    precomputed full distance matrix row basis (``dist[:, dest]`` is used).
    """
    if dist is None:
        from repro.analysis.distances import bfs_distances

        d = bfs_distances(graph, dest)
    else:
        d = dist[:, dest]
    n = graph.n
    counts = np.zeros(n, dtype=np.float64)
    counts[dest] = 1.0
    u_arr = np.repeat(np.arange(n), np.diff(graph.indptr))
    v_arr = graph.indices
    dag = d[u_arr] == d[v_arr] + 1  # edge u->v on a minimal path toward dest
    eu, ev = u_arr[dag], v_arr[dag]
    order = np.argsort(d[eu], kind="stable")
    eu, ev = eu[order], ev[order]
    start = 0
    while start < len(eu):
        level = d[eu[start]]
        stop = start
        while stop < len(eu) and d[eu[stop]] == level:
            stop += 1
        np.add.at(counts, eu[start:stop], counts[ev[start:stop]])
        start = stop
    return counts


def path_diversity(
    graph: Graph,
    sample_dests: int | None = 64,
    seed: int = 0,
) -> PathDiversity:
    """Minimal-path-count statistics over (sampled) vertex pairs."""
    rng = np.random.default_rng(seed)
    if sample_dests is None or sample_dests >= graph.n:
        dests = np.arange(graph.n)
    else:
        dests = rng.choice(graph.n, size=sample_dests, replace=False)

    all_counts = []
    for t in dests:
        c = minimal_path_counts(graph, int(t))
        mask = np.ones(graph.n, dtype=bool)
        mask[t] = False
        all_counts.append(c[mask])
    counts = np.concatenate(all_counts)
    counts = counts[counts > 0]  # reachable pairs only
    return PathDiversity(
        mean=float(counts.mean()),
        median=float(np.median(counts)),
        min=int(counts.min()),
        max=int(counts.max()),
        frac_single_path=float((counts == 1).mean()),
    )
