"""Random link-failure resilience (Fig. 14, §11.2).

The paper removes random links until the network disconnects, reporting the
evolution of diameter and average shortest-path length, plus the
*disconnection ratio* (fraction of links removed when the network first
disconnects), median over 100 scenarios.

Connectivity probes share a :class:`ConnectivityProber`, which hoists the
per-call COO endpoint/weight buffers out of the hot loop — a disconnection
binary search issues O(log m) probes against one graph, and the median over
scenarios issues hundreds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.analysis.distances import average_path_length, diameter
from repro.graphs.base import Graph

__all__ = [
    "ConnectivityProber",
    "FaultSweepResult",
    "disconnection_ratio",
    "link_failure_sweep",
    "median_disconnection_ratio",
]


@dataclass
class FaultSweepResult:
    """Diameter/APL trajectory of one link-failure scenario."""

    fractions: list[float] = field(default_factory=list)
    diameters: list[float] = field(default_factory=list)
    avg_path_lengths: list[float] = field(default_factory=list)
    disconnection_ratio: float = 1.0


class ConnectivityProber:
    """Reusable is-the-graph-still-connected tester for one graph.

    Holds the edge endpoint arrays and a unit-weight buffer once, so each
    probe only slices them by the surviving-edge mask and runs
    ``connected_components`` — no per-call edge-array fetch or weight
    allocation.
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        e = graph.edge_array
        self._rows = np.ascontiguousarray(e[:, 0]) if graph.m else np.empty(0, np.int64)
        self._cols = np.ascontiguousarray(e[:, 1]) if graph.m else np.empty(0, np.int64)
        self._ones = np.ones(graph.m, dtype=np.int8)

    def is_connected(self, keep_mask: np.ndarray) -> bool:
        """True iff the subgraph keeping ``keep_mask`` edges is connected."""
        n = self.graph.n
        if n <= 1:
            return True
        rows = self._rows[keep_mask]
        if len(rows) < n - 1:
            return False  # fewer edges than any spanning tree
        cols = self._cols[keep_mask]
        deg = np.bincount(rows, minlength=n) + np.bincount(cols, minlength=n)
        if (deg == 0).any():
            return False  # isolated vertex — the common random-failure cut
        mat = sp.coo_matrix(
            (self._ones[: len(rows)], (rows, cols)), shape=(n, n)
        )
        ncomp, _ = sp.csgraph.connected_components(mat, directed=False)
        return bool(ncomp == 1)

    def first_disconnecting_count(
        self, order: np.ndarray, lo: int = 0, hi: int | None = None
    ) -> int:
        """Smallest removal count (prefix of ``order``) that disconnects.

        ``lo`` must leave the graph connected and ``hi`` (default ``m``)
        disconnect it; standard bisection invariant.  Returns ``hi`` when
        the bracket is already tight.
        """
        hi = self.graph.m if hi is None else hi
        keep = np.ones(self.graph.m, dtype=bool)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            keep[:] = True
            keep[order[:mid]] = False
            if self.is_connected(keep):
                lo = mid
            else:
                hi = mid
        return hi


def _is_connected_subset(graph: Graph, keep_mask: np.ndarray) -> bool:
    """One-shot probe (prefer :class:`ConnectivityProber` in loops)."""
    return ConnectivityProber(graph).is_connected(keep_mask)


def disconnection_ratio(
    graph: Graph, seed: int = 0, prober: ConnectivityProber | None = None
) -> float:
    """Fraction of links whose (random-order) removal first disconnects the
    graph, found by binary search over one random removal order."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(graph.m)
    prober = prober if prober is not None else ConnectivityProber(graph)
    return prober.first_disconnecting_count(order) / graph.m


def link_failure_sweep(
    graph: Graph,
    fractions,
    seed: int = 0,
    sample_sources: int | None = 64,
) -> FaultSweepResult:
    """Remove cumulative random link subsets and track diameter / APL.

    ``fractions`` is an increasing sequence of failed-link fractions; each
    step reuses the same random removal order (cumulative failures, as in
    the paper).  Diameter/APL are estimated from ``sample_sources`` BFS
    sources.  Stops early at the first disconnecting step; the recorded
    disconnection ratio is then *bisected* between the last connected step
    and the disconnecting one, not the coarse grid fraction.
    """
    rng = np.random.default_rng(seed)
    order = rng.permutation(graph.m)
    prober = ConnectivityProber(graph)
    result = FaultSweepResult()
    prev_k = 0
    for frac in fractions:
        k = int(round(frac * graph.m))
        keep = np.ones(graph.m, dtype=bool)
        keep[order[:k]] = False
        if not prober.is_connected(keep):
            first_bad = prober.first_disconnecting_count(order, lo=prev_k, hi=k)
            result.disconnection_ratio = first_bad / graph.m
            break
        prev_k = k
        sub = Graph(graph.n, graph.edge_array[keep], name=graph.name)
        result.fractions.append(frac)
        result.diameters.append(diameter(sub, sample=sample_sources, seed=seed))
        result.avg_path_lengths.append(
            average_path_length(sub, sample=sample_sources, seed=seed)
        )
    else:
        result.disconnection_ratio = prober.first_disconnecting_count(order) / graph.m
    return result


def median_disconnection_ratio(graph: Graph, scenarios: int = 100, seed: int = 0) -> float:
    """Median disconnection ratio over independent random scenarios (§11.2)."""
    prober = ConnectivityProber(graph)
    ratios = [
        disconnection_ratio(graph, seed=seed + i, prober=prober)
        for i in range(scenarios)
    ]
    return float(np.median(ratios))
