"""Random link-failure resilience (Fig. 14, §11.2).

The paper removes random links until the network disconnects, reporting the
evolution of diameter and average shortest-path length, plus the
*disconnection ratio* (fraction of links removed when the network first
disconnects), median over 100 scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.analysis.distances import average_path_length, diameter
from repro.graphs.base import Graph

__all__ = [
    "FaultSweepResult",
    "disconnection_ratio",
    "link_failure_sweep",
    "median_disconnection_ratio",
]


@dataclass
class FaultSweepResult:
    """Diameter/APL trajectory of one link-failure scenario."""

    fractions: list[float] = field(default_factory=list)
    diameters: list[float] = field(default_factory=list)
    avg_path_lengths: list[float] = field(default_factory=list)
    disconnection_ratio: float = 1.0


def _is_connected_subset(graph: Graph, keep_mask: np.ndarray) -> bool:
    e = graph.edge_array[keep_mask]
    if graph.n > 1 and len(e) == 0:
        return False
    data = np.ones(len(e), dtype=np.int8)
    mat = sp.coo_matrix((data, (e[:, 0], e[:, 1])), shape=(graph.n, graph.n))
    ncomp, _ = sp.csgraph.connected_components(mat, directed=False)
    return ncomp == 1


def disconnection_ratio(graph: Graph, seed: int = 0) -> float:
    """Fraction of links whose (random-order) removal first disconnects the
    graph, found by binary search over one random removal order."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(graph.m)
    lo, hi = 0, graph.m  # lo: connected after removing `lo` links; hi: not
    while hi - lo > 1:
        mid = (lo + hi) // 2
        keep = np.ones(graph.m, dtype=bool)
        keep[order[:mid]] = False
        if _is_connected_subset(graph, keep):
            lo = mid
        else:
            hi = mid
    return hi / graph.m


def link_failure_sweep(
    graph: Graph,
    fractions,
    seed: int = 0,
    sample_sources: int | None = 64,
) -> FaultSweepResult:
    """Remove cumulative random link subsets and track diameter / APL.

    ``fractions`` is an increasing sequence of failed-link fractions; each
    step reuses the same random removal order (cumulative failures, as in
    the paper).  Diameter/APL are estimated from ``sample_sources`` BFS
    sources.  Stops early at the first disconnecting step and records the
    disconnection ratio for this scenario.
    """
    rng = np.random.default_rng(seed)
    order = rng.permutation(graph.m)
    result = FaultSweepResult()
    for frac in fractions:
        k = int(round(frac * graph.m))
        keep = np.ones(graph.m, dtype=bool)
        keep[order[:k]] = False
        if not _is_connected_subset(graph, keep):
            result.disconnection_ratio = frac
            break
        sub = Graph(graph.n, graph.edge_array[keep], name=graph.name)
        result.fractions.append(frac)
        result.diameters.append(diameter(sub, sample=sample_sources, seed=seed))
        result.avg_path_lengths.append(
            average_path_length(sub, sample=sample_sources, seed=seed)
        )
    else:
        result.disconnection_ratio = disconnection_ratio(graph, seed=seed)
    return result


def median_disconnection_ratio(graph: Graph, scenarios: int = 100, seed: int = 0) -> float:
    """Median disconnection ratio over independent random scenarios (§11.2)."""
    ratios = [disconnection_ratio(graph, seed=seed + i) for i in range(scenarios)]
    return float(np.median(ratios))
