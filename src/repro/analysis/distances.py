"""Shortest-path distance computations.

Diameter and average-path-length queries appear throughout the paper
(diameter-3 verification, Fig. 14's fault-tolerance curves).  We lean on
:func:`scipy.sparse.csgraph.shortest_path` (C-implemented BFS/Dijkstra) and
chunk the source set so the distance block never exceeds a memory budget.
Unreached vertices are reported as ``inf``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.csgraph as csgraph

from repro import obs
from repro.graphs.base import Graph

__all__ = [
    "bfs_distances",
    "eccentricity",
    "diameter",
    "average_path_length",
    "distance_distribution",
    "distance_matrix",
]


def bfs_distances(graph: Graph, sources) -> np.ndarray:
    """BFS distance array(s).

    ``sources`` may be an int (returns shape ``(n,)``) or a sequence
    (returns shape ``(len(sources), n)``).
    """
    single = np.isscalar(sources)
    idx = [sources] if single else list(sources)
    d = csgraph.shortest_path(graph.csr(), method="D", unweighted=True, indices=idx)
    return d[0] if single else d


def eccentricity(graph: Graph, source: int) -> float:
    """Max distance from *source*; ``inf`` when the graph is disconnected."""
    return float(bfs_distances(graph, source).max())


def diameter(graph: Graph, sample: int | None = None, seed: int = 0, chunk: int = 256) -> float:
    """Graph diameter (``inf`` if disconnected).

    ``sample``: if given, estimate from that many random source vertices — a
    lower bound, adequate for vertex-transitive graphs (where one source is
    exact) and for the fault-tolerance sweeps.
    """
    sources = _source_set(graph.n, sample, seed)
    worst = 0.0
    with obs.span("analysis.distances.diameter"):
        for start in range(0, len(sources), chunk):
            d = bfs_distances(graph, sources[start : start + chunk])
            worst = max(worst, float(d.max()))
            if np.isinf(worst):
                return worst
    return worst


def average_path_length(
    graph: Graph, sample: int | None = None, seed: int = 0, chunk: int = 256
) -> float:
    """Mean distance over ordered vertex pairs with distinct endpoints,
    restricted to reachable pairs (``inf`` distances are excluded so the
    metric stays meaningful on faulted, possibly-disconnected networks)."""
    sources = _source_set(graph.n, sample, seed)
    total = 0.0
    count = 0
    with obs.span("analysis.distances.average_path_length"):
        for start in range(0, len(sources), chunk):
            block = sources[start : start + chunk]
            d = bfs_distances(graph, block)
            finite = np.isfinite(d)
            total += d[finite].sum()
            count += int(finite.sum()) - len(block)  # exclude the zero self-distances
    return total / count if count else float("inf")


def distance_distribution(
    graph: Graph, sample: int | None = None, seed: int = 0, chunk: int = 256
) -> np.ndarray:
    """Histogram of pairwise distances: ``out[k]`` = fraction of ordered
    reachable pairs (distinct endpoints) at distance *k*.

    For a diameter-3 network this is the (1-hop, 2-hop, 3-hop) traffic
    split that determines average latency at low load.
    """
    sources = _source_set(graph.n, sample, seed)
    counts: dict[int, int] = {}
    total = 0
    for start in range(0, len(sources), chunk):
        d = bfs_distances(graph, sources[start : start + chunk])
        finite = d[np.isfinite(d) & (d > 0)].astype(int)
        for k, c in zip(*np.unique(finite, return_counts=True)):
            counts[int(k)] = counts.get(int(k), 0) + int(c)
        total += len(finite)
    if not total:
        return np.array([1.0])
    out = np.zeros(max(counts) + 1)
    for k, c in counts.items():
        out[k] = c / total
    return out


def distance_matrix(graph: Graph) -> np.ndarray:
    """Full ``(n, n)`` distance matrix — only for small graphs (tests)."""
    return csgraph.shortest_path(graph.csr(), method="D", unweighted=True)


def _source_set(n: int, sample: int | None, seed: int) -> np.ndarray:
    if sample is None or sample >= n:
        return np.arange(n)
    rng = np.random.default_rng(seed)
    return rng.choice(n, size=sample, replace=False)
