"""Edge-disjoint spanning trees (EDSTs) on star-product networks.

The paper's companion work (Lakhotia et al. 2023; Dawkins et al. 2024,
cited in §6.1.1) uses multiple edge-disjoint spanning trees for in-network
Allreduce on PolarFly/star products; a d-regular d-edge-connected graph
admits up to ``d/2`` of them (Nash-Williams/Tutte).

We use a randomized-Kruskal heuristic with restarts: each round draws a
uniformly random edge order over the *unused* edges and keeps a spanning
tree if one exists; whole extractions are retried with different seeds and
the best run wins.  The result is a certified lower bound — every returned
tree is a real spanning tree and all are pairwise edge-disjoint (checked by
:func:`verify_edst`); the exact Nash-Williams number would need matroid
union (Roskind–Tarjan), overkill for the bandwidth estimates here.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import Graph

__all__ = [
    "greedy_edst",
    "verify_edst",
    "allreduce_bandwidth_factor",
]


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


def _extract_once(
    graph: Graph, rng: np.random.Generator, max_trees: int
) -> list[list[tuple[int, int]]]:
    edges = [tuple(e) for e in graph.edge_array.tolist()]
    remaining = np.ones(len(edges), dtype=bool)
    trees: list[list[tuple[int, int]]] = []
    while len(trees) < max_trees:
        order = rng.permutation(len(edges))
        uf = _UnionFind(graph.n)
        tree: list[int] = []
        for i in order:
            if not remaining[i]:
                continue
            u, v = edges[i]
            if uf.union(u, v):
                tree.append(int(i))
                if len(tree) == graph.n - 1:
                    break
        if len(tree) != graph.n - 1:
            break
        remaining[tree] = False
        trees.append([edges[i] for i in tree])
    return trees


def greedy_edst(
    graph: Graph,
    max_trees: int | None = None,
    restarts: int = 5,
    seed: int = 0,
) -> list[list[tuple[int, int]]]:
    """Extract edge-disjoint spanning trees (randomized, deterministic for a
    given seed).  Returns the best extraction over ``restarts`` attempts."""
    if graph.n <= 1 or not graph.is_connected():
        return []
    limit = max_trees if max_trees is not None else max(1, graph.max_degree // 2)
    best: list[list[tuple[int, int]]] = []
    for r in range(restarts):
        rng = np.random.default_rng(seed + r)
        trees = _extract_once(graph, rng, limit)
        if len(trees) > len(best):
            best = trees
            if len(best) == limit:
                break
    return best


def verify_edst(graph: Graph, trees: list[list[tuple[int, int]]]) -> bool:
    """Check that the trees are spanning, acyclic and pairwise edge-disjoint."""
    seen_edges: set[tuple[int, int]] = set()
    for tree in trees:
        canon = [(min(u, v), max(u, v)) for u, v in tree]
        if len(canon) != graph.n - 1:
            return False
        if any(e in seen_edges for e in canon):
            return False
        if any(not graph.has_edge(u, v) for u, v in canon):
            return False
        seen_edges.update(canon)
        t = Graph(graph.n, canon)
        if not t.is_connected():
            return False
    return True


def allreduce_bandwidth_factor(graph: Graph, max_trees: int | None = None) -> int:
    """Number of EDSTs usable to pipeline an in-network Allreduce."""
    return len(greedy_edst(graph, max_trees))
