"""Minimum-bisection estimation (Fig. 12 / Fig. 13).

The paper estimates minimum bisections with METIS.  METIS is a multilevel
partitioner; we substitute a classic combination that is also a heuristic
bisection estimator and preserves the *relative* ordering of topologies:

1. a spectral seed — split on the median of the Fiedler vector;
2. Fiduccia–Mattheyses (FM) refinement passes with strict balance;
3. optional random-restart seeds, keeping the best cut found.

The reported metric is the fraction of links crossing the cut, as in
Fig. 12 ("fraction of links crossing the minimum bisection").
"""

from __future__ import annotations

import logging

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import obs
from repro.graphs.base import Graph

__all__ = [
    "min_bisection",
    "bisection_fraction",
]

logger = logging.getLogger(__name__)


def _spectral_seed(graph: Graph) -> np.ndarray:
    """Balanced 0/1 side assignment from the Fiedler vector median."""
    lap = sp.csgraph.laplacian(graph.csr().astype(np.float64))
    n = graph.n
    try:
        # Smallest two eigenpairs; v[:,1] is the Fiedler vector.
        _, vecs = spla.eigsh(lap, k=2, sigma=-1e-3, which="LM", tol=1e-4)
        fiedler = vecs[:, 1]
    except (spla.ArpackError, np.linalg.LinAlgError, RuntimeError) as exc:
        # ARPACK may fail to converge and the shift-invert factorization can
        # hit a singular matrix on degenerate graphs.  The FM refinement
        # recovers from any seed, so degrade to a deterministic random seed
        # — but say so: a silent fallback would skew Fig. 12/13 undetected.
        logger.warning(
            "%s: spectral seed failed (%s); using random seed partition",
            graph.name,
            exc,
        )
        rng = np.random.default_rng(0)
        fiedler = rng.standard_normal(n)
    order = np.argsort(fiedler, kind="stable")
    side = np.zeros(n, dtype=np.int8)
    side[order[n // 2 :]] = 1
    return side


def _cut_size(graph: Graph, side: np.ndarray) -> int:
    e = graph.edge_array
    if not len(e):
        return 0
    return int((side[e[:, 0]] != side[e[:, 1]]).sum())


def _fm_refine(graph: Graph, side: np.ndarray, max_passes: int = 8) -> np.ndarray:
    """Fiduccia–Mattheyses passes with pairwise swaps (keeps exact balance).

    Each pass greedily swaps the highest-gain unlocked vertex pair (one from
    each side) until no positive-gain prefix remains, then rolls back to the
    best prefix — the standard KL/FM hybrid for balanced bisection.
    """
    side = side.copy()
    n = graph.n
    indptr, indices = graph.indptr, graph.indices

    for _ in range(max_passes):
        # gain[v] = external(v) - internal(v) under the current partition.
        same = side[indices] == np.repeat(side, np.diff(indptr))
        internal = np.add.reduceat(same, np.minimum(indptr[:-1], max(len(same) - 1, 0)))
        internal[np.diff(indptr) == 0] = 0
        gain = (graph.degrees - internal) - internal

        locked = np.zeros(n, dtype=bool)
        seq: list[tuple[int, int]] = []
        cum = 0
        best_cum, best_len = 0, 0
        # Bounded number of swap steps per pass keeps this near-linear.
        for _step in range(min(n // 2, 2000)):
            g0 = np.where(~locked & (side == 0), gain, -np.inf)
            g1 = np.where(~locked & (side == 1), gain, -np.inf)
            a = int(np.argmax(g0))
            b = int(np.argmax(g1))
            if not np.isfinite(g0[a]) or not np.isfinite(g1[b]):
                break
            adj = 2 if _has_edge(indptr, indices, a, b) else 0
            delta = gain[a] + gain[b] - adj
            cum += int(delta)
            seq.append((a, b))
            locked[a] = locked[b] = True
            side[a], side[b] = 1, 0
            # Update neighbor gains incrementally.
            for v, new_side in ((a, 1), (b, 0)):
                for u in indices[indptr[v] : indptr[v + 1]]:
                    # edge (u, v) turned internal for u if u sits on v's new
                    # side (gain down), external otherwise (gain up)
                    gain[u] += -2 if side[u] == new_side else 2
            if cum > best_cum:
                best_cum, best_len = cum, len(seq)
            if len(seq) - best_len > 50:  # early exit: long non-improving tail
                break
        # Roll back moves after the best prefix.
        for a, b in seq[best_len:]:
            side[a], side[b] = 0, 1
        if best_cum <= 0:
            break
    return side


def _has_edge(indptr, indices, u, v) -> bool:
    nbrs = indices[indptr[u] : indptr[u + 1]]
    i = np.searchsorted(nbrs, v)
    return bool(i < len(nbrs) and nbrs[i] == v)


def min_bisection(graph: Graph, restarts: int = 2, seed: int = 0) -> tuple[int, np.ndarray]:
    """Estimate the minimum balanced bisection.

    Returns ``(cut_edges, side)`` for the best partition found across the
    spectral seed plus ``restarts`` random seeds, each FM-refined.
    """
    rng = np.random.default_rng(seed)
    with obs.span("analysis.bisection.spectral_seed"):
        candidates = [_spectral_seed(graph)]
    for _ in range(restarts):
        perm = rng.permutation(graph.n)
        side = np.zeros(graph.n, dtype=np.int8)
        side[perm[graph.n // 2 :]] = 1
        candidates.append(side)

    best_cut, best_side = None, None
    with obs.span("analysis.bisection.fm_refine"):
        for side in candidates:
            refined = _fm_refine(graph, side)
            cut = _cut_size(graph, refined)
            if best_cut is None or cut < best_cut:
                best_cut, best_side = cut, refined
    return int(best_cut), best_side


def bisection_fraction(graph: Graph, restarts: int = 2, seed: int = 0) -> float:
    """Fraction of links crossing the estimated minimum bisection."""
    if graph.m == 0:
        return 0.0
    cut, _ = min_bisection(graph, restarts=restarts, seed=seed)
    return cut / graph.m
