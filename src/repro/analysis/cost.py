"""Network cost and power modeling (§1.2, §2.3).

The paper's cost-effectiveness argument: higher Moore-bound efficiency
realizes a target system size with lower-radix switches and fewer cables.
This module quantifies that with a simple standard model:

* switch cost grows with port count (routers x radix ports, plus endpoint
  ports);
* cable cost splits local (intra-group, short, cheap) vs global
  (inter-group, long, expensive — or bundled into multi-core fibers when
  the topology supports it);
* power ∝ total ports.

Absolute dollar/Watt constants are configurable; defaults are unit-free
ratios adequate for topology *comparisons*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topologies.base import Topology

__all__ = [
    "CostParameters",
    "CostReport",
    "cost_report",
    # repro-lint: disable=RL110 -- notebook-facing Table 3 helper: kept
    # exported for downstream cost studies even though no repo module
    # calls it (tests exercise cost_report directly).
    "cost_per_endpoint_comparison",  # repro-lint: disable=RL110
]


@dataclass
class CostParameters:
    port_cost: float = 1.0  # per switch port
    local_cable_cost: float = 1.0  # intra-group link
    global_cable_cost: float = 4.0  # inter-group link (longer, optical)
    mcf_bundle_discount: float = 0.5  # bundled global links cost this x each
    port_power: float = 1.0  # per port, arbitrary units


@dataclass
class CostReport:
    topology: str
    routers: int
    endpoints: int
    total_ports: int
    local_links: int
    global_links: int
    bundled: bool
    cable_cost: float
    switch_cost: float
    power: float

    @property
    def total_cost(self) -> float:
        return self.cable_cost + self.switch_cost

    @property
    def cost_per_endpoint(self) -> float:
        return self.total_cost / max(self.endpoints, 1)


def cost_report(topology: Topology, params: CostParameters | None = None) -> CostReport:
    """Compute the cost/power breakdown for a topology.

    Links are "global" when they cross group boundaries (topologies without
    groups are treated as all-global, the conservative choice for flat
    low-diameter networks).  Bundling applies when >1 parallel link joins
    some group pair (§8): all global links then get the MCF discount.
    """
    p = params or CostParameters()
    e = topology.graph.edge_array
    if topology.groups is not None and len(e):
        cross = topology.groups[e[:, 0]] != topology.groups[e[:, 1]]
        global_links = int(cross.sum())
        local_links = int(len(e) - global_links)
        pair_counts: dict[tuple[int, int], int] = {}
        for u, v in e[cross]:
            key = (int(topology.groups[u]), int(topology.groups[v]))
            key = (min(key), max(key))
            pair_counts[key] = pair_counts.get(key, 0) + 1
        bundled = bool(pair_counts) and max(pair_counts.values()) > 1
    else:
        global_links = int(len(e))
        local_links = 0
        bundled = False

    total_ports = int(topology.graph.degrees.sum() + topology.num_endpoints)
    global_unit = p.global_cable_cost * (p.mcf_bundle_discount if bundled else 1.0)
    cable_cost = local_links * p.local_cable_cost + global_links * global_unit
    switch_cost = total_ports * p.port_cost
    power = total_ports * p.port_power
    return CostReport(
        topology=topology.name,
        routers=topology.num_routers,
        endpoints=topology.num_endpoints,
        total_ports=total_ports,
        local_links=local_links,
        global_links=global_links,
        bundled=bundled,
        cable_cost=cable_cost,
        switch_cost=switch_cost,
        power=power,
    )


def cost_per_endpoint_comparison(
    topologies: list[Topology], params: CostParameters | None = None
) -> dict[str, float]:
    """Cost-per-endpoint of several topologies (lower is better)."""
    return {t.name: cost_report(t, params).cost_per_endpoint for t in topologies}
