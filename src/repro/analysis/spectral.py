"""Spectral analysis: expansion properties of the topologies (§11.1).

Fig. 12's discussion attributes Spectralfly's large bisection to the
optimal expansion of Ramanujan graphs.  This module computes the relevant
spectral quantities so that claim is checkable:

* ``second_eigenvalue`` — λ₂ of the adjacency matrix (for a d-regular
  graph, λ₂ ≤ 2√(d−1) is the Ramanujan bound);
* ``spectral_gap`` — d − λ₂;
* ``cheeger_lower_bound`` — the expansion lower bound (d − λ₂)/2;
* ``algebraic_connectivity`` — the Laplacian Fiedler value.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.base import Graph

__all__ = [
    "adjacency_eigenvalues",
    "second_eigenvalue",
    "spectral_gap",
    "is_ramanujan",
    "cheeger_lower_bound",
    "algebraic_connectivity",
]


def adjacency_eigenvalues(graph: Graph, k: int = 3) -> np.ndarray:
    """The *k* largest-magnitude adjacency eigenvalues, descending by value."""
    if graph.n <= k + 1:
        dense = graph.csr().toarray().astype(float)
        return np.sort(np.linalg.eigvalsh(dense))[::-1][:k]
    vals = spla.eigsh(
        graph.csr().astype(np.float64), k=k, which="LA", return_eigenvectors=False
    )
    return np.sort(vals)[::-1]


def second_eigenvalue(graph: Graph) -> float:
    """λ₂ of the adjacency matrix (the expansion-controlling eigenvalue)."""
    return float(adjacency_eigenvalues(graph, k=2)[1])


def spectral_gap(graph: Graph) -> float:
    """``d − λ₂`` for a d-regular graph (larger = better expander)."""
    vals = adjacency_eigenvalues(graph, k=2)
    return float(vals[0] - vals[1])


def is_ramanujan(graph: Graph) -> bool:
    """``λ₂ ≤ 2·sqrt(d−1)`` — the Ramanujan property LPS graphs satisfy."""
    if not graph.is_regular():
        raise ValueError("Ramanujan test needs a regular graph")
    d = graph.max_degree
    return second_eigenvalue(graph) <= 2.0 * np.sqrt(d - 1) + 1e-9


def cheeger_lower_bound(graph: Graph) -> float:
    """Expansion lower bound ``(d − λ₂) / 2`` (Cheeger/Alon–Milman):
    every balanced cut crosses at least this many edges per vertex."""
    return spectral_gap(graph) / 2.0


def algebraic_connectivity(graph: Graph) -> float:
    """The Laplacian Fiedler value λ₂(L) (0 iff disconnected)."""
    lap = sp.csgraph.laplacian(graph.csr().astype(np.float64))
    if graph.n <= 3:
        return float(np.sort(np.linalg.eigvalsh(lap.toarray()))[1])
    vals = spla.eigsh(lap, k=2, sigma=-1e-3, which="LM", return_eigenvectors=False)
    return float(np.sort(vals)[1])
