"""Structural analysis: distances, bisection, fault tolerance, path diversity."""

from repro.analysis.distances import (
    average_path_length,
    bfs_distances,
    diameter,
    distance_matrix,
    eccentricity,
)
from repro.analysis.bisection import bisection_fraction, min_bisection
from repro.analysis.cost import CostParameters, CostReport, cost_report
from repro.analysis.distances import distance_distribution
from repro.analysis.faults import FaultSweepResult, link_failure_sweep
from repro.analysis.paths import PathDiversity, minimal_path_counts, path_diversity
from repro.analysis.spanning_trees import greedy_edst, verify_edst

__all__ = [
    "average_path_length",
    "bfs_distances",
    "diameter",
    "distance_matrix",
    "eccentricity",
    "bisection_fraction",
    "min_bisection",
    "FaultSweepResult",
    "link_failure_sweep",
    "distance_distribution",
    "CostParameters",
    "CostReport",
    "cost_report",
    "PathDiversity",
    "minimal_path_counts",
    "path_diversity",
    "greedy_edst",
    "verify_edst",
]
