"""Hierarchical modular layout and link bundling (§8).

PolarStar's physical story: the supernode is the blade/rack building block,
adjacent supernodes are joined by ``2(d* - q)`` parallel links that can
share one multi-core fiber (MCF), and the supernodes themselves organize
into ``q + 1`` *supernode clusters* following the ER structure graph's
modular layout, with ≈ q link bundles between cluster pairs.

:func:`bundling_report` measures all of this on the actual graph; the
clustering uses the projective-plane coordinate partition (affine points
grouped by their first coordinate, plus the line at infinity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.star_product import StarProduct
from repro.topologies.base import Topology

__all__ = [
    "supernode_clusters",
    "BundlingReport",
    "bundling_report",
]


def supernode_clusters(q: int) -> np.ndarray:
    """Cluster id of every ER_q vertex: affine points ``(1, a, b)`` cluster
    by *a* (q clusters of q points) and the line at infinity
    ``(0, 1, a), (0, 0, 1)`` forms cluster *q* (q+1 points) — q+1 clusters
    total, mirroring the PolarFly modular layout."""
    n = q * q + q + 1
    clusters = np.empty(n, dtype=np.int64)
    clusters[: q * q] = np.repeat(np.arange(q), q)  # point (1, a, b) has id a*q+b
    clusters[q * q :] = q
    return clusters


@dataclass
class BundlingReport:
    """Measured §8 layout quantities for a star-product topology."""

    links_per_supernode_pair: int  # parallel links between adjacent supernodes
    num_bundles: int  # inter-supernode MCFs (= structure-graph edges)
    total_global_links: int  # inter-supernode links before bundling
    cable_reduction: float  # global links / MCFs
    num_clusters: int
    mean_bundles_between_clusters: float

    def __repr__(self) -> str:
        return (
            f"BundlingReport(links/pair={self.links_per_supernode_pair}, "
            f"bundles={self.num_bundles}, reduction={self.cable_reduction:.1f}x, "
            f"clusters={self.num_clusters})"
        )


def bundling_report(topology: Topology) -> BundlingReport:
    """Compute the §8 bundling metrics for a star-product based topology
    (PolarStar or Bundlefly — anything with ``meta['star']``)."""
    star: StarProduct | None = topology.meta.get("star")
    if star is None or topology.groups is None:
        raise ValueError("bundling analysis needs a star-product topology")

    groups = topology.groups
    e = topology.graph.edge_array
    cross = groups[e[:, 0]] != groups[e[:, 1]]
    total_global = int(cross.sum())

    # Parallel links per adjacent supernode pair: count per structure edge.
    pair_counts: dict[tuple[int, int], int] = {}
    for u, v in e[cross]:
        key = (int(groups[u]), int(groups[v]))
        key = (min(key), max(key))
        pair_counts[key] = pair_counts.get(key, 0) + 1
    counts = np.array(list(pair_counts.values()))
    links_per_pair = int(counts.max()) if len(counts) else 0
    num_bundles = len(pair_counts)

    # Supernode clusters (only meaningful for ER structure graphs).
    ns = star.structure.n
    q = int(round((ns - 1) ** 0.5))  # q² + q + 1 vertices -> q ≈ sqrt(ns)
    while q * q + q + 1 > ns:
        q -= 1
    is_er = q * q + q + 1 == ns
    if is_er:
        clusters = supernode_clusters(q)
        cluster_pair: dict[tuple[int, int], int] = {}
        for (g1, g2) in pair_counts:
            c1, c2 = int(clusters[g1]), int(clusters[g2])
            if c1 == c2:
                continue
            key = (min(c1, c2), max(c1, c2))
            cluster_pair[key] = cluster_pair.get(key, 0) + 1
        mean_bundles = float(np.mean(list(cluster_pair.values()))) if cluster_pair else 0.0
        num_clusters = q + 1
    else:
        mean_bundles = 0.0
        num_clusters = 0

    return BundlingReport(
        links_per_supernode_pair=links_per_pair,
        num_bundles=num_bundles,
        total_global_links=total_global,
        cable_reduction=total_global / num_bundles if num_bundles else 0.0,
        num_clusters=num_clusters,
        mean_bundles_between_clusters=mean_bundles,
    )
