"""Physical layout and bundling analysis (§8)."""

from repro.layout.modular import BundlingReport, bundling_report, supernode_clusters

__all__ = ["BundlingReport", "bundling_report", "supernode_clusters"]
