"""Traffic: the synthetic patterns of §9.4/§9.6 and the Ember-style motifs
of §10 (Allreduce, Sweep3D)."""

from repro.traffic.patterns import (
    AdversarialGroupPattern,
    BitReversePattern,
    BitShufflePattern,
    NeighborPattern,
    RandomPermutationPattern,
    TornadoPattern,
    TrafficPattern,
    TransposePattern,
    UniformRandomPattern,
)
from repro.traffic.motifs import allreduce_events, sweep3d_events
from repro.traffic.collectives import (
    alltoall_events,
    broadcast_events,
    rabenseifner_allreduce_events,
    ring_allreduce_events,
)

__all__ = [
    "TrafficPattern",
    "UniformRandomPattern",
    "RandomPermutationPattern",
    "BitShufflePattern",
    "BitReversePattern",
    "TransposePattern",
    "TornadoPattern",
    "NeighborPattern",
    "AdversarialGroupPattern",
    "allreduce_events",
    "sweep3d_events",
    "ring_allreduce_events",
    "rabenseifner_allreduce_events",
    "broadcast_events",
    "alltoall_events",
]
