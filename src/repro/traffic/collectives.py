"""Collective-communication algorithms as motif DAGs.

§10 cites Rabenseifner (2004) for Allreduce optimization; this module
provides the standard algorithm zoo so the motif engine can compare them
on any topology:

* recursive doubling (re-exported from :mod:`repro.traffic.motifs`),
* ring Allreduce (2(P-1) steps of size/P chunks — bandwidth-optimal),
* Rabenseifner's reduce-scatter + allgather (halving/doubling),
* binomial-tree broadcast,
* pairwise-exchange all-to-all.

All return :class:`~repro.traffic.motifs.Message` lists with receiver-side
dependencies, consumable by :class:`~repro.sim.motif.MotifEngine`.
"""

from __future__ import annotations

from repro.traffic.motifs import Message, allreduce_events

__all__ = [
    "recursive_doubling_allreduce",
    "ring_allreduce_events",
    "rabenseifner_allreduce_events",
    "broadcast_events",
    "alltoall_events",
]

recursive_doubling_allreduce = allreduce_events


def _pow2_floor(ranks: int) -> int:
    p2 = 1
    while p2 * 2 <= ranks:
        p2 *= 2
    return p2


def ring_allreduce_events(ranks: int, size: int = 64 * 1024, iterations: int = 1) -> list[Message]:
    """Ring Allreduce: ``2(P-1)`` steps, each rank sending a ``size/P``
    chunk to its ring successor — the bandwidth-optimal algorithm used by
    NCCL/Horovod (cited in §10.1)."""
    if ranks < 2:
        return []
    chunk = max(1, size // ranks)
    msgs: list[Message] = []
    mid = 0
    last_recv: dict[int, int] = {}
    for _ in range(iterations):
        for _step in range(2 * (ranks - 1)):
            new_last: dict[int, int] = {}
            for r in range(ranks):
                dst = (r + 1) % ranks
                deps = [last_recv[r]] if r in last_recv else []
                msgs.append(Message(mid, r, dst, chunk, deps))
                new_last[dst] = mid
                mid += 1
            last_recv = new_last
    return msgs


def rabenseifner_allreduce_events(
    ranks: int, size: int = 64 * 1024, iterations: int = 1
) -> list[Message]:
    """Rabenseifner's Allreduce: recursive-halving reduce-scatter followed
    by recursive-doubling allgather.  Message sizes halve during the
    scatter and double during the gather, so total traffic is ~2x the
    buffer instead of ``log2(P)``x."""
    p2 = _pow2_floor(ranks)
    rounds = p2.bit_length() - 1
    msgs: list[Message] = []
    mid = 0
    last_recv: dict[int, int] = {}
    for _ in range(iterations):
        # reduce-scatter: halving distances, halving sizes
        sz = size
        for r_idx in range(rounds):
            bit = 1 << r_idx
            sz = max(1, sz // 2)
            new_last: dict[int, int] = {}
            for rank in range(p2):
                partner = rank ^ bit
                deps = [last_recv[rank]] if rank in last_recv else []
                msgs.append(Message(mid, rank, partner, sz, deps))
                new_last[partner] = mid
                mid += 1
            last_recv = new_last
        # allgather: doubling distances, doubling sizes
        for r_idx in range(rounds - 1, -1, -1):
            bit = 1 << r_idx
            new_last = {}
            for rank in range(p2):
                partner = rank ^ bit
                deps = [last_recv[rank]] if rank in last_recv else []
                msgs.append(Message(mid, rank, partner, sz, deps))
                new_last[partner] = mid
                mid += 1
            last_recv = new_last
            sz = min(size, sz * 2)
    return msgs


def broadcast_events(ranks: int, size: int = 64 * 1024, root: int = 0) -> list[Message]:
    """Binomial-tree broadcast from *root*."""
    p2 = _pow2_floor(ranks)
    msgs: list[Message] = []
    mid = 0
    recv_of: dict[int, int] = {}
    # relative rank r receives in round k = position of its lowest set bit
    rounds = p2.bit_length() - 1
    for k in range(rounds - 1, -1, -1):
        bit = 1 << k
        for rel in range(0, p2, 2 * bit):
            src = (rel + root) % p2
            dst = (rel + bit + root) % p2
            deps = [recv_of[src]] if src in recv_of else []
            msgs.append(Message(mid, src, dst, size, deps))
            recv_of[dst] = mid
            mid += 1
    return msgs


def alltoall_events(ranks: int, size_per_pair: int = 4 * 1024) -> list[Message]:
    """Pairwise-exchange all-to-all: ``P-1`` rounds; in round *k* rank *r*
    exchanges with ``r XOR k`` (power-of-two ranks)."""
    p2 = _pow2_floor(ranks)
    msgs: list[Message] = []
    mid = 0
    last_recv: dict[int, int] = {}
    for k in range(1, p2):
        new_last: dict[int, int] = {}
        for rank in range(p2):
            partner = rank ^ k
            deps = [last_recv[rank]] if rank in last_recv else []
            msgs.append(Message(mid, rank, partner, size_per_pair, deps))
            new_last[partner] = mid
            mid += 1
        last_recv = new_last
    return msgs
