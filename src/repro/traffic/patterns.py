"""Synthetic traffic patterns (§9.4) and the adversarial pattern (§9.6).

A pattern supplies two views used by the two simulators:

* ``dest_endpoint(src, rng)`` — per-packet destination endpoint, consumed by
  the cycle-level simulator;
* ``router_demand(topology)`` — an ``(n, n)`` router-to-router demand matrix
  in units of *endpoint injection rate* (each endpoint offers rate 1 at full
  load), consumed by the flow-level model.

Deterministic patterns (permutation, bit shuffle/reverse, adversarial)
precompute an endpoint→endpoint map; endpoints outside the pattern's domain
(e.g. beyond the power-of-two cutoff of the bit patterns) stay idle, as in
the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.topologies.base import Topology

__all__ = [
    "TrafficPattern",
    "UniformRandomPattern",
    "RandomPermutationPattern",
    "BitShufflePattern",
    "BitReversePattern",
    "TransposePattern",
    "TornadoPattern",
    "NeighborPattern",
    "AdversarialGroupPattern",
]


class TrafficPattern(ABC):
    """Endpoint-level traffic specification for one topology."""

    name: str = "pattern"

    def __init__(self, topology: Topology):
        self.topology = topology
        self.num_endpoints = topology.num_endpoints

    @abstractmethod
    def dest_endpoint(self, src: int, rng: np.random.Generator) -> int:
        """Destination endpoint for a packet injected at endpoint *src*
        (may be ``src`` itself for idle endpoints — such packets are not
        injected)."""

    @abstractmethod
    def router_demand(self) -> np.ndarray:
        """Router-to-router offered traffic at full endpoint injection."""

    def _aggregate(self, dest_map: np.ndarray) -> np.ndarray:
        """Endpoint dest map -> router demand matrix (idle = self-mapped)."""
        n = self.topology.num_routers
        src_r = self.topology.endpoint_router
        active = dest_map != np.arange(self.num_endpoints)
        demand = np.zeros((n, n))
        np.add.at(demand, (src_r[active], src_r[dest_map[active]]), 1.0)
        np.fill_diagonal(demand, 0.0)  # router-local traffic never hits links
        return demand


class UniformRandomPattern(TrafficPattern):
    """Destination chosen uniformly at random among all other endpoints."""

    name = "uniform"

    def dest_endpoint(self, src: int, rng: np.random.Generator) -> int:
        d = int(rng.integers(0, self.num_endpoints - 1))
        return d if d < src else d + 1

    def router_demand(self) -> np.ndarray:
        counts = self.topology.endpoints_per_router.astype(float)
        total = counts.sum()
        demand = np.outer(counts, counts) / max(total - 1, 1)
        np.fill_diagonal(demand, 0.0)
        return demand


class _DeterministicPattern(TrafficPattern):
    """Shared machinery for patterns with a fixed endpoint→endpoint map."""

    def __init__(self, topology: Topology):
        super().__init__(topology)
        self.dest_map = self._build_dest_map()

    def _build_dest_map(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def dest_endpoint(self, src: int, rng: np.random.Generator) -> int:
        return int(self.dest_map[src])

    def router_demand(self) -> np.ndarray:
        return self._aggregate(self.dest_map)


class RandomPermutationPattern(_DeterministicPattern):
    """§9.4(2): a random router permutation τ; endpoint *i* of router R
    sends to endpoint *i* of router τ(R).  Only meaningful when all routers
    host equally many endpoints (direct networks)."""

    name = "permutation"

    def __init__(self, topology: Topology, seed: int = 0):
        self.seed = seed
        super().__init__(topology)

    def _build_dest_map(self) -> np.ndarray:
        topo = self.topology
        rng = np.random.default_rng(self.seed)
        counts = topo.endpoints_per_router
        hosts = np.nonzero(counts)[0]
        perm = dict(zip(hosts.tolist(), rng.permutation(hosts).tolist()))
        # endpoint slot within its router
        order = np.argsort(topo.endpoint_router, kind="stable")
        slot = np.empty(topo.num_endpoints, dtype=np.int64)
        slot_counter: dict[int, int] = {}
        first_ep: dict[int, int] = {}
        for e in order:
            r = int(topo.endpoint_router[e])
            s = slot_counter.get(r, 0)
            slot[e] = s
            slot_counter[r] = s + 1
            if s == 0:
                first_ep[r] = int(e)
        dest = np.arange(topo.num_endpoints)
        for e in range(topo.num_endpoints):
            r = int(topo.endpoint_router[e])
            tr = perm[r]
            if slot[e] < slot_counter.get(tr, 0):
                dest[e] = first_ep[tr] + slot[e]
        return dest


class _BitPattern(_DeterministicPattern):
    """Bit-mangling patterns on the largest power-of-two endpoint prefix."""

    def _bits(self) -> int:
        return int(np.log2(self.num_endpoints)) if self.num_endpoints else 0

    def _build_dest_map(self) -> np.ndarray:
        b = self._bits()
        size = 1 << b
        src = np.arange(size)
        dest_full = np.arange(self.num_endpoints)
        dest_full[:size] = self._transform(src, b)
        return dest_full

    def _transform(self, src: np.ndarray, b: int) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


class BitShufflePattern(_BitPattern):
    """§9.4(3): d_i = s_{(i-1) mod b} — rotate the address bits left by 1."""

    name = "bitshuffle"

    def _transform(self, src: np.ndarray, b: int) -> np.ndarray:
        if b == 0:
            return src
        mask = (1 << b) - 1
        return ((src << 1) & mask) | (src >> (b - 1))


class BitReversePattern(_BitPattern):
    """§9.4(4): d_i = s_{b-i-1} — reverse the address bits."""

    name = "bitreverse"

    def _transform(self, src: np.ndarray, b: int) -> np.ndarray:
        out = np.zeros_like(src)
        for i in range(b):
            out |= ((src >> i) & 1) << (b - 1 - i)
        return out


class TransposePattern(_BitPattern):
    """Matrix-transpose traffic: swap the high and low halves of the address
    bits (d_i = s_{(i + b/2) mod b}).  A classic Booksim pattern; included
    beyond the paper's four for completeness."""

    name = "transpose"

    def _transform(self, src: np.ndarray, b: int) -> np.ndarray:
        half = b // 2
        mask = (1 << b) - 1
        return ((src << half) | (src >> (b - half))) & mask


class TornadoPattern(_DeterministicPattern):
    """Tornado traffic: endpoint *i* sends to ``(i + E/2 - 1) mod E`` —
    the classic worst case for rings/tori, a useful stressor here too."""

    name = "tornado"

    def _build_dest_map(self) -> np.ndarray:
        e = self.num_endpoints
        if e < 2:
            return np.arange(e)
        return (np.arange(e) + e // 2 - 1) % e


class NeighborPattern(_DeterministicPattern):
    """Nearest-neighbor traffic: endpoint *i* sends to ``i + 1`` (wrap).
    Represents stencil exchanges with a linear rank mapping."""

    name = "neighbor"

    def _build_dest_map(self) -> np.ndarray:
        e = self.num_endpoints
        return (np.arange(e) + 1) % e if e > 1 else np.arange(e)


class AdversarialGroupPattern(_DeterministicPattern):
    """§9.6: every endpoint of group *g* sends to the paired endpoint in one
    single other group, chosen at maximal hierarchical distance (structure
    distance 2 for star products) so that minimal paths are as long and as
    global-link-hungry as possible."""

    name = "adversarial"

    def __init__(self, topology: Topology, offset: int | None = None):
        if topology.groups is None:
            raise ValueError("adversarial pattern needs a hierarchical topology")
        self.offset = offset
        super().__init__(topology)

    def _target_group(self, g: int) -> int:
        topo = self.topology
        ng = topo.num_groups
        star = topo.meta.get("star")
        if star is not None:
            # Prefer a supernode at structure distance 2 (worst case §9.6).
            from repro.analysis.distances import bfs_distances

            d = bfs_distances(star.structure, g)
            far = np.nonzero(d == 2)[0]
            if len(far):
                return int(far[(g + (self.offset or 1)) % len(far)])
        return (g + (self.offset or ng // 2)) % ng

    def _build_dest_map(self) -> np.ndarray:
        topo = self.topology
        dest = np.arange(topo.num_endpoints)
        target = {g: self._target_group(g) for g in range(topo.num_groups)}

        # endpoints grouped by group, in id order; pair positionally.
        group_eps: dict[int, list[int]] = {g: [] for g in range(topo.num_groups)}
        for e in range(topo.num_endpoints):
            group_eps[int(topo.groups[topo.endpoint_router[e]])].append(e)
        for g, eps in group_eps.items():
            tgt_eps = group_eps[target[g]]
            if not tgt_eps:
                continue
            for i, e in enumerate(eps):
                dest[e] = tgt_eps[i % len(tgt_eps)]
        return dest
