"""Real-world communication motifs (§10): Allreduce and Sweep3D.

These mirror the Ember communication-pattern library used with SST: a motif
is a DAG of :class:`Message` objects; a message may start only after all of
its dependency messages have been delivered (receiver-side dependencies —
this is what makes Sweep3D a *wavefront*).

Process IDs map linearly onto endpoints, as in §10.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Message",
    "allreduce_events",
    "sweep3d_events",
]


@dataclass
class Message:
    """One point-to-point transfer in a motif DAG."""

    id: int
    src: int  # rank
    dst: int  # rank
    size: int  # bytes
    deps: list[int] = field(default_factory=list)  # message ids


def allreduce_events(ranks: int, size: int = 64 * 1024, iterations: int = 1) -> list[Message]:
    """Recursive-doubling Allreduce (Rabenseifner 2004's baseline scheme).

    ``log2(P)`` rounds; in round *r* each rank exchanges the full buffer
    with ``rank XOR 2^r``.  A rank's round-*r* send depends on its round-
    ``r-1`` receive; iterations chain end-to-end.  Non-power-of-two rank
    counts truncate to the largest power of two (extra ranks idle), the
    standard simplification.
    """
    p2 = 1
    while p2 * 2 <= ranks:
        p2 *= 2
    msgs: list[Message] = []
    last_recv: dict[int, int] = {}  # rank -> id of last message it received
    mid = 0
    rounds = p2.bit_length() - 1
    for _ in range(iterations):
        for r in range(rounds):
            bit = 1 << r
            new_last: dict[int, int] = {}
            for rank in range(p2):
                partner = rank ^ bit
                deps = [last_recv[rank]] if rank in last_recv else []
                msgs.append(Message(mid, rank, partner, size, deps))
                new_last[partner] = mid
                mid += 1
            last_recv = new_last
    return msgs


def sweep3d_events(
    nx: int,
    ny: int,
    size: int = 32 * 1024,
    iterations: int = 1,
    corners: tuple[str, ...] = ("nw", "se"),
) -> list[Message]:
    """Sweep3D wavefront on an ``nx x ny`` process grid (§10.1).

    Each sweep starts at a corner and moves diagonally: a rank forwards to
    its two downstream neighbors only after hearing from both upstream
    neighbors.  Alternating corners per iteration reproduces the
    back-and-forth sweeps of the kernel.  Rank of cell (i, j) is
    ``i * ny + j`` (linear mapping).
    """
    directions = {
        "nw": (1, 1),
        "se": (-1, -1),
        "ne": (-1, 1),
        "sw": (1, -1),
    }
    msgs: list[Message] = []
    mid = 0
    # last message received by each rank (for cross-sweep chaining)
    last_recv: dict[int, list[int]] = {}

    def rank(i: int, j: int) -> int:
        return i * ny + j

    for it in range(iterations):
        di, dj = directions[corners[it % len(corners)]]
        incoming: dict[int, list[int]] = {}
        order_i = range(nx) if di > 0 else range(nx - 1, -1, -1)
        order_j = range(ny) if dj > 0 else range(ny - 1, -1, -1)
        new_last: dict[int, list[int]] = {}
        for i in order_i:
            for j in order_j:
                src = rank(i, j)
                deps = incoming.get(src, [])
                if not deps:  # sweep source corner waits for previous sweep
                    deps = last_recv.get(src, [])
                for ni, nj in ((i + di, j), (i, j + dj)):
                    if 0 <= ni < nx and 0 <= nj < ny:
                        dst = rank(ni, nj)
                        msgs.append(Message(mid, src, dst, size, list(deps)))
                        incoming.setdefault(dst, []).append(mid)
                        new_last.setdefault(dst, []).append(mid)
                        mid += 1
        last_recv = new_last
    return msgs
