"""Paley graphs (Table 2's alternative supernode; also a Fig. 4 family).

For a prime power ``q ≡ 1 (mod 4)`` the Paley graph has vertex set
:math:`GF(q)` with ``x ~ y`` iff ``x - y`` is a nonzero quadratic residue
(the condition ``q ≡ 1 mod 4`` makes -1 a residue, hence the relation
symmetric).  Degree is ``(q-1)/2``, so as a supernode of degree ``d'`` it
has ``2d' + 1`` vertices — one fewer than Inductive-Quad.

Paley graphs have **Property R_1**: with ``f(x) = ν·x`` for any non-residue
``ν``, ``f`` maps residue differences to non-residue differences, so
``E ∪ f(E)`` is the complete graph, and ``f²`` (multiplication by the
residue ``ν²``) is an automorphism.  This is the Theorem 5 route to a
diameter-3 star product (PS-Paley).
"""

from __future__ import annotations

import numpy as np

from repro.fields import GF, is_prime_power
from repro.graphs.base import Graph

__all__ = [
    "paley_graph",
    "paley_feasible_degrees",
    "paley_order",
]


def paley_graph(q: int) -> tuple[Graph, np.ndarray]:
    """Build the Paley graph on ``q`` vertices plus its R_1 bijection.

    Returns
    -------
    (graph, f):
        ``f[x] = ν·x`` for the smallest-coded non-residue ``ν``.  Note ``f``
        is a bijection but *not* an involution (``f²`` is an automorphism).
    """
    if not is_prime_power(q) or q % 4 != 1:
        raise ValueError(f"Paley graph needs a prime power q ≡ 1 (mod 4), got {q}")
    field = GF(q)

    elems = np.arange(q)
    diffs = field.sub(elems[:, None], elems[None, :])
    adjacency = field.is_square(diffs)
    rows, cols = np.nonzero(adjacency)
    mask = rows < cols
    edges = np.stack([rows[mask], cols[mask]], axis=1)

    non_residues = np.setdiff1d(elems[1:], field.squares)
    nu = int(non_residues[0])
    f = field.mul(nu, elems).astype(np.int64)

    return Graph(q, edges, name=f"Paley_{q}"), f


def paley_feasible_degrees(max_degree: int) -> list[int]:
    """Even degrees ``d' <= max_degree`` with ``2d' + 1`` a prime power
    ``≡ 1 (mod 4)`` (Table 2 feasibility row)."""
    out = []
    for d in range(0, max_degree + 1, 2):
        q = 2 * d + 1
        if q >= 5 and is_prime_power(q) and q % 4 == 1:
            out.append(d)
    return out


def paley_order(degree: int) -> int:
    """Order of the degree-``d'`` Paley graph: ``2d' + 1``."""
    return 2 * degree + 1
