"""Kautz graphs (Fig. 1 baseline).

The Kautz graph ``K(d, n)`` is the directed graph whose vertices are
length-``n`` strings over an alphabet of ``d + 1`` symbols with no two
consecutive symbols equal; ``s_1..s_n -> s_2..s_n t`` for every valid
``t``.  It has ``(d+1)·d^{n-1}`` vertices, out-degree ``d`` and directed
diameter ``n`` — near the directed Moore bound.

The paper compares against *bidirectional* Kautz (every link cabled as a
bidirectional pair), which doubles the network radix to ``2d``; for
diameter 3 the asymptotic Moore-bound efficiency is then < 13%.
"""

from __future__ import annotations

from itertools import product

from repro.graphs.base import Graph

__all__ = [
    "kautz_order",
    "kautz_graph",
]


def kautz_order(d: int, n: int) -> int:
    """Number of vertices of ``K(d, n)``: ``(d+1) * d**(n-1)``."""
    return (d + 1) * d ** (n - 1)


def kautz_graph(d: int, n: int) -> Graph:
    """Undirected (bidirectionalized) Kautz graph ``K(d, n)``.

    Each directed arc becomes an undirected edge; vertex degree is at most
    ``2d`` (an arc and its reverse, when both exist, merge into one edge).
    """
    if d < 1 or n < 1:
        raise ValueError("Kautz graph needs d >= 1, n >= 1")
    # Enumerate vertices: first symbol from d+1 choices, each next symbol
    # any of the d symbols different from its predecessor.
    verts: list[tuple[int, ...]] = []
    for first in range(d + 1):
        for rest in product(range(d), repeat=n - 1):
            s = [first]
            for r in rest:
                # map 0..d-1 onto symbols != previous
                nxt = r if r < s[-1] else r + 1
                s.append(nxt)
            verts.append(tuple(s))
    index = {v: i for i, v in enumerate(verts)}

    edges = []
    for v, i in index.items():
        suffix = v[1:]
        for t in range(d + 1):
            if t == v[-1]:
                continue
            w = suffix + (t,)
            j = index[w]
            if i != j:
                edges.append((min(i, j), max(i, j)))
    return Graph(len(verts), edges, name=f"Kautz({d},{n})")
