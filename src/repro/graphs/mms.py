"""McKay–Miller–Širáň (MMS) diameter-2 graphs.

These are the largest known diameter-2 graphs after :math:`ER_q` (Fig. 4)
and are the *structure graph* of Bundlefly (Lei et al. 2020), PolarStar's
closest competitor.

We use the Hafner-style affine presentation.  Vertices are two copies of
:math:`\\mathbb{F}_q^2`: "points" ``P(x, y)`` and "lines" ``L(m, c)``.

* ``P(x,y) ~ P(x,y')``  iff ``y - y' ∈ S_P``   (within a column),
* ``L(m,c) ~ L(m,c')``  iff ``c - c' ∈ S_L``   (within a slope class),
* ``P(x,y) ~ L(m,c)``   iff ``y = m·x + c``    (incidence).

Diameter 2 holds whenever (i) ``S_P ∪ S_L = F_q \\ {0}`` (covers the
point-to-line non-incident case), and (ii) each Cayley graph
``(F_q, S_P)``, ``(F_q, S_L)`` has diameter ≤ 2 (within-class case); the
cross-class cases are covered by unique incidence.  We realize the three
residue classes of the classic construction:

* ``q ≡ 1 (mod 4)``: ``S_P`` = quadratic residues, ``S_L`` = non-residues
  (both symmetric since −1 is a residue); degree ``(3q−1)/2``.
* ``q ≡ 3 (mod 4)``: symmetric sets must have even size, so an exact
  partition of the ``q−1`` nonzero elements is impossible; we take
  ``±``-pair splits overlapping in one pair; degree ``(3q+1)/2``.
* ``q = 2^k``: ``S_P`` = the nontrivial coset of a hyperplane (index-2
  subgroup), ``S_L`` = the hyperplane's nonzero elements plus one element
  of the coset; degree ``3q/2``.

Order is ``2q²`` in all cases.  Tests verify diameter 2 directly.
"""

from __future__ import annotations

import numpy as np

from repro.fields import GF, is_prime_power, prime_power_root
from repro.graphs.base import Graph

__all__ = [
    "mms_degree",
    "mms_order",
    "mms_feasible_degrees",
    "mms_graph",
]


def mms_degree(q: int) -> int:
    """Network degree of the MMS graph on ``2q²`` vertices."""
    if q % 2 == 0:
        return 3 * q // 2
    return (3 * q - 1) // 2 if q % 4 == 1 else (3 * q + 1) // 2


def mms_order(q: int) -> int:
    """Order of the MMS graph: 2q²."""
    return 2 * q * q


def mms_feasible_degrees(max_degree: int) -> list[tuple[int, int]]:
    """All ``(q, degree)`` pairs with ``degree <= max_degree``."""
    out = []
    q = 2
    while True:
        if mms_degree(q) > max_degree:
            break
        if is_prime_power(q):
            out.append((q, mms_degree(q)))
        q += 1
    return out


def _connection_sets(field: GF) -> tuple[np.ndarray, np.ndarray]:
    """Choose symmetric ``S_P``, ``S_L`` with union ``F_q \\ {0}`` per the
    residue-class rules in the module docstring."""
    q = field.q
    nonzero = np.arange(1, q)
    if q % 2 == 0:
        # F_{2^k}: elements are k-bit vectors; hyperplane = "last bit 0",
        # i.e. codes < q/2 (the top base-2 digit of the code is the top
        # polynomial coefficient).
        coset = nonzero[nonzero >= q // 2]
        hyper = nonzero[nonzero < q // 2]
        s_p = coset
        s_l = np.concatenate([hyper, coset[:1]])
        return s_p, np.sort(s_l)
    if q % 4 == 1:
        s_p = field.squares
        s_l = np.setdiff1d(nonzero, s_p)
        return s_p, s_l
    # q ≡ 3 (mod 4): split the (q−1)/2 ±-pairs, sharing exactly one pair.
    pairs = []
    seen = set()
    for t in range(1, q):
        if t in seen:
            continue
        nt = int(field.neg(t))
        seen.update((t, nt))
        pairs.append((t, nt))
    half = (len(pairs) + 1) // 2  # ceil: both sides get ceil with one shared
    s_p_pairs = pairs[:half]
    s_l_pairs = pairs[half - 1 :]  # share pair index half-1
    s_p = np.sort(np.array([v for pr in s_p_pairs for v in pr]))
    s_l = np.sort(np.array([v for pr in s_l_pairs for v in pr]))
    return s_p, s_l


def mms_graph(q: int) -> Graph:
    """Build the MMS graph for prime power ``q >= 3`` (order ``2q²``)."""
    if not is_prime_power(q):
        raise ValueError(f"MMS graph needs a prime power q, got {q}")
    if q < 3:
        raise ValueError("MMS construction needs q >= 3")
    prime_power_root(q)  # validates
    field = GF(q)
    s_p, s_l = _connection_sets(field)

    # Vertex ids: points P(x, y) -> x*q + y; lines L(m, c) -> q² + m*q + c.
    def pid(x, y):
        return x * q + y

    def lid(m, c):
        return q * q + m * q + c

    edges: list[tuple[int, int]] = []

    # Within-column / within-slope edges (Cayley structure on F_q).
    ys = np.arange(q)
    for delta in s_p:
        y2 = field.add(ys, int(delta))
        mask = ys < y2  # each undirected edge once
        for x in range(q):
            edges.extend(zip(pid(x, ys[mask]), pid(x, y2[mask])))
    for delta in s_l:
        c2 = field.add(ys, int(delta))
        mask = ys < c2
        for m in range(q):
            edges.extend(zip(lid(m, ys[mask]), lid(m, c2[mask])))

    # Incidence edges: P(x, y) ~ L(m, c) with y = m*x + c.
    for m in range(q):
        for x in range(q):
            mx = int(field.mul(m, x))
            c = field.sub(ys, mx)  # c = y - m*x for every y
            edges.extend(zip(pid(x, ys), lid(m, c)))

    return Graph(2 * q * q, edges, name=f"MMS_{q}")
