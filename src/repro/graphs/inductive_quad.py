"""Inductive-Quad supernode graphs :math:`IQ_{d'}` (§6.2.1 of the paper).

The paper's new supernode family: for every degree ``d' ≡ 0 or 3 (mod 4)``
there is a graph with ``2d' + 2`` vertices and an embedded fixed-point-free
involution *f* satisfying **Property R\\***, which is the maximum order any
R\\* graph can have (Proposition 2).  Construction is inductive:

* ``IQ_0``: two isolated vertices swapped by *f*;
* ``IQ_3``: eight vertices of degree 3 (see below);
* step: given ``IQ_d`` partitioned into representative sets ``A`` and
  ``f(A)``, glue in a fresh copy of ``IQ_3`` and join two of its f-pairs to
  every vertex of ``A`` and the other two f-pairs to every vertex of
  ``f(A)``, producing ``IQ_{d+4}``.

Property R\\* for an involution *f* is equivalent to: ``E ∪ f(E)`` covers
every vertex pair except the matching ``{v, f(v)}``.  Our hard-coded
``IQ_3`` instance satisfies this by construction — ``E`` picks exactly one
edge from each orbit of *f* acting on the 24 edges of ``K_8`` minus the
matching, chosen so the result is 3-regular.  Tests verify the property
directly for every generated degree.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import Graph

__all__ = [
    "IQ3_EDGES",
    "iq_feasible_degrees",
    "inductive_quad",
    "iq_order",
]

#: Edges of the base degree-3 Inductive-Quad graph on vertices 0..7 with
#: involution f(i) = i XOR 1.  One edge chosen from each f-orbit of
#: K8-minus-matching such that the graph is 3-regular (verified in tests).
IQ3_EDGES: tuple[tuple[int, int], ...] = (
    (0, 2),
    (0, 6),
    (0, 7),
    (1, 2),
    (1, 4),
    (1, 5),
    (2, 4),
    (3, 4),
    (3, 6),
    (3, 7),
    (5, 6),
    (5, 7),
)


def iq_feasible_degrees(max_degree: int) -> list[int]:
    """Degrees ``<= max_degree`` for which an Inductive-Quad graph exists
    (``d' ≡ 0 or 3 (mod 4)``, Proposition 2)."""
    return [d for d in range(max_degree + 1) if d % 4 in (0, 3)]


def inductive_quad(degree: int) -> tuple[Graph, np.ndarray]:
    """Build :math:`IQ_{degree}` and its involution.

    Returns
    -------
    (graph, f):
        ``graph`` has ``2*degree + 2`` vertices; ``f`` is an integer array
        with ``f[f[v]] == v`` and ``f[v] != v`` implementing the Property-R*
        bijection.
    """
    # Python's modulo makes -1 % 4 == 3, so the residue test alone would
    # silently accept negative degrees; guard nonnegativity explicitly.
    if degree < 0 or degree % 4 not in (0, 3):
        raise ValueError(
            f"Inductive-Quad exists only for degree >= 0 with "
            f"degree ≡ 0 or 3 (mod 4), got {degree}"
        )

    if degree % 4 == 0:
        n, edges, f = 2, [], [1, 0]
        base_degree = 0
    else:
        n = 8
        edges = list(IQ3_EDGES)
        f = [v ^ 1 for v in range(8)]
        base_degree = 3

    for _ in range((degree - base_degree) // 4):
        # Representatives: one endpoint of each f-pair of the current graph.
        rep = [v for v in range(n) if v < f[v]]
        a_side = np.array(rep)
        fa_side = np.array([f[v] for v in rep])

        # Fresh IQ3 copy on vertices n..n+7.
        edges.extend((n + u, n + v) for u, v in IQ3_EDGES)
        f.extend(n + (i ^ 1) for i in range(8))

        # Two f-pairs of the copy join A, the other two join f(A).
        group_a = (n + 0, n + 1, n + 4, n + 5)
        group_fa = (n + 2, n + 3, n + 6, n + 7)
        for g in group_a:
            edges.extend((g, int(v)) for v in a_side)
        for g in group_fa:
            edges.extend((g, int(v)) for v in fa_side)
        n += 8

    graph = Graph(n, edges, name=f"IQ_{degree}")
    return graph, np.array(f, dtype=np.int64)


def iq_order(degree: int) -> int:
    """Order of :math:`IQ_{d'}`: ``2d' + 2`` (meets the R* bound)."""
    return 2 * degree + 2
