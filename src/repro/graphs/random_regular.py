"""Random regular graphs — the Jellyfish topology substrate (Fig. 12).

Jellyfish (Singla et al. 2012) wires switches as a uniform random regular
graph.  Whole-graph rejection sampling of the configuration model fails
with probability ``1 - e^{-Θ(d²)}`` per attempt, so we delegate to
NetworkX's pairwise-repair sampler and retry (bumping the seed) until the
sample is connected — which at the degrees used here is almost always the
first draw.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.graphs.base import Graph

__all__ = [
    "random_regular_graph",
]


def random_regular_graph(n: int, degree: int, seed: int = 0, max_tries: int = 20) -> Graph:
    """Sample a simple connected ``degree``-regular graph on *n* vertices.

    ``n * degree`` must be even and ``degree < n``.  Deterministic for a
    given *seed*.
    """
    if n * degree % 2 != 0:
        raise ValueError("n * degree must be even")
    if degree >= n:
        raise ValueError("degree must be < n")
    for attempt in range(max_tries):
        nxg = nx.random_regular_graph(degree, n, seed=seed + attempt)
        if nx.is_connected(nxg):
            edges = np.array(sorted(tuple(sorted(e)) for e in nxg.edges()), dtype=np.int64)
            return Graph(n, edges, name=f"RandomRegular({n},{degree})")
    raise RuntimeError(
        f"failed to sample a connected {degree}-regular graph on {n} vertices"
    )
