"""Erdős–Rényi polarity graphs :math:`ER_q` (§6.1 of the paper).

Vertices are the points of the projective plane :math:`PG(2, q)` —
left-normalized nonzero triples over :math:`GF(q)` — and two vertices are
adjacent iff their dot product (over the field) vanishes.  Order is
:math:`q^2 + q + 1`; non-quadric vertices have degree ``q + 1``, and the
``q + 1`` self-orthogonal *quadric* vertices have degree ``q`` plus a
self-loop.

With self-loops admitted as path edges, :math:`ER_q` has **Property R**
(Theorem 1): every vertex pair is joined by a walk of length exactly 2,
via the "cross-product" vertex.  This is what the PolarStar star product
exploits for its diameter-3 guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.fields import GF, is_prime_power
from repro.graphs.base import Graph

__all__ = [
    "projective_points",
    "er_polarity_graph",
    "er_order",
    "er_degree",
]


def projective_points(q: int) -> np.ndarray:
    """All left-normalized points of PG(2, q) as an ``(q*q+q+1, 3)`` array.

    Points appear in the canonical order ``(1, a, b)``, then ``(0, 1, a)``,
    then ``(0, 0, 1)``; entries are field-element codes (see
    :mod:`repro.fields.gf`).
    """
    a, b = np.meshgrid(np.arange(q), np.arange(q), indexing="ij")
    affine = np.stack(
        [np.ones(q * q, dtype=np.int64), a.ravel(), b.ravel()], axis=1
    )
    line = np.stack(
        [np.zeros(q, dtype=np.int64), np.ones(q, dtype=np.int64), np.arange(q)], axis=1
    )
    infinity = np.array([[0, 0, 1]], dtype=np.int64)
    return np.concatenate([affine, line, infinity])


def er_polarity_graph(q: int, block_rows: int = 512) -> Graph:
    """Build :math:`ER_q` for a prime power *q*.

    The all-pairs orthogonality test is evaluated in row blocks of the
    ``N x N`` dot-product matrix to bound peak memory (``N`` is ~16k at the
    largest radix we sweep).

    Returns a :class:`Graph` whose ``self_loops`` are the quadric vertices.
    """
    if not is_prime_power(q):
        raise ValueError(f"ER_q needs a prime power q, got {q}")
    if block_rows < 1:
        raise ValueError(f"block_rows must be positive, got {block_rows}")
    field = GF(q)
    pts = projective_points(q)
    n = len(pts)

    edges: list[np.ndarray] = []
    loops: list[np.ndarray] = []
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        # (block, N) field dot products via table gathers.
        dots = field.dot3(pts[start:stop, None, :], pts[None, :, :])
        rows, cols = np.nonzero(dots == 0)
        rows = rows + start
        mask = rows < cols
        edges.append(np.stack([rows[mask], cols[mask]], axis=1))
        loops.append(rows[rows == cols])
    edge_arr = np.concatenate(edges)
    loop_arr = np.concatenate(loops)

    return Graph(n, edge_arr, loop_arr, name=f"ER_{q}")


def er_order(q: int) -> int:
    """Order of :math:`ER_q` (``q^2 + q + 1``)."""
    return q * q + q + 1


def er_degree(q: int) -> int:
    """Network degree of :math:`ER_q`: ``q + 1``.

    Quadric vertices have ``q`` graph neighbors, but in PolarStar their
    self-loop becomes a real link (intra-supernode matching), so the uniform
    switch radix contribution is ``q + 1`` for every vertex.
    """
    return q + 1
