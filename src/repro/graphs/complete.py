"""Complete-graph supernodes (Table 2).

:math:`K_{d'+1}` trivially satisfies R* (with the identity involution every
pair is an edge) and R_1, and provides dense local neighborhoods — the
Dragonfly group structure is exactly a complete-graph supernode.  Order is
only ``d' + 1``, half of what Paley/IQ achieve.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import Graph

__all__ = [
    "complete_graph",
    "complete_supernode",
]


def complete_graph(n: int) -> Graph:
    """The complete graph :math:`K_n` (``n >= 1``)."""
    if n < 1:
        raise ValueError(f"complete graph needs n >= 1, got {n}")
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return Graph(n, edges, name=f"K_{n}")


def complete_supernode(degree: int) -> tuple[Graph, np.ndarray]:
    """:math:`K_{d'+1}` with the identity bijection (Property R* holds:
    every distinct pair is an edge, so cases (a)/(c) always apply)."""
    g = complete_graph(degree + 1)
    return g, np.arange(degree + 1, dtype=np.int64)
