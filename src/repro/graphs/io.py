"""Graph serialization: edge-list and DOT export, edge-list import.

Deployment tooling (caburic generators, SST/Booksim configs, visualization)
consumes plain edge lists; these helpers round-trip :class:`Graph` objects
including self-loop markers.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graphs.base import Graph

__all__ = [
    "write_edgelist",
    "read_edgelist",
    "write_dot",
]


def write_edgelist(graph: Graph, path: str | Path) -> None:
    """Write ``u v`` lines (plus ``v v`` lines for self-loops) with a header
    comment recording order and name."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"# {graph.name} n={graph.n} m={graph.m} loops={len(graph.self_loops)}\n")
        for u, v in graph.edges():
            fh.write(f"{u} {v}\n")
        for v in graph.self_loops:
            fh.write(f"{v} {v}\n")


def read_edgelist(path: str | Path, name: str | None = None) -> Graph:
    """Inverse of :func:`write_edgelist`."""
    path = Path(path)
    edges = []
    loops = []
    n_header = None
    graph_name = name or path.stem
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            for token in line.split():
                if token.startswith("n="):
                    n_header = int(token[2:])
            continue
        u, v = map(int, line.split())
        if u == v:
            loops.append(u)
        else:
            edges.append((u, v))
    arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    max_seen = int(max(arr.max(initial=-1), max(loops, default=-1)))
    n = n_header if n_header is not None else max_seen + 1
    return Graph(n, arr, loops, name=graph_name)


def write_dot(graph: Graph, path: str | Path, groups=None) -> None:
    """GraphViz DOT export; optional per-vertex group ids become colors."""
    path = Path(path)
    lines = [f'graph "{graph.name}" {{']
    if groups is not None:
        palette = ["lightblue", "lightgreen", "salmon", "gold", "plum", "gray"]
        for v in range(graph.n):
            color = palette[int(groups[v]) % len(palette)]
            lines.append(f'  {v} [style=filled, fillcolor={color}];')
    for u, v in graph.edges():
        lines.append(f"  {u} -- {v};")
    for v in graph.self_loops:
        lines.append(f"  {v} -- {v};")
    lines.append("}")
    path.write_text("\n".join(lines) + "\n")
