"""Checkers for the factor-graph properties of §5 (R, R*, R_1).

These are used both by the test suite (verifying Theorem 1, Proposition 2,
and the Paley R_1 claim) and by the design-space machinery to validate any
user-supplied factor graph before building a star product with it.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import Graph

__all__ = [
    "has_property_r",
    "has_property_rstar",
    "has_property_r1",
    "rstar_order_bound",
]


def _dense_adjacency(g: Graph, with_self_loops: bool) -> np.ndarray:
    a = np.zeros((g.n, g.n), dtype=bool)
    e = g.edge_array
    if len(e):
        a[e[:, 0], e[:, 1]] = True
        a[e[:, 1], e[:, 0]] = True
    if with_self_loops and len(g.self_loops):
        a[g.self_loops, g.self_loops] = True
    return a


def has_property_r(g: Graph, diameter: int) -> bool:
    """Property R: every vertex pair is joined by a *walk* of length exactly
    ``diameter``, self-loops permitted as walk edges.

    Checked by boolean matrix power; O(D · n³) with tiny constants, intended
    for factor graphs (n up to a few thousand).
    """
    a = _dense_adjacency(g, with_self_loops=True)
    walk = a.copy()
    for _ in range(diameter - 1):
        walk = (walk.astype(np.uint8) @ a.astype(np.uint8)) > 0
    off_diag = walk | np.eye(g.n, dtype=bool)
    return bool(off_diag.all())


def has_property_rstar(g: Graph, f: np.ndarray) -> bool:
    """Property R*: *f* is an involution and every pair ``x != y`` satisfies
    ``y == f(x)`` or ``(x,y) ∈ E`` or ``(f(x),f(y)) ∈ E``."""
    f = np.asarray(f)
    if not np.array_equal(f[f], np.arange(g.n)):
        return False
    a = _dense_adjacency(g, with_self_loops=False)
    covered = a | a[np.ix_(f, f)]
    covered[np.arange(g.n), np.arange(g.n)] = True
    covered[np.arange(g.n), f] = True
    return bool(covered.all())


def has_property_r1(g: Graph, f: np.ndarray) -> bool:
    """Property R_1: *f* is a bijection, ``f²`` is an automorphism of the
    graph, and ``E ∪ f(E)`` is the complete graph."""
    f = np.asarray(f)
    if sorted(f.tolist()) != list(range(g.n)):
        return False
    a = _dense_adjacency(g, with_self_loops=False)
    f2 = f[f]
    if not np.array_equal(a, a[np.ix_(f2, f2)]):
        return False
    covered = a | a[np.ix_(_inverse_perm(f), _inverse_perm(f))]
    covered[np.arange(g.n), np.arange(g.n)] = True
    return bool(covered.all())


def _inverse_perm(f: np.ndarray) -> np.ndarray:
    inv = np.empty_like(f)
    inv[f] = np.arange(len(f))
    return inv


def rstar_order_bound(degree: int) -> int:
    """Proposition 2: an R* graph of degree ``d'`` has at most ``2d'+2``
    vertices."""
    return 2 * degree + 2
