"""BDF supernodes — order ``2d'`` graphs with Property R* (Table 2).

Bermond, Delorme and Farhi (1982) used supernodes of order ``2d'`` in their
star products; PolarStar's Inductive-Quad improves this to ``2d' + 2``.
The 1982 construction is not reproduced verbatim here (the paper is not
machine-readable); instead we give our own explicit order-``2d'`` family
with an embedded fixed-point-free involution satisfying Property R*, which
is what Table 2 and the star-product machinery actually require.

Construction.  Vertices come in ``d'`` *blocks* of two, the involution *f*
swapping each block.  Property R* (for an involution) says ``E ∪ f(E)``
must cover every cross-block pair, so we pick exactly one edge from each
orbit of *f* acting on cross-block pairs, plus the block matching itself.
Choosing one edge per orbit so the result is regular amounts to orienting
the complete block graph :math:`K_{d'}` with all in-degrees even, which is
possible iff :math:`\\binom{d'}{2}` is even, i.e. ``d' ≡ 0 or 1 (mod 4)``.
For other degrees this scheme provably cannot be regular, and we raise —
the Table 2 comparison uses the order formula, which is unaffected.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import Graph

__all__ = [
    "bdf_feasible_degrees",
    "bdf_supernode",
    "bdf_order",
]


def _even_indegree_tournament(k: int) -> list[tuple[int, int]]:
    """Orient K_k so every in-degree is even (needs C(k,2) even).

    Returns arcs ``(winner, loser)``; the loser is the block the pair
    "unbalances" in the BDF edge-selection below.
    """
    if (k * (k - 1) // 2) % 2 != 0:
        raise ValueError(f"no all-even-indegree orientation of K_{k}")
    if k % 4 == 1:
        # Rotational tournament: i beats i+1 .. i+(k-1)/2; in-degree (k-1)/2,
        # which is even exactly when k ≡ 1 (mod 4).
        return [
            ((j - d) % k, j)
            for j in range(k)
            for d in range(1, (k - 1) // 2 + 1)
        ]
    # k ≡ 0 (mod 4): rotational tournament on k-1 ≡ 3 (mod 4) vertices has odd
    # in-degrees ((k-2)/2); a final vertex beating everyone fixes all parities.
    arcs = [
        ((j - d) % (k - 1), j)
        for j in range(k - 1)
        for d in range(1, (k - 2) // 2 + 1)
    ]
    arcs.extend((k - 1, j) for j in range(k - 1))
    return arcs


def bdf_feasible_degrees(max_degree: int) -> list[int]:
    """Degrees for which our explicit regular BDF construction exists."""
    return [d for d in range(1, max_degree + 1) if d % 4 in (0, 1)]


def bdf_supernode(degree: int) -> tuple[Graph, np.ndarray]:
    """Order-``2*degree`` regular graph with Property R* and its involution.

    Only ``degree ≡ 0 or 1 (mod 4)`` is constructible in this scheme (see
    module docstring); ``bdf_order`` still reports the Table 2 order for any
    degree.
    """
    # -3 % 4 == 1 in Python: require positivity before the residue test.
    if degree < 1 or degree % 4 not in (0, 1):
        raise ValueError(
            f"regular BDF construction implemented for degree >= 1 with "
            f"degree ≡ 0,1 (mod 4); got {degree}"
        )
    k = degree
    n = 2 * k
    # Vertices: block i -> {2i, 2i+1}; involution swaps within a block.
    f = np.arange(n) ^ 1
    edges: list[tuple[int, int]] = [(2 * i, 2 * i + 1) for i in range(k)]
    if k == 1:
        return Graph(n, edges, name=f"BDF_{degree}"), f

    arcs = _even_indegree_tournament(k)
    # For each block pair, pick one edge from each of the two f-orbits so
    # that the "loser" block takes a 2/0 degree split and the winner a 1/1
    # split; alternate which loser vertex doubles so degrees balance.
    double_toggle = [0] * k
    for winner, loser in arcs:
        a, a2 = 2 * winner, 2 * winner + 1
        b = 2 * loser + double_toggle[loser]
        double_toggle[loser] ^= 1
        # Orbits between blocks {a,a2},{b,b^1}: {(a,b),(a2,b^1)} and
        # {(a,b^1),(a2,b)}; picking (a,b) and (a2,b) doubles vertex b.
        edges.append((a, b))
        edges.append((a2, b))
    return Graph(n, edges, name=f"BDF_{degree}"), f


def bdf_order(degree: int) -> int:
    """Order of the BDF supernode: ``2d'`` (Table 2)."""
    return 2 * degree
