"""Core undirected-graph container.

A deliberately small, NumPy-backed graph type.  Vertices are integers
``0..n-1``; the adjacency structure is stored in CSR form (``indptr`` /
``indices``) so BFS sweeps, degree queries and conversion to
:mod:`scipy.sparse` are allocation-free views rather than Python loops.

Self-loops are kept in a *separate* set rather than in the CSR structure:
the Erdős–Rényi polarity graph has self-orthogonal ("quadric") vertices
whose self-loops matter for Property R and for the star product (they turn
into intra-supernode matching edges, §6.1.2), but must not pollute
neighbor lists used by routing and simulation.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

import numpy as np
import scipy.sparse as sp

__all__ = [
    "Graph",
]


class Graph:
    """Simple undirected graph on vertices ``0..n-1`` with optional self-loops.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v)`` pairs with ``u != v``.  Duplicates (in either
        orientation) are merged.
    self_loops:
        Vertices that carry a self-loop (stored separately; see module doc).
    name:
        Human-readable label used in reports and plots.
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]],
        self_loops: Iterable[int] = (),
        name: str = "graph",
    ) -> None:
        self.n = int(n)
        self.name = name

        earr = np.asarray(list(edges), dtype=np.int64).reshape(-1, 2)
        if earr.size:
            if earr.min() < 0 or earr.max() >= n:
                raise ValueError(f"edge endpoint out of range [0, {n})")
            if (earr[:, 0] == earr[:, 1]).any():
                raise ValueError("explicit (u, u) edges are not allowed; use self_loops")
            earr = np.sort(earr, axis=1)
            earr = np.unique(earr, axis=0)
        self._edges = earr
        self.m = len(earr)

        loops = np.unique(np.asarray(list(self_loops), dtype=np.int64))
        if loops.size and (loops.min() < 0 or loops.max() >= n):
            raise ValueError("self-loop vertex out of range")
        self.self_loops = loops

        # CSR adjacency (self-loops excluded).
        both = np.concatenate([earr, earr[:, ::-1]]) if self.m else earr
        order = np.lexsort((both[:, 1], both[:, 0])) if self.m else np.array([], dtype=np.int64)
        both = both[order]
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        if self.m:
            np.add.at(self.indptr, both[:, 0] + 1, 1)
        np.cumsum(self.indptr, out=self.indptr)
        self.indices = both[:, 1].copy() if self.m else np.array([], dtype=np.int64)

    # -- basic queries -------------------------------------------------------

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every vertex, *not* counting self-loops."""
        return np.diff(self.indptr)

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max()) if self.n else 0

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of *v* (a view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Edge test in O(log deg) via binary search (self-loops excluded)."""
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < len(nbrs) and nbrs[i] == v)

    def has_self_loop(self, v: int) -> bool:
        i = np.searchsorted(self.self_loops, v)
        return bool(i < len(self.self_loops) and self.self_loops[i] == v)

    @property
    def edge_array(self) -> np.ndarray:
        """``(m, 2)`` array of canonical (u < v) edges, lexicographically sorted."""
        return self._edges

    def edges(self) -> Iterator[tuple[int, int]]:
        for u, v in self._edges:
            yield int(u), int(v)

    def is_regular(self) -> bool:
        d = self.degrees
        return bool(self.n == 0 or (d == d[0]).all())

    # -- conversions ---------------------------------------------------------

    def csr(self) -> sp.csr_matrix:
        """Adjacency matrix as ``scipy.sparse.csr_matrix`` (self-loops excluded)."""
        data = np.ones(len(self.indices), dtype=np.int8)
        return sp.csr_matrix((data, self.indices, self.indptr), shape=(self.n, self.n))

    def to_networkx(self, include_self_loops: bool = False) -> Any:
        import networkx as nx

        g = nx.Graph(name=self.name)
        g.add_nodes_from(range(self.n))
        g.add_edges_from(map(tuple, self._edges))
        if include_self_loops:
            g.add_edges_from((int(v), int(v)) for v in self.self_loops)
        return g

    # -- derived graphs --------------------------------------------------------

    def without_edges(self, removed: Iterable[tuple[int, int]]) -> "Graph":
        """Copy of this graph with the given edges deleted (for fault studies).

        Vectorized: edges are compared as packed ``u * n + v`` ids against a
        mask over the canonical edge array, so deleting k of m edges costs
        ``O((m + k) log k)`` instead of a Python loop over every edge.
        Pairs not present in the graph (or out of range) are ignored, in
        either orientation.
        """
        rem = np.asarray(list(removed), dtype=np.int64).reshape(-1, 2)
        if rem.size == 0 or self.m == 0:
            return Graph(self.n, self._edges, self.self_loops, name=self.name)
        rem = np.sort(rem, axis=1)
        rem = rem[((rem >= 0) & (rem < self.n)).all(axis=1)]
        edge_ids = self._edges[:, 0] * self.n + self._edges[:, 1]
        kill_ids = rem[:, 0] * self.n + rem[:, 1]
        kept = self._edges[~np.isin(edge_ids, kill_ids)]
        return Graph(self.n, kept, self.self_loops, name=self.name)

    def relabeled(self, perm: np.ndarray, name: str | None = None) -> "Graph":
        """Graph with vertex *v* renamed ``perm[v]`` (``perm`` a permutation)."""
        perm = np.asarray(perm)
        edges = perm[self._edges]
        return Graph(self.n, edges, perm[self.self_loops], name=name or self.name)

    def is_connected(self) -> bool:
        if self.n <= 1:
            return True
        n_comp, _ = sp.csgraph.connected_components(self.csr(), directed=False)
        return n_comp == 1

    def __repr__(self) -> str:
        return f"Graph({self.name!r}, n={self.n}, m={self.m}, loops={len(self.self_loops)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Graph)
            and self.n == other.n
            and np.array_equal(self._edges, other._edges)
            and np.array_equal(self.self_loops, other.self_loops)
        )

    def __hash__(self) -> int:  # graphs are mutated never, hash by identity
        return id(self)
