"""Graph constructions used by PolarStar and its baselines.

This package contains the *factor graphs* of the star product (Erdős–Rényi
polarity graphs, Inductive-Quad, Paley, BDF, complete graphs) as well as the
graph families needed by the paper's comparison topologies (McKay–Miller–
Širáň, Kautz, LPS Ramanujan, random regular) and checkers for the structural
properties R, R* and R_1 from §5 of the paper.
"""

from repro.graphs.base import Graph
from repro.graphs.er_polarity import er_polarity_graph
from repro.graphs.inductive_quad import inductive_quad, iq_feasible_degrees
from repro.graphs.paley import paley_graph, paley_feasible_degrees
from repro.graphs.bdf import bdf_supernode
from repro.graphs.complete import complete_graph
from repro.graphs.mms import mms_graph, mms_feasible_degrees
from repro.graphs.kautz import kautz_graph
from repro.graphs.lps import lps_graph
from repro.graphs.random_regular import random_regular_graph
from repro.graphs.properties import (
    has_property_r,
    has_property_r1,
    has_property_rstar,
)

__all__ = [
    "Graph",
    "er_polarity_graph",
    "inductive_quad",
    "iq_feasible_degrees",
    "paley_graph",
    "paley_feasible_degrees",
    "bdf_supernode",
    "complete_graph",
    "mms_graph",
    "mms_feasible_degrees",
    "kautz_graph",
    "lps_graph",
    "random_regular_graph",
    "has_property_r",
    "has_property_r1",
    "has_property_rstar",
]
