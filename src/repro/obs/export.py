"""Exporters: observability sessions -> JSON / CSV / console text.

The JSON artifact is the canonical form (schema ``repro.obs/v1``): one
document holding the manifest, every metric family snapshot, and the span
profile tree.  CSV flattens metric samples for spreadsheet triage, and the
console summary renders the same data for humans — both are derived from
the JSON-shaped dict, so ``repro obs summary file.json`` round-trips.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.obs.manifest import SCHEMA, RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = [
    "session_snapshot",
    "export_json",
    "export_csv",
    "console_summary",
    "load_json",
]


def session_snapshot(
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
    manifest: RunManifest | None = None,
) -> dict:
    """The canonical export dict for one observability session."""
    return {
        "schema": SCHEMA,
        "manifest": manifest.to_dict() if manifest is not None else None,
        "metrics": registry.collect(),
        "spans": tracer.snapshot() if tracer is not None else None,
    }


def export_json(
    path: str | Path,
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
    manifest: RunManifest | None = None,
) -> Path:
    """Write the session to *path* as indented JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = session_snapshot(registry, tracer, manifest)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_json(path: str | Path) -> dict:
    """Read an exported session back (validates the schema tag)."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: not a repro.obs export (schema={doc.get('schema')!r}, "
            f"expected {SCHEMA!r})"
        )
    return doc


def export_csv(path: str | Path, registry: MetricsRegistry) -> Path:
    """Flatten metric samples to CSV: name, type, labels, field, value.

    Histograms emit one row per bucket (field ``bucket_le=<bound>``) plus
    ``count`` / ``sum`` rows; counters and gauges emit a single ``value``
    row per label combination.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["name", "type", "labels", "field", "value"])
        for fam in registry.collect():
            for sample in fam["samples"]:
                labels = ";".join(
                    f"{k}={v}" for k, v in sorted(sample["labels"].items())
                )
                if fam["type"] == "histogram":
                    writer.writerow([fam["name"], fam["type"], labels, "count", sample["count"]])
                    writer.writerow([fam["name"], fam["type"], labels, "sum", sample["sum"]])
                    for bucket in sample["buckets"]:
                        le = "inf" if bucket["le"] is None else bucket["le"]
                        writer.writerow(
                            [fam["name"], fam["type"], labels, f"bucket_le={le}", bucket["count"]]
                        )
                else:
                    writer.writerow(
                        [fam["name"], fam["type"], labels, "value", sample["value"]]
                    )
    return path


def _format_spans(node: dict, depth: int, total: float, lines: list[str]) -> None:
    pct = 100.0 * node["total_s"] / total if total > 0 else 0.0
    lines.append(
        f"  {'  ' * depth}{node['name']:<{max(36 - 2 * depth, 8)}s} "
        f"{node['total_s']:9.4f}s {pct:5.1f}%  x{node['count']}"
    )
    for child in node.get("children", ()):
        _format_spans(child, depth + 1, total, lines)


def console_summary(doc: dict, top: int = 8) -> str:
    """Human-readable rendering of an export dict (see :func:`load_json`)."""
    lines: list[str] = []
    manifest = doc.get("manifest")
    if manifest:
        git = (manifest.get("git") or "?")[:12]
        lines.append(
            f"run: git={git} python={manifest.get('python', '?')} "
            f"seed={manifest.get('seed')}"
        )
        topo = manifest.get("topology") or {}
        if topo:
            lines.append(
                f"topology: {topo.get('name', '?')} "
                f"({topo.get('routers')} routers, {topo.get('links')} links, "
                f"{topo.get('endpoints')} endpoints)"
            )
    metrics = doc.get("metrics") or []
    if metrics:
        lines.append("")
        lines.append(f"metrics ({len(metrics)} families):")
        for fam in metrics:
            samples = fam["samples"]
            if fam["type"] == "histogram":
                for s in samples:
                    label = _label_suffix(s)
                    mean = s["sum"] / s["count"] if s["count"] else 0.0
                    lines.append(
                        f"  {fam['name']}{label}: count={s['count']} "
                        f"mean={mean:.2f} min={s['min']} max={s['max']}"
                    )
            elif len(samples) > top:
                values = sorted(
                    samples, key=lambda s: s["value"], reverse=True
                )
                total = sum(s["value"] for s in samples)
                lines.append(
                    f"  {fam['name']}: {len(samples)} series, total={total:g}, "
                    f"top {top}:"
                )
                for s in values[:top]:
                    lines.append(f"    {_label_suffix(s) or '(unlabeled)'}: {s['value']:g}")
            else:
                for s in samples:
                    lines.append(f"  {fam['name']}{_label_suffix(s)}: {s['value']:g}")
    spans = doc.get("spans")
    if spans and spans.get("children"):
        total = sum(c["total_s"] for c in spans["children"])
        lines.append("")
        lines.append("span profile (wall clock):")
        for child in spans["children"]:
            _format_spans(child, 0, total, lines)
    return "\n".join(lines) if lines else "(empty observability session)"


def _label_suffix(sample: dict) -> str:
    labels = sample.get("labels") or {}
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"
