"""Metric instruments: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` owns named instrument *families*; a family with
declared label names fans out into one *child* instrument per label-value
combination (``flits.labels(link="3->7").inc()``).  The design goals, in
order:

1. **near-zero overhead when disabled** — a disabled registry hands out a
   shared null instrument whose methods are no-ops, so instrumented code
   pays one attribute call and nothing else;
2. **bulk recording** — hot loops keep plain ints / NumPy arrays and flush
   them once per run (``inc(n)``, ``observe_many(values)``), rather than
   crossing an abstraction per event;
3. **bounded cardinality** — label fan-out is capped per family
   (``max_label_sets``) so a buggy label (e.g. a packet id) fails loudly
   instead of exhausting memory.

Everything is stdlib-only; exporters live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

from bisect import bisect_left

try:  # optional fast path only; this module stays importable without numpy
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is installed in this repo
    _np = None

__all__ = [
    "CardinalityError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "exponential_buckets",
    "linear_buckets",
]


class CardinalityError(RuntimeError):
    """A metric family exceeded its ``max_label_sets`` cap."""


def linear_buckets(start: float, width: float, count: int) -> tuple[float, ...]:
    """``count`` upper bounds: start, start+width, ... (for histograms)."""
    if count < 1 or width <= 0:
        raise ValueError("linear_buckets needs count >= 1 and width > 0")
    return tuple(start + i * width for i in range(count))


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` upper bounds: start, start*factor, ... (for histograms)."""
    if count < 1 or start <= 0 or factor <= 1:
        raise ValueError("exponential_buckets needs count >= 1, start > 0, factor > 1")
    out = []
    b = float(start)
    for _ in range(count):
        out.append(b)
        b *= factor
    return tuple(out)


class Counter:
    """Monotonically increasing count (events, flits, cache hits)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-set value (max link load, queue depth high-water mark)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the running maximum (high-water-mark semantics)."""
        if value > self.value:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``bounds`` are inclusive upper bounds in increasing order; one implicit
    overflow bucket catches everything beyond the last bound.  Bucket
    counts are *per bucket* (not cumulative).
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a non-empty increasing sequence")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values) -> None:
        """Bulk observe (hot loops accumulate a list, flush once).

        Integer batches (the packet engine's latency and queue-depth
        flushes) take a vectorized path — one ``searchsorted`` plus a
        bucket ``bincount`` instead of a ``bisect`` per element.  The
        result is identical to calling :meth:`observe` per element: bucket
        edges resolve the same way, and integer sums are exact in float64
        regardless of accumulation order.  Float batches keep the scalar
        loop (float summation order is observable) and so does everything
        when numpy is unavailable.
        """
        if _np is not None:
            arr = _np.asarray(values)
            if arr.dtype.kind in "iub" and arr.size:
                idx = _np.searchsorted(self.bounds, arr, side="left")
                for i, c in zip(*_np.unique(idx, return_counts=True)):
                    self.counts[i] += int(c)
                self.count += int(arr.size)
                self.sum += int(arr.sum())
                lo, hi = int(arr.min()), int(arr.max())
                if lo < self.min:
                    self.min = lo
                if hi > self.max:
                    self.max = hi
                return
        for v in values:
            self.observe(v)

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding it."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        running = 0
        for i, c in enumerate(self.counts):
            running += c
            if running >= target:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": [
                {"le": le, "count": c} for le, c in zip(self.bounds, self.counts)
            ]
            + [{"le": None, "count": self.counts[-1]}],  # overflow
        }


class _NullInstrument:
    """Shared no-op stand-in handed out by disabled registries.

    Implements the union of the instrument APIs so call sites never need
    to branch on whether observability is on.
    """

    __slots__ = ()
    kind = "null"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def labels(self, **label_values) -> "_NullInstrument":
        return self


NULL_INSTRUMENT = _NullInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge}


class MetricFamily:
    """All children of one named metric across its label combinations."""

    __slots__ = ("name", "kind", "help", "label_names", "max_label_sets",
                 "_children", "_bounds")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        max_label_sets: int = 4096,
        bounds: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.max_label_sets = max_label_sets
        self._bounds = bounds
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        if not self.label_names:
            self._children[()] = self._new_child()

    def _new_child(self):
        if self.kind == "histogram":
            return Histogram(self._bounds or exponential_buckets(1.0, 2.0, 16))
        return _KINDS[self.kind]()

    def labels(self, **label_values):
        """The child instrument for one label-value combination."""
        if set(label_values) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} declares labels {self.label_names}, "
                f"got {tuple(label_values)}"
            )
        key = tuple(str(label_values[k]) for k in self.label_names)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self.max_label_sets:
                raise CardinalityError(
                    f"metric {self.name!r} exceeded max_label_sets="
                    f"{self.max_label_sets}; a label is likely unbounded"
                )
            child = self._children[key] = self._new_child()
        return child

    # Unlabeled families proxy the instrument API directly.
    def _solo(self):
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} has labels {self.label_names}; "
                "call .labels(...) first"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def set_max(self, value: float) -> None:
        self._solo().set_max(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def observe_many(self, values) -> None:
        self._solo().observe_many(values)

    @property
    def value(self):
        return self._solo().value

    def samples(self) -> list[dict]:
        """One snapshot dict per child, labels attached."""
        out = []
        for key in sorted(self._children):
            snap = self._children[key].snapshot()
            snap["labels"] = dict(zip(self.label_names, key))
            out.append(snap)
        return out

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "samples": self.samples(),
        }


class MetricsRegistry:
    """Named instrument families plus the enabled/disabled switch.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: repeated
    registration with the same name returns the existing family (so module
    code can re-register freely), but re-registering under a different
    kind or label set is an error — that is always a naming bug.
    """

    def __init__(self, enabled: bool = True, max_label_sets: int = 4096) -> None:
        self.enabled = enabled
        self.max_label_sets = max_label_sets
        self._families: dict[str, MetricFamily] = {}

    # -- registration ------------------------------------------------------

    def _register(self, name, kind, help, labels, bounds=None):
        if not self.enabled:
            return NULL_INSTRUMENT
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind or fam.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already registered as {fam.kind} with "
                    f"labels {fam.label_names}; cannot re-register as {kind} "
                    f"with labels {tuple(labels)}"
                )
            return fam
        fam = MetricFamily(
            name,
            kind,
            help=help,
            label_names=tuple(labels),
            max_label_sets=self.max_label_sets,
            bounds=bounds,
        )
        self._families[name] = fam
        return fam

    def counter(self, name: str, help: str = "", labels=()):
        """Get or create a counter family."""
        return self._register(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels=()):
        """Get or create a gauge family."""
        return self._register(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "", labels=(), bounds=None):
        """Get or create a histogram family (``bounds``: upper bucket edges)."""
        return self._register(name, "histogram", help, labels, bounds=bounds)

    # -- introspection -----------------------------------------------------

    def get(self, name: str) -> MetricFamily:
        """Look up a registered family by name (KeyError if absent)."""
        return self._families[name]

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def names(self) -> list[str]:
        return sorted(self._families)

    def collect(self) -> list[dict]:
        """Snapshot of every family, sorted by name (exporter input)."""
        return [self._families[n].snapshot() for n in sorted(self._families)]

    def clear(self) -> None:
        self._families.clear()
