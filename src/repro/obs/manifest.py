"""Run manifests: everything needed to re-run (and trust) one result.

A :class:`RunManifest` pins the reproducibility surface of a run — RNG
seeds, configuration, topology parameters, code revision, interpreter and
platform — so that every exported metrics file and archived benchmark
result is self-describing.  Capture is best-effort: a missing git binary
or a non-repo checkout degrades the revision to ``None`` rather than
failing the run.
"""

from __future__ import annotations

import dataclasses
import json
import platform
# Sanctioned RL108 exception: the manifest shells out to `git rev-parse`
# once per capture — a short-lived, checked, timeout-bounded query, not a
# worker process the runtime supervisor should own.
import subprocess  # repro-lint: disable=RL108
import sys
import time
from dataclasses import dataclass, field

__all__ = [
    "RunManifest",
    "git_revision",
]

#: JSON schema tag written into every export (bump on breaking changes).
SCHEMA = "repro.obs/v1"


def git_revision(cwd: str | None = None) -> str | None:
    """Current git commit hash (``None`` outside a repo / without git)."""
    try:
        # repro-lint: disable=RL108 -- sanctioned exception: the manifest
        # shells out to `git rev-parse` once per export; no worker pool
        # involvement, bounded by timeout, failure degrades to None.
        out = subprocess.run(  # repro-lint: disable=RL108
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def _clean(obj):
    """Recursively coerce to JSON-safe types (dataclasses, numpy scalars)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _clean(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _clean(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_clean(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    return repr(obj)


@dataclass
class RunManifest:
    """Reproducibility record attached to metrics exports and benchmarks."""

    created_unix: float = 0.0
    git: str | None = None
    python: str = ""
    platform: str = ""
    argv: list[str] = field(default_factory=list)
    seed: int | None = None
    config: dict = field(default_factory=dict)
    topology: dict = field(default_factory=dict)
    artifacts: list = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    @classmethod
    def capture(
        cls,
        seed: int | None = None,
        config=None,
        topology=None,
        artifacts=None,
        **extra,
    ) -> "RunManifest":
        """Snapshot the environment plus caller-supplied run parameters.

        ``config`` may be a dataclass (e.g. ``PacketSimConfig``) or a dict;
        ``topology`` a :class:`~repro.topologies.base.Topology` or a dict;
        ``artifacts`` the artifact-store digest log
        (:meth:`repro.store.ArtifactStore.resolved`) pinning exactly which
        cached topologies/tables fed the run.  Extra keyword arguments land
        in ``extra`` verbatim.
        """
        topo_info: dict = {}
        if topology is not None:
            if isinstance(topology, dict):
                topo_info = _clean(topology)
            else:  # a Topology: record its identifying parameters
                topo_info = {
                    "name": getattr(topology, "name", repr(topology)),
                    "routers": getattr(getattr(topology, "graph", None), "n", None),
                    "links": getattr(getattr(topology, "graph", None), "m", None),
                    "endpoints": getattr(topology, "num_endpoints", None),
                    "meta": _clean(
                        {
                            k: v
                            for k, v in getattr(topology, "meta", {}).items()
                            if isinstance(v, (str, int, float, bool, tuple, list))
                        }
                    ),
                }
        return cls(
            created_unix=time.time(),
            git=git_revision(),
            python=sys.version.split()[0],
            platform=platform.platform(),
            argv=list(sys.argv),
            seed=None if seed is None else int(seed),
            config=_clean(config) if config is not None else {},
            topology=topo_info,
            artifacts=_clean(artifacts) if artifacts is not None else [],
            extra=_clean(extra),
        )

    def to_dict(self) -> dict:
        return {"schema": SCHEMA, **dataclasses.asdict(self)}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        """Inverse of :meth:`to_dict` (unknown keys ignored)."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})
