"""``repro.obs`` — observability: metrics, tracing, run manifests.

The subsystem has four parts (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters, gauges
  and fixed-bucket histograms with label support;
* :mod:`repro.obs.tracing` — ``span("phase")`` wall-clock profile trees;
* :mod:`repro.obs.manifest` — :class:`RunManifest` reproducibility records;
* :mod:`repro.obs.export` — JSON / CSV / console exporters.

Instrumented code talks to the **ambient session**: a process-wide
``(registry, tracer)`` pair that defaults to *disabled* (null instruments,
no-op spans), so the library costs nothing unless a driver opts in::

    with obs.session() as (registry, tracer):
        result = PacketSimulator(...).run(0.3)
        export_json("metrics.json", registry, tracer, RunManifest.capture())

Long-lived components may also accept an explicit ``metrics=`` registry;
the ambient pair is the default, not the only path.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.export import (
    console_summary,
    export_csv,
    export_json,
    load_json,
    session_snapshot,
)
from repro.obs.manifest import RunManifest, git_revision
from repro.obs.metrics import (
    CardinalityError,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    exponential_buckets,
    linear_buckets,
)
from repro.obs.tracing import NULL_TRACER, SpanNode, Tracer

__all__ = [
    "CardinalityError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_TRACER",
    "RunManifest",
    "SpanNode",
    "Tracer",
    "console_summary",
    "disable",
    "enable",
    "exponential_buckets",
    "export_csv",
    "export_json",
    "get_registry",
    "get_tracer",
    "git_revision",
    "linear_buckets",
    "load_json",
    "session",
    "session_snapshot",
    "span",
]

#: Ambient session: disabled by default so importing the library is free.
_REGISTRY = MetricsRegistry(enabled=False)
_TRACER = NULL_TRACER


def get_registry() -> MetricsRegistry:
    """The ambient metrics registry (disabled unless a driver enabled it)."""
    return _REGISTRY


def get_tracer():
    """The ambient tracer (the null tracer when observability is off)."""
    return _TRACER


def span(name: str):
    """Open a profiling span on the ambient tracer (no-op when disabled)."""
    return _TRACER.span(name)


def enable(max_label_sets: int = 4096) -> tuple[MetricsRegistry, Tracer]:
    """Install a fresh enabled ambient session; returns ``(registry, tracer)``."""
    global _REGISTRY, _TRACER
    _REGISTRY = MetricsRegistry(enabled=True, max_label_sets=max_label_sets)
    _TRACER = Tracer()
    return _REGISTRY, _TRACER


def disable() -> None:
    """Reset the ambient session to the free disabled state."""
    global _REGISTRY, _TRACER
    _REGISTRY = MetricsRegistry(enabled=False)
    _TRACER = NULL_TRACER


@contextmanager
def session(max_label_sets: int = 4096):
    """Scoped enabled session; restores the previous ambient pair on exit.

    Yields ``(registry, tracer)`` so the body can export on the way out.
    """
    global _REGISTRY, _TRACER
    prev = (_REGISTRY, _TRACER)
    registry, tracer = MetricsRegistry(True, max_label_sets), Tracer()
    _REGISTRY, _TRACER = registry, tracer
    try:
        yield registry, tracer
    finally:
        _REGISTRY, _TRACER = prev
