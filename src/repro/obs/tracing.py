"""Lightweight tracing: ``span("phase")`` wall-clock profile trees.

A :class:`Tracer` maintains a stack of open spans; each ``span(name)``
context manager accumulates elapsed wall-clock into a tree node keyed by
name under its parent, so repeated entries aggregate (count + total time)
rather than growing an event log.  The result is a profile tree — "where
did this run spend its time" — exported alongside the metrics.

This module is the only place in ``src/repro`` allowed to read the wall
clock directly (enforced by repro-lint rule RL206): everything else calls
``obs.span`` so profiles stay structured and disabled runs stay free of
timing syscalls.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = [
    "SpanNode",
    "Tracer",
    "NULL_TRACER",
]


class SpanNode:
    """Aggregated timings of one span name at one position in the tree."""

    __slots__ = ("name", "count", "total_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.children: dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def self_s(self) -> float:
        """Time spent in this span minus its children (exclusive time)."""
        return self.total_s - sum(c.total_s for c in self.children.values())

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "children": [
                self.children[k].snapshot() for k in sorted(self.children)
            ],
        }


class Tracer:
    """Span-stack profiler; one per observability session."""

    def __init__(self) -> None:
        self.root = SpanNode("run")
        self._stack: list[SpanNode] = [self.root]

    @contextmanager
    def span(self, name: str):
        """Accumulate wall-clock time under *name* below the open span."""
        node = self._stack[-1].child(name)
        self._stack.append(node)
        start = time.perf_counter()
        try:
            yield node
        finally:
            node.total_s += time.perf_counter() - start
            node.count += 1
            self._stack.pop()

    def snapshot(self) -> dict:
        """The profile tree as nested dicts (exporter input)."""
        return self.root.snapshot()

    def clear(self) -> None:
        self.root = SpanNode("run")
        self._stack = [self.root]


class _NullSpan:
    """Reusable no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _NullTracer:
    """Disabled tracer: ``span`` returns a shared no-op context manager."""

    __slots__ = ()
    root = None

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def snapshot(self) -> dict:
        return {"name": "run", "count": 0, "total_s": 0.0, "children": []}

    def clear(self) -> None:
        pass


NULL_TRACER = _NullTracer()
