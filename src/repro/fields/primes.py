"""Primality and prime-power utilities.

All graph families in this package exist only for particular integer
parameters (primes, prime powers, residue classes).  These helpers answer
"which parameters are feasible?" questions for the design-space search in
:mod:`repro.core.polarstar`.

The sizes involved are tiny (network radixes are at most a few hundred), so
simple deterministic trial division is both adequate and obviously correct.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "is_prime",
    "factorize",
    "is_prime_power",
    "prime_power_root",
    "primes_up_to",
    "prime_powers_up_to",
]


def is_prime(n: int) -> bool:
    """Return ``True`` iff *n* is prime.

    Deterministic trial division; intended for small *n* (graph parameters),
    not cryptographic sizes.
    """
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


@lru_cache(maxsize=None)
def factorize(n: int) -> tuple[tuple[int, int], ...]:
    """Return the prime factorization of *n* as ``((p1, e1), (p2, e2), ...)``.

    Factors are returned in increasing order of prime.

    >>> factorize(360)
    ((2, 3), (3, 2), (5, 1))
    """
    if n < 1:
        raise ValueError(f"factorize() needs a positive integer, got {n}")
    out: list[tuple[int, int]] = []
    remaining = n
    p = 2
    while p * p <= remaining:
        if remaining % p == 0:
            e = 0
            while remaining % p == 0:
                remaining //= p
                e += 1
            out.append((p, e))
        p += 1 if p == 2 else 2
    if remaining > 1:
        out.append((remaining, 1))
    return tuple(out)


def is_prime_power(n: int) -> bool:
    """Return ``True`` iff ``n == p**k`` for a prime *p* and ``k >= 1``."""
    if n < 2:
        return False
    return len(factorize(n)) == 1


def prime_power_root(n: int) -> tuple[int, int]:
    """Return ``(p, k)`` such that ``n == p**k`` with *p* prime.

    Raises :class:`ValueError` if *n* is not a prime power.
    """
    fac = factorize(n) if n >= 2 else ()
    if len(fac) != 1:
        raise ValueError(f"{n} is not a prime power")
    return fac[0]


def primes_up_to(n: int) -> list[int]:
    """Return all primes ``<= n`` (sieve of Eratosthenes)."""
    if n < 2:
        return []
    sieve = bytearray([1]) * (n + 1)
    sieve[0] = sieve[1] = 0
    p = 2
    while p * p <= n:
        if sieve[p]:
            sieve[p * p :: p] = bytearray(len(sieve[p * p :: p]))
        p += 1
    return [i for i in range(n + 1) if sieve[i]]


def prime_powers_up_to(n: int) -> list[int]:
    """Return all prime powers ``p**k <= n`` with ``k >= 1``, sorted."""
    out = []
    for p in primes_up_to(n):
        q = p
        while q <= n:
            out.append(q)
            q *= p
    return sorted(out)
