"""Galois field :math:`GF(p^k)` with dense lookup tables.

Elements of :math:`GF(p^k)` are encoded as integers in ``[0, q)``: the
integer ``e`` stands for the polynomial whose base-*p* digits are its
coefficients (least-significant digit = constant term).  For prime fields
(``k == 1``) this is ordinary arithmetic mod *p*.

The class precomputes dense ``q x q`` addition and multiplication tables so
that graph constructions (e.g. the all-pairs orthogonality test in
:math:`ER_q`) can be expressed as vectorized NumPy gathers instead of Python
loops — the dominant cost of building a radix-128 PolarStar otherwise.

Sizes are tiny (``q <= ~512`` in any realistic network), so the ``O(q^2)``
tables are a few hundred KB at most.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Union

import numpy as np

from repro.fields.primes import prime_power_root

__all__ = [
    "FieldElement",
    "irreducible_poly",
    "GF",
]

#: Scalar-or-array field element codes accepted by the arithmetic methods.
#: Table gathers broadcast, so whatever shape goes in comes out.
FieldElement = Union[int, np.integer, np.ndarray]


def _poly_mul_mod(a: tuple[int, ...], b: tuple[int, ...], p: int) -> tuple[int, ...]:
    """Multiply coefficient tuples *a*, *b* over GF(p) (no reduction)."""
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai:
            for j, bj in enumerate(b):
                out[i + j] = (out[i + j] + ai * bj) % p
    return tuple(out)


def _all_monic(p: int, k: int) -> list[tuple[int, ...]]:
    """All monic polynomials of degree exactly *k* over GF(p), as coeff tuples
    (constant term first, leading coefficient 1 last)."""
    polys = []
    for e in range(p**k):
        digits = []
        x = e
        for _ in range(k):
            digits.append(x % p)
            x //= p
        polys.append(tuple(digits) + (1,))
    return polys


@lru_cache(maxsize=None)
def irreducible_poly(p: int, k: int) -> tuple[int, ...]:
    """Return a monic irreducible polynomial of degree *k* over GF(p).

    Found by sieving: every reducible monic polynomial of degree *k* is a
    product of two monic polynomials of lower degree, so we enumerate those
    products and return the first survivor.  Deterministic, so field tables
    are reproducible across runs.
    """
    if k == 1:
        return (0, 1)  # x
    composites: set[tuple[int, ...]] = set()
    lower = {d: _all_monic(p, d) for d in range(1, k)}
    for da in range(1, k // 2 + 1):
        db = k - da
        for a in lower[da]:
            for b in lower[db]:
                composites.add(_poly_mul_mod(a, b, p))
    for cand in _all_monic(p, k):
        if cand not in composites:
            return cand
    raise RuntimeError(f"no irreducible polynomial of degree {k} over GF({p})")


class GF:
    """The finite field with ``q = p**k`` elements.

    Parameters
    ----------
    q:
        Field order; must be a prime power.

    Attributes
    ----------
    q, p, k:
        Order, characteristic, and extension degree.
    add_table, mul_table:
        ``(q, q)`` uint16 arrays: ``add_table[a, b] == a + b`` etc.
    neg_table, inv_table:
        Unary tables; ``inv_table[0]`` is 0 by convention (never used).
    squares:
        Sorted array of nonzero quadratic residues.

    Examples
    --------
    >>> F = GF(9)
    >>> int(F.mul(F.add(1, 1), 2)) == int(F.mul(2, 2))
    True
    """

    _cache: dict[int, "GF"] = {}

    def __new__(cls, q: int) -> "GF":
        # Fields are immutable; share instances so tables are built once.
        if q in cls._cache:
            return cls._cache[q]
        self = super().__new__(cls)
        cls._cache[q] = self
        return self

    def __init__(self, q: int) -> None:
        if getattr(self, "_initialized", False):
            return
        p, k = prime_power_root(q)
        self.q = q
        self.p = p
        self.k = k
        self._build_tables()
        self._initialized = True

    # -- construction ------------------------------------------------------

    def _digits(self, e: int) -> tuple[int, ...]:
        out = []
        for _ in range(self.k):
            out.append(e % self.p)
            e //= self.p
        return tuple(out)

    def _undigits(self, coeffs: Iterable[int]) -> int:
        e = 0
        for c in reversed(list(coeffs)):
            e = e * self.p + (c % self.p)
        return e

    def _build_tables(self) -> None:
        p, k, q = self.p, self.k, self.q
        dtype = np.uint32 if q > 65535 else np.uint16

        # Addition: digit-wise mod-p addition, fully vectorized.
        elems = np.arange(q)
        digits = np.empty((q, k), dtype=np.int64)
        x = elems.copy()
        for i in range(k):
            digits[:, i] = x % p
            x //= p
        sum_digits = (digits[:, None, :] + digits[None, :, :]) % p
        weights = p ** np.arange(k)
        self.add_table = (sum_digits * weights).sum(axis=2).astype(dtype)
        self.neg_table = ((-digits % p) * weights).sum(axis=1).astype(dtype)

        # Multiplication: build via a generator of the multiplicative group
        # when k > 1, else plain modular arithmetic.
        if k == 1:
            self.mul_table = ((elems[:, None] * elems[None, :]) % p).astype(dtype)
        else:
            modulus = irreducible_poly(p, k)
            mul = np.zeros((q, q), dtype=dtype)
            polys = [self._digits(e) for e in range(q)]
            for a in range(q):
                pa = polys[a]
                for b in range(a, q):
                    prod = _poly_mul_mod(pa, polys[b], p)
                    r = self._reduce(prod, modulus)
                    v = self._undigits(r)
                    mul[a, b] = v
                    mul[b, a] = v
            self.mul_table = mul

        # Inverses: for each nonzero a find b with a*b == 1.
        inv = np.zeros(q, dtype=dtype)
        ones = np.argwhere(self.mul_table == 1)
        for a, b in ones:
            inv[a] = b
        self.inv_table = inv

        sq = np.unique(self.mul_table[elems, elems])
        self.squares = sq[sq != 0]

    def _reduce(self, poly: tuple[int, ...], modulus: tuple[int, ...]) -> tuple[int, ...]:
        """Reduce *poly* modulo the monic *modulus* over GF(p)."""
        p = self.p
        coeffs = list(poly)
        dm = len(modulus) - 1
        while len(coeffs) > dm:
            lead = coeffs[-1]
            if lead:
                shift = len(coeffs) - 1 - dm
                for i, m in enumerate(modulus):
                    coeffs[shift + i] = (coeffs[shift + i] - lead * m) % p
            coeffs.pop()
        coeffs += [0] * (dm - len(coeffs))
        return tuple(coeffs)

    # -- arithmetic (scalar or ndarray, via table gathers) -------------------

    def add(self, a: FieldElement, b: FieldElement) -> FieldElement:
        """Field addition; accepts scalars or ndarrays (broadcast)."""
        return self.add_table[a, b]

    def sub(self, a: FieldElement, b: FieldElement) -> FieldElement:
        return self.add_table[a, self.neg_table[b]]

    def mul(self, a: FieldElement, b: FieldElement) -> FieldElement:
        """Field multiplication; accepts scalars or ndarrays (broadcast)."""
        return self.mul_table[a, b]

    def neg(self, a: FieldElement) -> FieldElement:
        return self.neg_table[a]

    def inv(self, a: FieldElement) -> FieldElement:
        """Multiplicative inverse of nonzero *a* (``inv(0) == 0`` sentinel)."""
        return self.inv_table[a]

    def dot3(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Dot product of 3-vectors over the field.

        ``u``: ``(..., 3)``, ``v``: ``(..., 3)`` — broadcastable.  Returns the
        field element ``u0*v0 + u1*v1 + u2*v2`` with the same broadcast shape.
        """
        prods = self.mul_table[u, v]
        return self.add_table[self.add_table[prods[..., 0], prods[..., 1]], prods[..., 2]]

    def is_square(self, a: FieldElement) -> np.ndarray:
        """Boolean mask: is *a* a nonzero quadratic residue?"""
        return np.isin(np.asarray(a), self.squares)

    def pow(self, a: int, e: int) -> int:
        """Field exponentiation by squaring; ``pow(0, 0) == 1`` by
        convention."""
        if e < 0:
            a, e = int(self.inv(a)), -e
        result, base = 1, int(a)
        while e:
            if e & 1:
                result = int(self.mul(result, base))
            base = int(self.mul(base, base))
            e >>= 1
        return result

    def legendre(self, a: int) -> int:
        """Quadratic character: 1 for nonzero squares, -1 for non-squares,
        0 for zero.  (In characteristic 2 every element is a square.)"""
        if a % self.q == 0:
            return 0
        if self.p == 2:
            return 1
        return 1 if bool(self.is_square(a)) else -1

    def __repr__(self) -> str:
        return f"GF({self.q})"
