"""Finite-field arithmetic substrate.

The PolarStar construction needs arithmetic over :math:`\\mathbb{F}_q` for
prime powers *q*: the Erdős–Rényi polarity graph :math:`ER_q` is defined by
orthogonality of projective vectors over :math:`\\mathbb{F}_q`, Paley graphs
by quadratic residues, and McKay–Miller–Širáň graphs (used by Bundlefly) by
coset structure in :math:`\\mathbb{F}_q^2`.

Everything here is pure Python + NumPy.  Fields are represented by
:class:`GF`, which precomputes dense add/mul lookup tables so that graph
constructions can be fully vectorized.
"""

from repro.fields.primes import (
    factorize,
    is_prime,
    is_prime_power,
    prime_power_root,
    prime_powers_up_to,
    primes_up_to,
)
from repro.fields.gf import GF, FieldElement

__all__ = [
    "GF",
    "FieldElement",
    "factorize",
    "is_prime",
    "is_prime_power",
    "prime_power_root",
    "prime_powers_up_to",
    "primes_up_to",
]
