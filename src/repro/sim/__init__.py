"""Network simulation substrates.

Three models at different fidelity/scale trade-offs (see DESIGN.md):

* :mod:`repro.sim.flow` — flow-level link-load analysis; exact saturation
  throughput under a routing policy at full Table 3 scale.
* :mod:`repro.sim.packet` — event-driven packet-level simulation with
  virtual channels, credit flow control and finite buffers; latency-vs-load
  curves at reduced scale (the Booksim substitute).
* :mod:`repro.sim.motif` — message-level discrete-event engine replaying
  communication motifs (Allreduce, Sweep3D) with link contention (the
  SST/Ember substitute).
"""

from repro.sim.flow import (
    link_loads,
    saturation_load,
    ugal_saturation_load,
    valiant_link_loads,
    latency_curve,
)
from repro.sim.packet import PacketSimConfig, PacketSimResult, PacketSimulator
from repro.sim.motif import MotifEngine, MotifNetworkConfig

__all__ = [
    "link_loads",
    "saturation_load",
    "ugal_saturation_load",
    "valiant_link_loads",
    "latency_curve",
    "PacketSimConfig",
    "PacketSimResult",
    "PacketSimulator",
    "MotifEngine",
    "MotifNetworkConfig",
]
