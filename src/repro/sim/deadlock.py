"""Deadlock-freedom verification for the packet simulator's VC scheme.

The simulator assigns virtual channels by hop count (distance classes).
The channel dependency graph (Dally & Seitz) is then acyclic *provided no
packet ever needs more hops than there are VCs*: every dependency moves to
a strictly higher VC until the cap, and the capped class is only entered by
packets that have already exceeded the class count.

:func:`max_route_hops` computes the exact worst-case hop count of a routing
policy (optionally with Valiant two-phase detours); :func:`verify_vc_scheme`
turns that into a pass/fail check against a
:class:`~repro.sim.packet.PacketSimConfig`.  :func:`channel_dependency_graph`
builds the explicit CDG restricted to reachable (link, vc) channels so the
acyclicity argument can be checked mechanically on small instances.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.routing.base import Router
from repro.topologies.base import Topology

__all__ = [
    "max_route_hops",
    "verify_vc_scheme",
    "channel_dependency_graph",
    "is_acyclic",
]


def max_route_hops(
    topology: Topology, router: Router, valiant: bool = False, sample: int | None = None
) -> int:
    """Worst-case path length under the policy (2x for Valiant phases)."""
    n = topology.num_routers
    rng = np.random.default_rng(0)
    if sample is None or sample >= n:
        sources = range(n)
    else:
        sources = rng.choice(n, size=sample, replace=False)
    worst = 0
    for u in sources:
        for t in range(n):
            worst = max(worst, router.distance(int(u), t))
    return 2 * worst if valiant else worst


def verify_vc_scheme(
    topology: Topology,
    router: Router,
    num_vcs: int,
    valiant: bool = False,
    sample: int | None = 64,
) -> bool:
    """True iff hop-count VCs with ``num_vcs`` classes are deadlock-free for
    this (topology, policy): the packet entering hop *k* uses VC *k*, so we
    need ``num_vcs >= max_hops + 1``."""
    return num_vcs >= max_route_hops(topology, router, valiant, sample) + 1


def channel_dependency_graph(
    topology: Topology, router: Router, num_vcs: int
) -> tuple[sp.csr_matrix, int]:
    """Explicit CDG over (directed link, vc) channels under minimal routing.

    A dependency (l1, v) -> (l2, v+1) exists when some minimal route enters
    ``head(l1)`` via l1 and continues on l2.  Returns the adjacency matrix
    and the number of channels; acyclicity can be checked with
    :func:`is_acyclic`.
    """
    g = topology.graph
    link_id: dict[tuple[int, int], int] = {}
    for u in range(g.n):
        for v in g.neighbors(u):
            link_id[(u, int(v))] = len(link_id)
    nl = len(link_id)

    rows, cols = [], []
    for (u, v), l1 in link_id.items():
        # Successor links actually used by some destination's minimal route.
        next_links = set()
        for t in range(g.n):
            if t == v:
                continue
            if router.distance(v, t) == router.distance(u, t) - 1:
                for w in router.next_hops(v, t):
                    next_links.add(link_id[(v, w)])
        for l2 in next_links:
            for vc in range(num_vcs - 1):
                rows.append(l1 * num_vcs + vc)
                cols.append(l2 * num_vcs + min(vc + 1, num_vcs - 1))
    n_chan = nl * num_vcs
    data = np.ones(len(rows), dtype=np.int8)
    return sp.csr_matrix((data, (rows, cols)), shape=(n_chan, n_chan)), n_chan


def is_acyclic(adj: sp.csr_matrix) -> bool:
    """Cycle test via strongly connected components (every SCC must be a
    singleton without a self-loop)."""
    n_comp, labels = sp.csgraph.connected_components(adj, directed=True, connection="strong")
    if n_comp < adj.shape[0]:
        return False
    return (adj.diagonal() == 0).all()
