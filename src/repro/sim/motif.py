"""Message-level discrete-event motif engine (the SST/Merlin substitute).

Replays a motif DAG (:mod:`repro.traffic.motifs`) over a topology with link
contention:

* a message becomes *ready* when all its dependency messages have been
  delivered (plus a per-message compute gap);
* it then traverses its route link by link; each directed link is a
  serially-reusable resource with bandwidth ``link_bw`` — the message holds
  link *i* for ``size / link_bw`` and may enter link *i+1* only after both
  finishing link *i* and the link becoming free (store-and-forward at
  message granularity, adequate at the 64 KB messages of §10.1);
* routing is minimal, or UGAL-style adaptive: per message, the engine
  compares the minimal path against sampled Valiant paths using current
  link reservations and takes the cheapest (§9.3's latency prediction).

Default constants follow §10.1: 4 GB/s links, 20 ns link and router
latency.  Results are end-to-end completion times in seconds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.routing.base import Router, route_path
from repro.topologies.base import Topology
from repro.traffic.motifs import Message

__all__ = [
    "MotifNetworkConfig",
    "MotifEngine",
]


@dataclass
class MotifNetworkConfig:
    link_bw: float = 4e9  # bytes / second
    link_latency: float = 20e-9  # seconds
    router_latency: float = 20e-9  # seconds
    compute_gap: float = 0.0  # per-message local compute before sending
    ugal_samples: int = 4
    seed: int = 0


class MotifEngine:
    """Runs motif DAGs on (topology, router) with link contention."""

    def __init__(
        self,
        topology: Topology,
        router: Router,
        config: MotifNetworkConfig | None = None,
        adaptive: bool = False,
        randomize_minimal: bool = True,
    ):
        self.topology = topology
        self.router = router
        self.cfg = config or MotifNetworkConfig()
        self.adaptive = adaptive
        # Randomizing among minimal next hops models the ECMP-style spreading
        # of Booksim/Merlin minimal routing (essential on Fat-tree, where a
        # deterministic first-hop choice would collapse every flow onto one
        # core router).  Single-minpath policies (PolarStar analytic,
        # Dragonfly l-g-l) are unaffected: they expose one next hop.
        self.randomize_minimal = randomize_minimal
        self.rng = np.random.default_rng(self.cfg.seed)

    def _rank_router(self, rank: int) -> int:
        return int(self.topology.endpoint_router[rank % self.topology.num_endpoints])

    def _minimal_path(self, src_r: int, dst_r: int) -> list[int]:
        if not self.randomize_minimal:
            return route_path(self.router, src_r, dst_r)
        path = [src_r]
        cur = src_r
        while cur != dst_r:
            hops = self.router.next_hops(cur, dst_r)
            cur = hops[int(self.rng.integers(0, len(hops)))] if len(hops) > 1 else hops[0]
            path.append(cur)
            if len(path) > 64:
                raise RuntimeError("routing loop in minimal path")
        return path

    def _path(self, src_r: int, dst_r: int, link_free: dict, now: float, size: int) -> list[int]:
        minimal = self._minimal_path(src_r, dst_r)
        if not self.adaptive:
            return minimal

        def cost(path: list[int]) -> float:
            c = 0.0
            for a, b in zip(path, path[1:]):
                c += max(link_free.get((a, b), 0.0) - now, 0.0) + size / self.cfg.link_bw
            return c

        best, best_cost = minimal, cost(minimal)
        n = self.topology.num_routers
        for _ in range(self.cfg.ugal_samples):
            mid = int(self.rng.integers(0, n))
            if mid in (src_r, dst_r):
                continue
            cand = self._minimal_path(src_r, mid)
            cand = cand + self._minimal_path(mid, dst_r)[1:]
            c = cost(cand)
            if c < best_cost:
                best, best_cost = cand, c
        return best

    def run(self, messages: list[Message]) -> float:
        """Simulate the motif; returns the completion time (seconds)."""
        cfg = self.cfg
        deps_remaining = {m.id: len(m.deps) for m in messages}
        dependents: dict[int, list[Message]] = {}
        by_id = {m.id: m for m in messages}
        for m in messages:
            for d in m.deps:
                if d not in by_id:
                    raise ValueError(f"message {m.id} depends on unknown id {d}")
                dependents.setdefault(d, []).append(m)

        ready_time: dict[int, float] = {}
        heap: list[tuple[float, int]] = []
        for m in messages:
            if deps_remaining[m.id] == 0:
                ready_time[m.id] = cfg.compute_gap
                heapq.heappush(heap, (cfg.compute_gap, m.id))

        link_free: dict[tuple[int, int], float] = {}
        finish = 0.0
        done = 0
        while heap:
            now, mid_ = heapq.heappop(heap)
            if ready_time.get(mid_, None) != now:
                continue  # stale entry
            m = by_id[mid_]
            src_r = self._rank_router(m.src)
            dst_r = self._rank_router(m.dst)
            if src_r == dst_r:
                arrival = now + cfg.router_latency
            else:
                path = self._path(src_r, dst_r, link_free, now, m.size)
                t = now
                ser = m.size / cfg.link_bw
                for a, b in zip(path, path[1:]):
                    start = max(t, link_free.get((a, b), 0.0))
                    link_free[(a, b)] = start + ser
                    t = start + ser + cfg.link_latency + cfg.router_latency
                arrival = t
            finish = max(finish, arrival)
            done += 1
            for dep in dependents.get(m.id, []):
                deps_remaining[dep.id] -= 1
                cand = arrival + cfg.compute_gap
                if cand > ready_time.get(dep.id, 0.0):
                    ready_time[dep.id] = cand
                if deps_remaining[dep.id] == 0:
                    heapq.heappush(heap, (ready_time[dep.id], dep.id))

        if done != len(messages):
            raise RuntimeError(
                f"motif deadlock: {done}/{len(messages)} messages completed "
                "(cyclic dependencies?)"
            )
        return finish
