"""Flow-level network model: link loads and saturation throughput.

Given a router-to-router demand matrix (endpoint injection rate 1 per
endpoint — see :mod:`repro.traffic.patterns`) and a routing policy, compute
the steady-state load on every directed link.  The saturation injection
rate is then ``1 / max_link_load`` (links have unit capacity, one flit per
cycle), capped at 1 — exactly the quantity the latency-vs-load plots of
Fig. 9/10 saturate at.  This runs at full Table 3 scale where the
cycle-level simulator cannot.

Routing modes:

* ``all`` — traffic splits evenly over all minimal next hops at every
  router (what Booksim's table-based MIN with random tie-breaking does);
* ``single`` — traffic follows the router's single deterministic next hop
  (PolarStar's analytic routing, Dragonfly l-g-l).

Valiant and UGAL are modeled on top: Valiant = two minimal phases through a
uniformly random intermediate; UGAL = the best fixed minimal/Valiant split,
a standard throughput-level approximation of per-packet adaptivity.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.routing.base import Router
from repro.topologies.base import Topology

__all__ = [
    "link_loads",
    "saturation_load",
    "valiant_link_loads",
    "ugal_saturation_load",
    "latency_curve",
]


def _edge_index(topology: Topology) -> dict[tuple[int, int], int]:
    """Directed link -> index, CSR order."""
    g = topology.graph
    idx = {}
    k = 0
    for u in range(g.n):
        for v in g.neighbors(u):
            idx[(u, int(v))] = k
            k += 1
    return idx


def link_loads(
    topology: Topology,
    router: Router,
    demand: np.ndarray,
    mode: str = "all",
) -> np.ndarray:
    """Per-directed-link load under minimal routing of *demand*.

    Returns an array over directed links in CSR order (pair order of
    :func:`_edge_index`).  When the router exposes a BFS distance matrix
    (``TableRouter.dist``) and ``mode == "all"``, a fully vectorized
    DAG-propagation path is used — required for full Table 3 scale.
    """
    if mode == "all" and hasattr(router, "dist"):
        with obs.span("sim.flow.link_loads.vectorized"):
            loads = _link_loads_vectorized(topology, router.dist, demand)
            _record_flow_metrics(loads, columns=int((demand != 0).any(axis=0).sum()))
            return loads
    g = topology.graph
    eidx = _edge_index(topology)
    loads = np.zeros(len(eidx), dtype=np.float64)
    n = g.n
    columns = 0

    with obs.span("sim.flow.link_loads.scalar"):
        for t in range(n):
            col = demand[:, t]
            sources = np.nonzero(col)[0]
            if not len(sources):
                continue
            columns += 1
            # Propagate flow down the minimal-path DAG toward t, farthest layer
            # first; flow only ever moves to strictly smaller distances, so each
            # layer is complete when processed.
            by_dist: dict[int, dict[int, float]] = {}
            for s in sources:
                d = router.distance(int(s), t)
                by_dist.setdefault(d, {})
                by_dist[d][int(s)] = by_dist[d].get(int(s), 0.0) + float(col[s])
            dmax = max(by_dist)
            for d in range(dmax, 0, -1):
                for u, f in by_dist.get(d, {}).items():
                    if f == 0.0:
                        continue
                    hops = router.next_hops(u, t) if mode == "all" else [router.next_hop(u, t)]
                    share = f / len(hops)
                    for v in hops:
                        loads[eidx[(u, v)]] += share
                        nd = router.distance(v, t)
                        by_dist.setdefault(nd, {})
                        by_dist[nd][v] = by_dist[nd].get(v, 0.0) + share
    _record_flow_metrics(loads, columns=columns)
    return loads


def _record_flow_metrics(loads: np.ndarray, columns: int) -> None:
    """Publish one link_loads solve into the ambient registry (no-op when
    observability is disabled: disabled registries hand out null instruments)."""
    reg = obs.get_registry()
    if not reg.enabled:
        return
    reg.counter(
        "sim.flow.dest_columns",
        help="destination columns propagated through the minimal-path DAG",
    ).inc(columns)
    reg.counter(
        "sim.flow.solves", help="link_loads invocations (flow-model iterations)"
    ).inc()
    reg.gauge(
        "sim.flow.max_link_load",
        help="peak per-link load of the most recent worst solve (saturation = 1/peak)",
    ).set_max(float(loads.max()) if len(loads) else 0.0)


def _link_loads_vectorized(topology: Topology, dist: np.ndarray, demand: np.ndarray) -> np.ndarray:
    """Vectorized all-minpath link loads from a BFS distance matrix.

    For each destination, flow moves down the shortest-path DAG splitting
    evenly over minimal next hops; levels are processed farthest-first with
    edge-array gathers, so cost is O(n · E) in NumPy C loops.
    """
    g = topology.graph
    u_arr = np.repeat(np.arange(g.n), np.diff(g.indptr))
    v_arr = g.indices
    loads = np.zeros(len(u_arr), dtype=np.float64)
    du = dist[u_arr]  # (E, n): distance of edge tail to every dest
    dv = dist[v_arr]
    dag = du == dv + 1  # (E, n) minimal-DAG membership per destination

    # k[u, t]: number of minimal next hops of u toward t.
    k = np.zeros((g.n, demand.shape[1]), dtype=np.int32)
    np.add.at(k, u_arr, dag.astype(np.int32))
    k[k == 0] = 1

    for t in range(g.n):
        col = demand[:, t]
        if not col.any():
            continue
        f = col.astype(float).copy()
        dag_t = dag[:, t]
        e_ids = np.nonzero(dag_t)[0]
        eu, ev = u_arr[e_ids], v_arr[e_ids]
        d_tail = dist[eu, t]
        order = np.argsort(-d_tail, kind="stable")
        e_ids, eu, ev, d_tail = e_ids[order], eu[order], ev[order], d_tail[order]
        # process strictly by decreasing tail distance
        start = 0
        while start < len(e_ids):
            d = d_tail[start]
            stop = start
            while stop < len(e_ids) and d_tail[stop] == d:
                stop += 1
            seg = slice(start, stop)
            share = f[eu[seg]] / k[eu[seg], t]
            loads[e_ids[seg]] += share
            np.add.at(f, ev[seg], share)
            start = stop
    return loads


def saturation_load(
    topology: Topology,
    router: Router,
    demand: np.ndarray,
    mode: str = "all",
) -> float:
    """Saturation injection rate (fraction of full per-endpoint bandwidth)."""
    loads = link_loads(topology, router, demand, mode=mode)
    peak = loads.max() if len(loads) else 0.0
    return min(1.0, 1.0 / peak) if peak > 0 else 1.0


def valiant_link_loads(
    topology: Topology,
    router: Router,
    demand: np.ndarray,
    mode: str = "all",
) -> np.ndarray:
    """Valiant routing: phase 1 spreads each source's traffic uniformly over
    all routers, phase 2 delivers — each phase routed minimally."""
    n = topology.num_routers
    out_rate = demand.sum(axis=1)
    in_rate = demand.sum(axis=0)
    spread1 = np.outer(out_rate, np.full(n, 1.0 / n, dtype=np.float64))
    np.fill_diagonal(spread1, 0.0)
    spread2 = np.outer(np.full(n, 1.0 / n, dtype=np.float64), in_rate)
    np.fill_diagonal(spread2, 0.0)
    return link_loads(topology, router, spread1, mode) + link_loads(
        topology, router, spread2, mode
    )


def ugal_saturation_load(
    topology: Topology,
    router: Router,
    demand: np.ndarray,
    mode: str = "all",
    mixtures: int = 11,
) -> float:
    """UGAL throughput approximation: the adaptive policy can realize any
    fixed minimal/Valiant traffic split, so its saturation point is the best
    over the split parameter."""
    l_min = link_loads(topology, router, demand, mode)
    l_val = valiant_link_loads(topology, router, demand, mode)
    best = 0.0
    for alpha in np.linspace(0.0, 1.0, mixtures):
        mix = (1 - alpha) * l_min + alpha * l_val
        peak = mix.max() if len(mix) else 0.0
        theta = min(1.0, 1.0 / peak) if peak > 0 else 1.0
        best = max(best, theta)
    return best


def latency_curve(
    topology: Topology,
    router: Router,
    demand: np.ndarray,
    loads: np.ndarray | None = None,
    mode: str = "all",
    points: int = 24,
    hop_latency: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Open-loop latency-vs-offered-load curve (M/M/1 queueing per link).

    Latency is in hop-times; load is normalized per-endpoint injection.
    The curve diverges at the saturation load — the Fig. 9 shape.
    """
    if loads is None:
        loads = link_loads(topology, router, demand, mode)
    total_demand = demand.sum()
    if total_demand == 0 or not len(loads):
        return np.array([0.0]), np.array([0.0])

    # Average hops weighted by demand (sum of link loads = demand * avg_hops).
    avg_hops = loads.sum() / total_demand
    sat = min(1.0, 1.0 / loads.max()) if loads.max() > 0 else 1.0
    lam = np.linspace(0.02, sat * 0.995, points)
    latency = np.empty_like(lam)
    for i, l in enumerate(lam):
        rho = np.clip(loads * l, 0.0, 0.999)
        # queueing delay accumulated along paths: each unit of flow on a link
        # suffers rho/(1-rho); weight by the link's share of total flow.
        queueing = (loads * rho / (1.0 - rho)).sum() / loads.sum() * avg_hops
        latency[i] = avg_hops * hop_latency + queueing
    return lam, latency
