"""Struct-of-arrays state for the batched packet engine.

The reference engine (:mod:`repro.sim.packet.reference`) keeps one Python
``_Packet`` object per packet and a global ``heapq`` of events.  The SoA
engine replaces both:

* :class:`PacketArrays` — every per-packet field lives in one ``int64``
  NumPy column keyed by packet slot (``src/dest/router/vc/in_link/
  intermediate/birth/hops/retries/enq``), so the per-cycle kernels in
  :mod:`repro.sim.packet.kernel` gather and scatter whole arrival batches
  with fancy indexing instead of touching attributes one packet at a time.
* :class:`LinkState` — per-link mirrors (credits, serialization state,
  FIFO queues, wake dedup flags) kept as plain Python lists.  The
  dispatch/credit interleave is order-sensitive and runs element-at-a-time
  inside one cycle, where CPython list indexing is several times cheaper
  than NumPy scalar indexing; :meth:`LinkState.busy_array` converts back
  to an array for the bulk metrics flush.
* :func:`make_buckets` — the cycle-bucketed event queue.  All event times
  are integers and the reference heap orders by ``(time, kind, seq)`` with
  ``FAULT < ARRIVE < WAKE``; per-cycle append-order lists per kind
  reproduce that order exactly (appends happen in ``seq`` order, and the
  only same-cycle pushes made while a cycle is being processed are wakes,
  which the reference heap also serves after that cycle's arrivals).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "LinkState",
    "PacketArrays",
    "build_link_id_table",
    "make_buckets",
]


class PacketArrays:
    """Columnar packet state: one ``int64`` array per ``_Packet`` field."""

    __slots__ = (
        "n", "src", "dest", "router", "vc", "in_link", "intermediate",
        "birth", "hops", "retries", "enq",
    )

    def __init__(self, src, dest, birth) -> None:
        self.src = np.asarray(src, dtype=np.int64)
        self.dest = np.asarray(dest, dtype=np.int64)
        self.birth = np.asarray(birth, dtype=np.int64)
        n = int(self.src.shape[0])
        self.n = n
        self.router = self.src.copy()
        self.vc = np.zeros(n, dtype=np.int64)
        self.in_link = np.full(n, -1, dtype=np.int64)
        self.intermediate = np.full(n, -1, dtype=np.int64)
        self.hops = np.zeros(n, dtype=np.int64)
        self.retries = np.zeros(n, dtype=np.int64)
        self.enq = self.birth.copy()


class LinkState:
    """Per-link hot state as plain-list mirrors (see module docstring)."""

    __slots__ = (
        "num_links", "ends_v", "link_free", "link_busy", "link_ok",
        "link_ser", "credits", "waiting", "wake_scheduled", "escape_at",
    )

    def __init__(self, ends, packet_size: int, num_vcs: int, buffer_packets: int):
        m = len(ends)
        self.num_links = m
        self.ends_v = [int(v) for (_, v) in ends]
        self.link_free = [0] * m
        self.link_busy = [0] * m
        self.link_ok = [True] * m
        self.link_ser = [packet_size] * m
        #: Flat ``(link, vc)`` credit counters: index ``lid * num_vcs + vc``.
        self.credits = [buffer_packets] * (m * num_vcs)
        #: FIFO output queues of ``(pid, vc, in_link, enq)`` tuples — the
        #: three packet fields the dispatch loop reads are captured as
        #: plain ints at enqueue time so sends never touch the arrays.
        self.waiting: list[list[tuple[int, int, int, int]]] = [[] for _ in range(m)]
        self.wake_scheduled = [False] * m
        self.escape_at = [-1] * m

    def refresh_health(self, ends, packet_size: int, health) -> None:
        """Re-derive ``link_ok`` / ``link_ser`` from the shared health mask
        (run start with a pre-degraded mask, and after every fault event)."""
        link_ok = self.link_ok
        link_ser = self.link_ser
        for lid, (u, v) in enumerate(ends):
            link_ok[lid] = health.is_up(u, v)
            link_ser[lid] = int(np.ceil(packet_size * health.degrade_factor(u, v)))

    def busy_array(self) -> np.ndarray:
        return np.asarray(self.link_busy, dtype=np.int64)


def build_link_id_table(n: int, link_id: dict[tuple[int, int], int]) -> np.ndarray:
    """Dense ``(n, n)`` int32 link-id matrix (``-1`` for non-edges) so the
    kernel resolves ``(router, next_hop) -> lid`` by fancy indexing."""
    tab = np.full((n, n), -1, dtype=np.int32)
    for (u, v), lid in link_id.items():
        tab[u, v] = lid
    tab.setflags(write=False)
    return tab


def make_buckets(end_time: int) -> list:
    """One lazily-populated event list per cycle ``0..end_time``.  Events
    past ``end_time`` are never enqueued — the reference loop stops at the
    first popped event beyond it, which (heap order) discards exactly the
    same set."""
    return [None] * (end_time + 1)
