"""Batched per-cycle kernels for the SoA packet engine.

Every function here is a whole-batch NumPy pass over the packet columns of
:class:`~repro.sim.packet.state.PacketArrays` — gather the cycle's arrival
batch, compute masks/targets/next hops with fancy indexing, scatter the
results back.  **Hot-loop discipline (lint rule RL114) applies to this
module**: no per-element Python ``for`` loops over packet arrays and no
object-per-packet attribute access; anything order-sensitive (the
credit/dispatch interleave) lives in :mod:`repro.sim.packet.engine`
instead.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "account_deliveries",
    "record_sends",
    "resolve_arrivals",
    "tally_pair_cache",
    "write_enqueue_times",
]


def resolve_arrivals(arrays, ids, nh_tab, lid_tab):
    """Vectorized arrival step for one cycle's batch.

    Clears reached Valiant midpoints (in the batch view *and* the backing
    column), then resolves every pair in two fancy-indexed gathers: the
    next hop from the dense table built by
    :func:`repro.routing.table.next_hop_table` and the output link id from
    the dense link-id table.  Rows where ``delivered`` is set carry
    sentinel values in ``nxt``/``lids`` and must not be used.

    Returns ``(router, target, delivered, nxt, lids)`` as arrays.
    """
    router = arrays.router[ids]
    dest = arrays.dest[ids]
    inter = arrays.intermediate[ids]
    at_mid = inter == router
    if at_mid.any():
        arrays.intermediate[ids[at_mid]] = -1
        inter = np.where(at_mid, -1, inter)
    delivered = router == dest
    target = np.where(inter >= 0, inter, dest)
    nxt = nh_tab[router, target]
    lids = lid_tab[router, nxt]
    return router, target, delivered, nxt, lids


def write_enqueue_times(arrays, ids, delivered, now: int) -> None:
    """Stamp the enqueue cycle of every non-delivered arrival in one
    scatter (the per-entry copy the dispatch loop reads is captured in the
    waiting-queue tuples; this keeps the column of record in sync)."""
    arrays.enq[ids[~delivered]] = now


def account_deliveries(arrays, ids, delivered, now: int, warmup: int,
                       horizon: int, track_max_hops: bool):
    """Delivery statistics for one batch, in batch (= event) order.

    Returns ``(latencies, hop_sum, count, max_hops)`` where ``latencies``
    is a list of Python ints for the measurement-window deliveries — the
    exact values, order and dtype path the reference engine produces, so
    downstream ``np.mean``/``np.percentile`` match byte-for-byte.
    """
    if not delivered.any():
        return [], 0, 0, 0
    done = ids[delivered]
    births = arrays.birth[done]
    hops = arrays.hops[done]
    measured = (births >= warmup) & (births < horizon)
    latencies = (now - births[measured]).tolist()
    hop_sum = int(hops[measured].sum())
    max_hops = int(hops.max()) if track_max_hops else 0
    return latencies, hop_sum, int(measured.sum()), max_hops


def tally_pair_cache(pair_seen, keys):
    """Replicate the reference engine's next-hop memo hit/miss counts for a
    batch of flattened ``(router, target)`` keys.

    The reference memo counts a miss on the first lookup of a pair (since
    the last invalidation) and a hit on every later one.  Within a batch
    that means: already-seen keys are hits; of the fresh keys, the first
    occurrence of each distinct value is a miss and the duplicates are
    hits.  Marks fresh keys seen.  Returns ``(hits, misses)``.
    """
    if keys.size == 0:
        return 0, 0
    seen = pair_seen[keys]
    hits = int(seen.sum())
    fresh = keys[~seen]
    if not fresh.size:
        return hits, 0
    uniq = np.unique(fresh)
    misses = int(uniq.size)
    hits += int(fresh.size) - misses
    pair_seen[uniq] = True
    return hits, misses


def record_sends(arrays, pids, vcs, lids, ends_v) -> None:
    """Flush one cycle's buffered send effects into the packet columns.

    Each pid appears at most once per cycle (a sent packet is in flight
    for >= 2 cycles before its next event), so plain fancy-indexed
    scatters are exact: new router (the link's downstream end), new VC,
    occupied input link, and the hop count increment.
    """
    idx = np.asarray(pids, dtype=np.int64)
    lid_arr = np.asarray(lids, dtype=np.int64)
    arrays.router[idx] = ends_v[lid_arr]
    arrays.vc[idx] = np.asarray(vcs, dtype=np.int64)
    arrays.in_link[idx] = lid_arr
    arrays.hops[idx] += 1
