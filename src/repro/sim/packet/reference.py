"""Reference packet engine: the pinned scalar event-heap implementation.

This module is the **semantic specification** of the packet simulator: an
event-driven, object-per-packet heap loop kept deliberately simple.  The
struct-of-arrays engine (:mod:`repro.sim.packet.engine`, the default) must
reproduce its :class:`PacketSimResult` byte-for-byte on seeded runs — the
parity tests and ``repro bench packet`` both run this engine as the
baseline (select it with ``engine="reference"`` / ``--engine=reference``).

Models the mechanisms that shape the Fig. 9/10 latency-load curves:

* 4-flit packets serialized over unit-bandwidth links (a packet occupies a
  link for ``packet_size`` cycles);
* per-link input buffers partitioned into **virtual channels by hop count**
  (distance-class VCs — the standard deadlock-free scheme for minimal
  routing on arbitrary graphs; Valiant phases simply continue the count);
* **credit flow control**: a packet advances only when the downstream
  buffer of its next VC has a free slot, and the slot is held until the
  packet leaves that router — so congestion backpressures to the source;
* FIFO arbitration per output link with VC lookahead (a credit-blocked head
  packet does not stall ready packets behind it);
* optional **UGAL** injection decisions using real queue occupancy
  (4 sampled Valiant intermediates, as in §9.3);
* optional **dynamic faults**: a :class:`~repro.faults.FaultSchedule`
  enters the event heap, links/nodes fail (or heal, or degrade) mid-run,
  packets re-route at the blocked router with bounded retries, and
  TTL-based drops guard against livelock (see docs/FAULT_TOLERANCE.md).

The simulator is event-driven at packet granularity, so cost scales with
delivered packets rather than cycles x ports; reduced-scale Table 3
analogues (~100-250 routers) run in seconds per load point.  Warm-up
traffic is excluded from statistics, as in §9.4.

When a fault schedule is supplied, the router is wrapped in a
:class:`~repro.faults.FaultAwareRouter` automatically (unless it already
is one), and ``run()`` resets the shared health mask first so the schedule
is authoritative — repeated runs of one simulator stay deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.faults import (
    FaultAwareRouter,
    FaultSchedule,
    LinkHealth,
    RouteUnavailableError,
    UNREACHABLE,
)
from repro.obs.metrics import MetricsRegistry
from repro.routing.base import Router
from repro.topologies.base import Topology
from repro.traffic.patterns import TrafficPattern

__all__ = [
    "PacketSimConfig",
    "PacketSimResult",
    "ReferencePacketSimulator",
]


@dataclass
class PacketSimConfig:
    packet_size: int = 4  # flits; also cycles of link serialization
    buffer_packets: int = 8  # buffer slots per (link, VC)
    num_vcs: int = 8  # distance classes (>= max hops + 1)
    link_latency: int = 1
    router_latency: int = 1
    warmup_cycles: int = 1000
    measure_cycles: int = 4000
    drain_cycles: int = 4000
    ugal_samples: int = 4
    seed: int = 0
    # -- fault handling (active only when a FaultSchedule / health mask is
    #    attached; fault-free runs never touch these) --------------------
    max_retries: int = 8  # per-packet reroute budget before dropping
    ttl_hops: int = 64  # hop budget (livelock guard under detours)
    escape_timeout: int = 64  # cycles head-of-line blocked before rerouting


@dataclass
class PacketSimResult:
    offered_load: float
    avg_latency: float
    p99_latency: float
    throughput: float  # delivered flits / endpoint / cycle over measurement
    delivered: int
    injected: int
    stable: bool
    avg_hops: float = 0.0
    max_link_utilization: float = 0.0  # busiest link's busy fraction
    # -- fault accounting (measurement-window packets) -------------------
    delivered_fraction: float = 1.0  # delivered / injected
    dropped: int = 0
    reroutes: int = 0  # all reroute attempts over the whole run
    drop_causes: dict[str, int] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"PacketSimResult(load={self.offered_load:.2f}, "
            f"lat={self.avg_latency:.1f}, thr={self.throughput:.3f}, "
            f"stable={self.stable})"
        )


class _Packet:
    __slots__ = (
        "src", "dest", "router", "vc", "in_link", "intermediate", "birth",
        "hops", "retries", "enq",
    )

    def __init__(self, src_router: int, dest_router: int, birth: int):
        self.src = src_router
        self.dest = dest_router
        self.router = src_router
        self.vc = 0
        self.in_link = -1  # link whose downstream buffer the packet occupies
        self.intermediate = -1  # Valiant midpoint still to visit, or -1
        self.birth = birth
        self.hops = 0
        self.retries = 0  # reroute attempts (faults only)
        self.enq = birth  # cycle the packet joined its current output queue


class ReferencePacketSimulator:
    """One run of (topology, router policy, traffic pattern) at fixed load,
    executed by the scalar event-heap reference loop."""

    def __init__(
        self,
        topology: Topology,
        router: Router,
        pattern: TrafficPattern,
        config: PacketSimConfig | None = None,
        adaptive: bool = False,
        metrics: MetricsRegistry | None = None,
        faults: FaultSchedule | None = None,
    ):
        self.topology = topology
        self.pattern = pattern
        self.cfg = config or PacketSimConfig()
        self.adaptive = adaptive
        #: Explicit registry, or ``None`` to use the ambient one per run.
        self.metrics = metrics
        #: Fault schedule injected into the event heap (None = fault-free).
        self.faults = faults if faults is not None and len(faults) else None
        if self.faults is not None and not isinstance(router, FaultAwareRouter):
            router = FaultAwareRouter(router, LinkHealth(topology.graph))
        self.router = router
        #: Shared health mask — present iff the router is fault-aware, so a
        #: pre-degraded network (mask mutated, no schedule) also gets the
        #: reroute/TTL machinery.
        self.health = router.health if isinstance(router, FaultAwareRouter) else None

        g = topology.graph
        self.link_id: dict[tuple[int, int], int] = {}
        ends: list[tuple[int, int]] = []
        for u in range(g.n):
            for v in g.neighbors(u):
                self.link_id[(u, int(v))] = len(ends)
                ends.append((u, int(v)))
        self.ends = ends
        self.num_links = len(ends)
        # Per-(router, target) next-hop memo, bounded by n² entries at the
        # reduced scales this simulator runs at.  Effectiveness is tracked
        # by the plain hit/miss tallies below and published per run as the
        # sim.packet.nexthop_cache counter pair.
        self._nh_cache: dict[tuple[int, int], int] = {}
        self._nh_hits = 0
        self._nh_misses = 0

    def _next_hop(self, current: int, target: int) -> int:
        key = (current, target)
        hop = self._nh_cache.get(key)
        if hop is None:
            self._nh_misses += 1
            hop = self.router.next_hop(current, target)
            self._nh_cache[key] = hop
        else:
            self._nh_hits += 1
        return hop

    def _flush_metrics(
        self,
        reg: MetricsRegistry,
        *,
        link_busy: np.ndarray,
        latencies: list[int],
        injected: int,
        delivered: int,
        ugal: tuple[int, int],
        vc_cap_sends: int,
        max_hops: int,
        nh_delta: tuple[int, int],
        horizon: int,
        faults: dict | None = None,
    ) -> None:
        """Publish one run's bulk tallies into the registry (enabled mode).

        The hot loop accumulates plain ints / arrays; this single flush is
        what keeps the instrumented path within a few percent of baseline.
        """
        with obs.span("sim.packet.flush"):
            flits = reg.counter(
                "sim.packet.link_flits",
                help="flits serialized per directed link (busy cycles)",
                labels=("link",),
            )
            for lid in np.nonzero(link_busy)[0]:
                u, v = self.ends[lid]
                flits.labels(link=f"{u}->{v}").inc(int(link_busy[lid]))
            reg.histogram(
                "sim.packet.latency_cycles",
                help="measured packet latency (injection to ejection), cycles",
                bounds=(8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192),
            ).observe_many(latencies)
            pkts = reg.counter(
                "sim.packet.packets",
                help="measured-window packet counts by lifecycle stage",
                labels=("stage",),
            )
            pkts.labels(stage="injected").inc(injected)
            pkts.labels(stage="delivered").inc(delivered)
            decisions = reg.counter(
                "sim.packet.ugal_decisions",
                help="UGAL-L injection choices (minimal vs Valiant detour)",
                labels=("choice",),
            )
            decisions.labels(choice="minimal").inc(ugal[0])
            decisions.labels(choice="nonminimal").inc(ugal[1])
            cache = reg.counter(
                "sim.packet.nexthop_cache",
                help="per-(router, target) next-hop memo effectiveness",
                labels=("result",),
            )
            cache.labels(result="hit").inc(nh_delta[0])
            cache.labels(result="miss").inc(nh_delta[1])
            reg.counter(
                "sim.packet.deadlock.vc_cap_sends",
                help="deadlock probe: sends by packets in the capped VC class",
            ).inc(vc_cap_sends)
            reg.gauge(
                "sim.packet.deadlock.max_hops",
                help="deadlock probe: longest hop count of any delivered packet",
            ).set_max(max_hops)
            reg.gauge(
                "sim.packet.max_link_utilization",
                help="busiest link's busy fraction over warmup + measurement",
            ).set_max(float(link_busy.max() / max(horizon, 1)) if self.num_links else 0.0)
            if faults is not None:
                reg.gauge(
                    "faults.links_down",
                    help="undirected links unusable at end of run (down, or "
                    "touching a down node)",
                ).set(faults["links_down"])
                reg.gauge(
                    "faults.nodes_down",
                    help="routers down at end of run",
                ).set(faults["nodes_down"])
                ev_ctr = reg.counter(
                    "faults.events",
                    help="fault events applied from the schedule, by kind",
                    labels=("kind",),
                )
                for k, n in sorted(faults["events"].items()):
                    ev_ctr.labels(kind=k).inc(n)
                drops = reg.counter(
                    "sim.packet.drops",
                    help="measured-window packets dropped, by cause",
                    labels=("cause",),
                )
                for cause, n in sorted(faults["drop_causes"].items()):
                    drops.labels(cause=cause).inc(n)
                reg.counter(
                    "sim.packet.faults.reroutes",
                    help="packet reroute attempts at blocked routers",
                ).inc(faults["reroutes"])
                rungs = reg.counter(
                    "faults.route.rungs",
                    help="routing decisions served per fallback-ladder rung",
                    labels=("rung",),
                )
                for rung, n in faults["rungs"].items():
                    if n:
                        rungs.labels(rung=rung).inc(n)
                recompute = reg.counter(
                    "faults.recompute.dests",
                    help="destination distance-vector recomputes (eager at "
                    "fault time vs lazy on first use)",
                    labels=("mode",),
                )
                recompute.labels(mode="eager").inc(faults["recompute_eager"])
                recompute.labels(mode="lazy").inc(faults["recompute_lazy"])
                reg.histogram(
                    "faults.recompute.batch",
                    help="eagerly recomputed destinations per topology change",
                    bounds=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256),
                ).observe_many(faults["recompute_batches"])

    def run(self, load: float) -> PacketSimResult:
        cfg = self.cfg
        topo = self.topology
        rng = np.random.default_rng(cfg.seed)
        horizon = cfg.warmup_cycles + cfg.measure_cycles

        # Observability: resolve the registry once per run; when disabled the
        # hot loop pays a single local-bool test per guarded block.
        reg = self.metrics if self.metrics is not None else obs.get_registry()
        obs_on = reg.enabled
        nh_hits0, nh_misses0 = self._nh_hits, self._nh_misses
        ugal_minimal = 0
        ugal_nonminimal = 0
        vc_cap_sends = 0  # deadlock probe: sends in the capped VC class
        max_hops_seen = 0
        if obs_on:
            qdepth = reg.histogram(
                "sim.packet.queue_depth",
                help="output-queue depth observed at each packet enqueue",
                bounds=(0, 1, 2, 4, 8, 16, 32, 64, 128),
            )

        # ---- fault state ---------------------------------------------------
        health = self.health
        faults_on = health is not None
        if faults_on and self.faults is not None:
            # The schedule is authoritative: start from a pristine mask so
            # repeated run() calls on one simulator stay deterministic.
            health.reset()
        reroutes = 0
        dropped_measured = 0
        drop_causes: dict[str, int] = {}
        applied_events: dict[str, int] = {}
        if faults_on:
            self._nh_cache.clear()  # a prior run may have cached fault-era hops
            rungs0 = dict(self.router.rung_counts)
            eager0, lazy0 = self.router.recompute_eager, self.router.recompute_lazy
            batches0 = len(self.router.recompute_batches)

        # ---- pre-generated open-loop injections (Poisson per endpoint) ----
        rate = load / cfg.packet_size  # packets / endpoint / cycle
        events: list[tuple[int, int, int, object]] = []  # (time, kind, seq, payload)
        seq = 0
        injected_measured = 0
        # Fault events outrank arrivals at the same timestamp, so a link that
        # dies at t is already dead for packets arriving at t.
        FAULT, ARRIVE, WAKE = 0, 1, 2
        if self.faults is not None:
            for ev in self.faults:
                heapq.heappush(events, (ev.time, FAULT, seq, ev))
                seq += 1
        if rate > 0:
            with obs.span("sim.packet.inject"):
                for e in range(topo.num_endpoints):
                    src_r = int(topo.endpoint_router[e])
                    t = rng.exponential(1.0 / rate)
                    while t < horizon:
                        dest_e = self.pattern.dest_endpoint(e, rng)
                        birth = int(t)
                        t += rng.exponential(1.0 / rate)
                        if dest_e == e:
                            continue
                        dest_r = int(topo.endpoint_router[dest_e])
                        if dest_r == src_r:
                            continue
                        pkt = _Packet(src_r, dest_r, birth)
                        heapq.heappush(events, (birth, ARRIVE, seq, pkt))
                        seq += 1
                        if cfg.warmup_cycles <= birth < horizon:
                            injected_measured += 1

        link_free = np.zeros(self.num_links, dtype=np.int64)
        link_busy = np.zeros(self.num_links, dtype=np.int64)  # cycles occupied
        link_ok = np.ones(self.num_links, dtype=bool)  # health mask per link
        link_ser = np.full(self.num_links, cfg.packet_size, dtype=np.int64)
        credits = np.full(
            (self.num_links, cfg.num_vcs), cfg.buffer_packets, dtype=np.int32
        )
        waiting: list[list[_Packet]] = [[] for _ in range(self.num_links)]
        wake_scheduled = np.zeros(self.num_links, dtype=bool)
        # Pending escape-check wake per link (dedupes heap pushes).
        escape_at = np.full(self.num_links, -1, dtype=np.int64)
        if faults_on:
            # A pre-degraded mask (no schedule) must be visible from cycle 0.
            for lid, (u, v) in enumerate(self.ends):
                link_ok[lid] = health.is_up(u, v)
                link_ser[lid] = int(np.ceil(cfg.packet_size * health.degrade_factor(u, v)))

        latencies: list[int] = []
        hop_total = 0
        delivered_measured = 0

        def occupancy(u: int, v: int) -> float:
            return float(len(waiting[self.link_id[(u, v)]]))

        def choose_route(pkt: _Packet) -> None:
            """UGAL-L decision at injection (minimal vs sampled Valiant)."""
            nonlocal ugal_minimal, ugal_nonminimal
            n = topo.num_routers
            min_next = self._next_hop(pkt.src, pkt.dest)
            best_cost = self.router.distance(pkt.src, pkt.dest) * (
                1.0 + occupancy(pkt.src, min_next)
            )
            best_mid = -1
            for _ in range(cfg.ugal_samples):
                mid = int(rng.integers(0, n))
                if mid == pkt.src or mid == pkt.dest:
                    continue
                hops = self.router.distance(pkt.src, mid) + self.router.distance(
                    mid, pkt.dest
                )
                if hops >= UNREACHABLE:
                    continue  # intermediate cut off under faults
                cost = hops * (1.0 + occupancy(pkt.src, self._next_hop(pkt.src, mid)))
                if cost < best_cost:
                    best_cost, best_mid = cost, mid
            pkt.intermediate = best_mid
            if best_mid < 0:
                ugal_minimal += 1
            else:
                ugal_nonminimal += 1

        def drop(pkt: _Packet, cause: str, now: int) -> None:
            """Give up on a packet: free its buffer slot, account the loss
            (measurement-window packets only, like delivery stats)."""
            nonlocal dropped_measured
            release(pkt, now)
            if cfg.warmup_cycles <= pkt.birth < horizon:
                dropped_measured += 1
                drop_causes[cause] = drop_causes.get(cause, 0) + 1

        def route_next(pkt: _Packet, exclude: tuple[int, ...] = ()) -> int:
            """Next hop honoring the fault mask.  A cut-off Valiant midpoint
            degrades to direct routing; a cut-off destination raises."""
            target = pkt.intermediate if pkt.intermediate >= 0 else pkt.dest
            try:
                if exclude:
                    return self.router.route_hops(pkt.router, target, exclude)[0][0]
                return self._next_hop(pkt.router, target)
            except RouteUnavailableError:
                if pkt.intermediate < 0:
                    raise
                pkt.intermediate = -1
                return route_next(pkt, exclude)

        def reroute(pkt: _Packet, blocked: int, now: int) -> None:
            """Re-route a displaced packet at its current router, excluding
            the *blocked* neighbor; bounded by the per-packet retry budget."""
            nonlocal reroutes
            if not health.node_up(pkt.router):
                drop(pkt, "node_down", now)
                return
            pkt.retries += 1
            if pkt.retries > cfg.max_retries:
                drop(pkt, "retries", now)
                return
            reroutes += 1
            try:
                nxt = route_next(pkt, exclude=(blocked,))
            except RouteUnavailableError:
                drop(pkt, "unreachable", now)
                return
            lid = self.link_id[(pkt.router, nxt)]
            pkt.enq = now
            waiting[lid].append(pkt)
            if obs_on:
                qdepth.observe(len(waiting[lid]))
            try_dispatch(lid, now + cfg.router_latency)

        def apply_fault(ev, now: int) -> None:
            """Apply one fault event: update the shared mask, invalidate the
            routing caches, and displace packets queued on dead links."""
            health.apply(ev)
            applied_events[ev.kind] = applied_events.get(ev.kind, 0) + 1
            self._nh_cache.clear()
            self.router.sync()  # budgeted eager recompute at event time
            for lid, (u, v) in enumerate(self.ends):
                link_ok[lid] = health.is_up(u, v)
                link_ser[lid] = int(np.ceil(cfg.packet_size * health.degrade_factor(u, v)))
            for lid in range(self.num_links):
                if link_ok[lid] or not waiting[lid]:
                    continue
                displaced, waiting[lid] = waiting[lid], []
                blocked = self.ends[lid][1]
                for pkt in displaced:
                    reroute(pkt, blocked, now)

        def release(pkt: _Packet, now: int) -> None:
            """Free the buffer slot the packet held (when it leaves a router)."""
            if pkt.in_link >= 0:
                credits[pkt.in_link, pkt.vc] += 1
                schedule_wake(pkt.in_link, now)

        def schedule_wake(lid: int, when: int) -> None:
            nonlocal seq
            if waiting[lid] and not wake_scheduled[lid]:
                wake_scheduled[lid] = True
                heapq.heappush(events, (max(when, int(link_free[lid])), WAKE, seq, lid))
                seq += 1

        def try_dispatch(lid: int, now: int) -> None:
            """Move sendable packets out on link lid (FIFO with VC lookahead)."""
            nonlocal vc_cap_sends, seq
            if faults_on and not link_ok[lid]:
                return  # dead link; apply_fault displaces its queue
            while waiting[lid] and link_free[lid] <= now:
                sent = False
                for i, pkt in enumerate(waiting[lid]):
                    nvc = min(pkt.vc + 1, cfg.num_vcs - 1)
                    if credits[lid, nvc] > 0:
                        waiting[lid].pop(i)
                        credits[lid, nvc] -= 1
                        release(pkt, now)  # leaves the current router
                        ser = int(link_ser[lid])  # degraded links serialize slower
                        link_free[lid] = now + ser
                        link_busy[lid] += ser
                        if obs_on and pkt.vc + 1 > nvc:
                            # Deadlock probe: the packet exhausted its
                            # distance-class VCs and rides the capped class.
                            vc_cap_sends += 1
                        arrive = now + ser + cfg.link_latency
                        _, v = self.ends[lid]
                        pkt.router = v
                        pkt.vc = nvc
                        pkt.in_link = lid
                        pkt.hops += 1
                        nonlocal_push(arrive, pkt)
                        sent = True
                        break
                if not sent:
                    if faults_on and waiting[lid]:
                        # Escape path: a head-of-line packet credit-blocked
                        # past the timeout gets rerouted around this port
                        # (this is how the detour rung becomes reachable).
                        head_wait = now - waiting[lid][0].enq
                        if head_wait >= cfg.escape_timeout:
                            head = waiting[lid].pop(0)
                            reroute(head, self.ends[lid][1], now)
                            continue
                        if escape_at[lid] <= now:
                            when = now + cfg.escape_timeout - head_wait
                            escape_at[lid] = when
                            heapq.heappush(events, (when, WAKE, seq, lid))
                            seq += 1
                    return
            schedule_wake(lid, int(link_free[lid]))

        def nonlocal_push(time: int, pkt: _Packet) -> None:
            nonlocal seq
            heapq.heappush(events, (time, ARRIVE, seq, pkt))
            seq += 1

        # ---- main loop ----
        end_time = horizon + cfg.drain_cycles
        with obs.span("sim.packet.events"):
            while events:
                now, kind, _, payload = heapq.heappop(events)
                if now > end_time:
                    break
                if kind == FAULT:
                    apply_fault(payload, now)
                    continue
                if kind == WAKE:
                    lid = payload  # type: ignore[assignment]
                    wake_scheduled[lid] = False
                    try_dispatch(lid, now)
                    continue

                pkt: _Packet = payload  # type: ignore[assignment]
                if faults_on and not health.node_up(pkt.router):
                    # The packet was in flight toward a router that died.
                    drop(pkt, "node_down", now)
                    continue
                if pkt.in_link < 0 and self.adaptive and pkt.router == pkt.src:
                    if faults_on:
                        try:
                            choose_route(pkt)
                        except RouteUnavailableError:
                            drop(pkt, "unreachable", now)
                            continue
                    else:
                        choose_route(pkt)
                if pkt.intermediate == pkt.router:
                    pkt.intermediate = -1
                if pkt.router == pkt.dest:
                    release(pkt, now)  # ejection frees the buffer immediately
                    if cfg.warmup_cycles <= pkt.birth < horizon:
                        latencies.append(now - pkt.birth)
                        hop_total += pkt.hops
                        delivered_measured += 1
                    if obs_on and pkt.hops > max_hops_seen:
                        max_hops_seen = pkt.hops
                    continue
                if faults_on:
                    if pkt.hops >= cfg.ttl_hops:
                        drop(pkt, "ttl", now)  # livelock guard under detours
                        continue
                    try:
                        nxt = route_next(pkt)
                    except RouteUnavailableError:
                        drop(pkt, "unreachable", now)
                        continue
                else:
                    target = pkt.intermediate if pkt.intermediate >= 0 else pkt.dest
                    nxt = self._next_hop(pkt.router, target)
                lid = self.link_id[(pkt.router, nxt)]
                pkt.enq = now
                waiting[lid].append(pkt)
                if obs_on:
                    qdepth.observe(len(waiting[lid]))
                try_dispatch(lid, now + cfg.router_latency)

        if obs_on:
            faults_bundle = None
            if faults_on:
                faults_bundle = {
                    "links_down": health.links_down_count(),
                    "nodes_down": health.nodes_down_count(),
                    "events": applied_events,
                    "drop_causes": drop_causes,
                    "reroutes": reroutes,
                    "rungs": {
                        r: n - rungs0.get(r, 0)
                        for r, n in self.router.rung_counts.items()
                    },
                    "recompute_eager": self.router.recompute_eager - eager0,
                    "recompute_lazy": self.router.recompute_lazy - lazy0,
                    "recompute_batches": self.router.recompute_batches[batches0:],
                }
            self._flush_metrics(
                reg,
                link_busy=link_busy,
                latencies=latencies,
                injected=injected_measured,
                delivered=delivered_measured,
                ugal=(ugal_minimal, ugal_nonminimal),
                vc_cap_sends=vc_cap_sends,
                max_hops=max_hops_seen,
                nh_delta=(
                    self._nh_hits - nh_hits0,
                    self._nh_misses - nh_misses0,
                ),
                horizon=horizon,
                faults=faults_bundle,
            )

        avg_lat = float(np.mean(latencies)) if latencies else float("inf")
        p99 = float(np.percentile(latencies, 99)) if latencies else float("inf")
        thr = (
            delivered_measured
            * cfg.packet_size
            / max(topo.num_endpoints * cfg.measure_cycles, 1)
        )
        stable = bool(latencies) and delivered_measured >= 0.85 * max(injected_measured, 1)
        return PacketSimResult(
            offered_load=load,
            avg_latency=avg_lat,
            p99_latency=p99,
            throughput=thr,
            delivered=delivered_measured,
            injected=injected_measured,
            stable=stable,
            avg_hops=hop_total / delivered_measured if delivered_measured else 0.0,
            max_link_utilization=float(link_busy.max() / max(horizon, 1))
            if self.num_links
            else 0.0,
            delivered_fraction=(
                delivered_measured / injected_measured if injected_measured else 1.0
            ),
            dropped=dropped_measured,
            reroutes=reroutes,
            drop_causes=dict(sorted(drop_causes.items())),
        )
