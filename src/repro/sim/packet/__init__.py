"""Packet-level network simulator: SoA batched engine + scalar reference.

Public surface (unchanged from the original single-module simulator):

* :class:`PacketSimulator` — the facade; ``engine="soa"`` (default) runs
  the struct-of-arrays batched engine, ``engine="reference"`` the pinned
  scalar event-heap loop.  Both are byte-identical on seeded runs.
* :class:`PacketSimConfig` / :class:`PacketSimResult` — shared config and
  result types (defined next to the reference engine, the semantic spec).
* :func:`latency_load_sweep` — load sweep with saturation early-stop.

Internals: :mod:`~repro.sim.packet.state` (columnar packet arrays, link
mirrors, cycle buckets), :mod:`~repro.sim.packet.kernel` (whole-batch
NumPy passes; RL114 hot-loop discipline), :mod:`~repro.sim.packet.engine`
(the orchestrator), :mod:`~repro.sim.packet.reference` (the spec engine).
See docs/SIMULATORS.md for the parity guarantee and bench instructions.
"""

from repro.sim.packet.engine import PacketSimulator, latency_load_sweep
from repro.sim.packet.reference import (
    PacketSimConfig,
    PacketSimResult,
    ReferencePacketSimulator,
)

__all__ = [
    "PacketSimConfig",
    "PacketSimResult",
    "PacketSimulator",
    "ReferencePacketSimulator",
    "latency_load_sweep",
]
