"""Struct-of-arrays packet engine: batched events, byte-identical results.

This is the default engine behind :class:`PacketSimulator`.  It executes
the exact discrete-event semantics of the reference scalar loop
(:mod:`repro.sim.packet.reference`) — same RNG draw order, same event
order, same credit/dispatch interleave — but restructured for speed:

* packet state lives in NumPy columns (:class:`~.state.PacketArrays`), so
  each cycle's arrivals are resolved in a handful of fancy-indexed passes
  (:mod:`~.kernel`) instead of per-object attribute chases;
* next hops come from a dense per-router table
  (:func:`repro.routing.table.next_hop_table`) gathered per batch, not
  from one memoized ``Router.next_hop`` call per event;
* the global event heap becomes cycle buckets (:func:`~.state.make_buckets`)
  — integer event times and the ``FAULT < ARRIVE < WAKE`` kind order make
  per-cycle append-order lists replay the heap exactly;
* per-link credit/queue state stays in plain Python lists during the run
  (*hot mirrors*, cheap to index from the order-sensitive dispatch loop)
  and is converted back to arrays for the bulk metrics flush.

**Parity rules the implementation follows** (verified by
``tests/test_packet_soa_parity.py`` and gated in CI):

* the injection loop stays scalar — inter-arrival and destination draws
  interleave per endpoint, so vectorizing them would consume the RNG
  stream in a different order;
* UGAL decisions and every faulted-epoch routing decision stay scalar (and
  under a dirty health mask go through the genuine
  :class:`~repro.faults.FaultAwareRouter` ladder with the reference's memo
  semantics); the vectorized fast path runs only for cycles where routing
  is history-free and table-backed (fault-free runs, and clean epochs of
  faulted runs);
* measured latencies are accumulated in event order as Python ints, so
  the final ``np.mean``/``np.percentile`` see the identical operand array.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro import obs
from repro.faults import FaultSchedule, RouteUnavailableError, UNREACHABLE
from repro.obs.metrics import MetricsRegistry
from repro.routing.base import Router
from repro.sim.packet import kernel
from repro.sim.packet.reference import (
    PacketSimConfig,
    PacketSimResult,
    ReferencePacketSimulator,
)
from repro.sim.packet.state import (
    LinkState,
    PacketArrays,
    build_link_id_table,
    make_buckets,
)
from repro.topologies.base import Topology
from repro.traffic.patterns import TrafficPattern, UniformRandomPattern

__all__ = [
    "PacketSimulator",
    "latency_load_sweep",
]

#: Per-router-object distance-table memo for the fault-free UGAL path
#: (values are exactly ``router.distance(u, t)`` flattened to a list).
_DIST_TABLES: "weakref.WeakKeyDictionary[Router, list[int]]" = (
    weakref.WeakKeyDictionary()
)


def _distance_table(router: Router) -> list[int]:
    # Imported here (not at module level): repro.routing.table pulls in the
    # analysis/topologies/store stack, which circularly imports repro.routing.
    from repro.routing.table import TableRouter

    try:
        cached = _DIST_TABLES.get(router)
    except TypeError:
        cached = None
    if cached is not None:
        return cached
    n = router.graph.n
    if isinstance(router, TableRouter):
        flat = router.dist.astype(np.int64).ravel().tolist()
    else:
        dist = router.distance
        flat = [dist(u, t) for u in range(n) for t in range(n)]
    try:
        _DIST_TABLES[router] = flat
    except TypeError:
        pass
    return flat


class PacketSimulator(ReferencePacketSimulator):
    """One run of (topology, router policy, traffic pattern) at fixed load.

    ``engine`` selects the execution strategy: ``"soa"`` (default) runs the
    struct-of-arrays batched engine; ``"reference"`` runs the pinned scalar
    event-heap loop.  Both produce byte-identical
    :class:`~repro.sim.packet.reference.PacketSimResult` values on the same
    seeded inputs — the reference engine exists as the parity baseline and
    for ``repro bench packet``.
    """

    def __init__(
        self,
        topology: Topology,
        router: Router,
        pattern: TrafficPattern,
        config: PacketSimConfig | None = None,
        adaptive: bool = False,
        metrics: MetricsRegistry | None = None,
        faults: FaultSchedule | None = None,
        engine: str = "soa",
    ):
        if engine not in ("soa", "reference"):
            raise ValueError(f"unknown packet engine {engine!r}")
        super().__init__(topology, router, pattern, config, adaptive, metrics, faults)
        self.engine = engine
        # Next-hop memo effectiveness state for the batched paths; mirrors
        # the reference `_nh_cache` semantics (persists across fault-free
        # runs, invalidated per fault event).
        self._pair_seen: np.ndarray | None = None
        self._pair_seen_list: list[bool] | None = None
        self._pair_seen_b: bytearray | None = None

    def run(self, load: float) -> PacketSimResult:
        if self.engine == "reference":
            return super().run(load)
        if self.health is None and not self.adaptive:
            return self._run_pure(load)
        return self._run_soa(load)

    # -- pure mode: fault-free, non-adaptive ------------------------------

    def _run_pure(self, load: float) -> PacketSimResult:
        """Precomputed-route engine for fault-free minimal routing.

        Without faults or UGAL, ``next_hop`` is history-free, so every
        packet's whole path is known at injection time.  The engine
        resolves all routes in a few table gathers up front (one column of
        fancy indexing per hop level) and flattens three per-(packet, hop)
        tables — outgoing link id, credit index ``lid*V + vc``, and the
        ``(router, dest)`` memo key.  A packet in flight is then just an
        integer code ``pid * stride + hop``: the event loop advances codes
        through cycle buckets doing timing-only work (credits, FIFO
        dispatch, wake scheduling) with no routing computation and no
        per-cycle NumPy at all.  Event order, credit interleave, RNG
        stream, and metric tallies are byte-identical to the reference
        (same rules as :meth:`_run_soa`; see the module docstring).
        """
        cfg = self.cfg
        topo = self.topology
        rng = np.random.default_rng(cfg.seed)
        horizon = cfg.warmup_cycles + cfg.measure_cycles
        end_time = horizon + cfg.drain_cycles
        warm = cfg.warmup_cycles
        n = topo.num_routers

        reg = self.metrics if self.metrics is not None else obs.get_registry()
        obs_on = reg.enabled
        vc_cap_sends = 0
        max_hops_seen = 0
        nh_hits = 0
        nh_misses = 0
        depths: list[int] = []
        if obs_on:
            qdepth = reg.histogram(
                "sim.packet.queue_depth",
                help="output-queue depth observed at each packet enqueue",
                bounds=(0, 1, 2, 4, 8, 16, 32, 64, 128),
            )

        from repro.routing.table import next_hop_table

        nh_tab = next_hop_table(self.router)
        lid_tab = build_link_id_table(n, self.link_id)
        # Reference `_nh_cache` hit/miss parity: first touch of a (router,
        # dest) pair is a miss, later touches hits; persists across runs on
        # the same simulator exactly like the reference memo dict.  The
        # tally only feeds the sim.packet.nexthop_cache metric pair, so it
        # is maintained only while observability is on — the routing answers
        # themselves come from the precomputed tables either way.
        if obs_on:
            if self._pair_seen_b is None:
                self._pair_seen_b = bytearray(n * n)
            seen = self._pair_seen_b
        else:
            seen = None

        # ---- open-loop injections (scalar loop: RNG draw-order parity) ----
        rate = load / cfg.packet_size
        injected_measured = 0
        # Eager empty lists (not the lazy ``make_buckets`` Nones), with
        # slack past end_time: every push in the hot loop is then a bare
        # ``buckets[t].append(...)`` with no horizon bound check.  The
        # main loop never consumes the slack slots, which is observably
        # the same as the reference dropping those pushes — except that
        # the parked sends still claimed the wire, so the busy-time
        # reconstruction below counts the slack slots too.
        slack = cfg.router_latency + cfg.packet_size + cfg.link_latency + 1
        arr_buckets: list = [[] for _ in range(end_time + slack + 1)]
        wake_buckets: list = [[] for _ in range(end_time + slack + 1)]
        src_l: list[int] = []
        dest_l: list[int] = []
        birth_l: list[int] = []
        pid = 0
        if rate > 0:
            with obs.span("sim.packet.inject"):
                pattern = self.pattern
                pattern_dest = pattern.dest_endpoint
                er = topo.endpoint_router.tolist()
                exponential = rng.exponential
                scale = 1.0 / rate
                # The uniform pattern's draw is one bounded `rng.integers`
                # call; inlining it skips a Python method call per packet
                # while consuming the identical RNG stream.  Exact-type
                # check so subclass overrides keep the virtual call.
                uniform = type(pattern) is UniformRandomPattern
                integers = rng.integers
                ne1 = topo.num_endpoints - 1
                if uniform:
                    # The off-by-one remap never lands on ``e`` itself, so
                    # the self-destination check is statically dead here.
                    for e in range(topo.num_endpoints):
                        src_r = er[e]
                        t = exponential(scale)
                        while t < horizon:
                            d = int(integers(0, ne1))
                            dest_e = d if d < e else d + 1
                            birth = int(t)
                            t += exponential(scale)
                            dest_r = er[dest_e]
                            if dest_r == src_r:
                                continue
                            src_l.append(src_r)
                            dest_l.append(dest_r)
                            birth_l.append(birth)
                            pid += 1
                else:
                    for e in range(topo.num_endpoints):
                        src_r = er[e]
                        t = exponential(scale)
                        while t < horizon:
                            dest_e = pattern_dest(e, rng)
                            birth = int(t)
                            t += exponential(scale)
                            if dest_e == e:
                                continue
                            dest_r = er[dest_e]
                            if dest_r == src_r:
                                continue
                            src_l.append(src_r)
                            dest_l.append(dest_r)
                            birth_l.append(birth)
                            pid += 1

        # ---- whole-route precompute (one gather column per hop level) -----
        V = cfg.num_vcs
        vmax = V - 1
        if pid:
            srcs = np.asarray(src_l, dtype=np.int64)
            dests = np.asarray(dest_l, dtype=np.int64)
            births = np.asarray(birth_l, dtype=np.int64)
            injected_measured = int(
                np.count_nonzero((births >= warm) & (births < horizon))
            )
            cols_lid = []
            cols_ci = []
            cols_key = []
            cur = srcs
            h = 0
            while True:
                done = cur == dests
                nxt = np.where(done, cur, nh_tab[cur, dests])
                lid_col = np.where(done, -1, lid_tab[cur, nxt]).astype(np.int64)
                nvc = h + 1 if h + 1 < vmax else vmax
                cols_lid.append(lid_col)
                cols_ci.append(lid_col * V + nvc)
                if obs_on:
                    cols_key.append(cur * n + dests)
                if bool(done.all()):
                    break
                cur = nxt
                h += 1
                if h > cfg.ttl_hops:
                    raise RuntimeError(
                        "packet route did not reach its destination within "
                        f"ttl_hops={cfg.ttl_hops}; the next-hop table has an "
                        "unreachable or cyclic pair"
                    )
            # The flat code layout is ``pid * stride + hop`` with
            # ``stride == ncols`` exactly: the loop above always appends a
            # final all-done column (every entry -1), so every route ends
            # with a -1 slot and no padding is needed.  Hop/pid extraction
            # (``% stride`` / ``// stride``) only happens in the deferred
            # vectorized pass and the obs-gated VC-cap tally, so a pow2
            # stride would only inflate the tables.
            ncols = len(cols_lid)
            stride = ncols
            lid_mat = np.stack(cols_lid, axis=1)
            ci_mat = np.stack(cols_ci, axis=1)
            lid_flat = lid_mat.ravel()
            lid_route = lid_flat.tolist()
            ci_route = ci_mat.ravel().tolist()
            # Release tables: the send of hop ``h`` frees the upstream
            # (hop ``h-1``) buffer — in the flat ``pid * stride + hop``
            # layout that is exactly the previous slot, so a one-slot
            # shift of the flat tables bakes "which credit to release"
            # into a single lookup; ``rel_il[code] < 0`` marks hop 0
            # (nothing to release).  The shift is valid at ``hop == 0``
            # too: slot ``code - 1`` is the previous row's last column,
            # which is always -1 (either fill, or the all-done column the
            # gather loop ends on).
            rel_il = [-1]
            rel_il.extend(lid_route[:-1])
            rel_ci = [0]
            rel_ci.extend(ci_route[:-1])
            if obs_on:
                key_flat = np.stack(cols_key, axis=1).ravel()
            else:
                key_flat = None
            # Seed the buckets with hop-0 codes.  The injection loop runs
            # in (endpoint, time) order, so pids ascend within any one
            # birth cycle — a stable argsort of the births therefore
            # reproduces the reference's per-cycle injection order
            # exactly, and the whole fill is one sort + one tolist
            # instead of a per-packet bucket append.
            order = np.argsort(births, kind="stable")
            codes0 = (order * stride).tolist()
            counts = np.bincount(births).tolist()
            o = 0
            for bt, c in enumerate(counts):
                if c:
                    nxt_o = o + c
                    arr_buckets[bt] = codes0[o:nxt_o]
                    o = nxt_o
        else:
            stride = 2
            lid_flat = None
            key_flat = None
            lid_route = []
            ci_route = []
            rel_il = []
            rel_ci = []

        # ---- link state (bare lists; no faults, so serialization is the
        # constant packet size and the LinkState health mirrors are skipped)
        m = len(self.ends)
        RL = cfg.router_latency
        LL = cfg.link_latency
        PS = cfg.packet_size
        link_free = [0] * m
        credits = [cfg.buffer_packets] * (m * V)
        waiting: list[list[int]] = [[] for _ in range(m)]
        wake_scheduled = [False] * m
        # Scan-failure cache.  Every element of queue L needs a credit of
        # link L (ci encodes (L, vc)), and those credits only grow at the
        # release sites below — so once a dispatch scan fails, re-scanning
        # is provably futile until a release clears the flag or an
        # eligible packet joins the queue.  blocked[L] == True guarantees
        # every element currently in waiting[L] is credit-ineligible;
        # False promises nothing (the scan must run to find out).
        blocked = [False] * m

        def try_dispatch_pure(
            lid: int,
            now: int,
            # Hot-loop state bound as defaults: locals beat closure cells.
            waiting=waiting,
            link_free=link_free,
            credits=credits,
            ci_route=ci_route,
            rel_il=rel_il,
            rel_ci=rel_ci,
            blocked=blocked,
            wake_scheduled=wake_scheduled,
            wake_buckets=wake_buckets,
            arr_buckets=arr_buckets,
            PS=PS,
            LL=LL,
            stride=stride,
            vmax=vmax,
            obs_on=obs_on,
        ) -> None:
            """Reference `try_dispatch` clone over route codes (FIFO with
            VC lookahead, wake scheduling; no faults in this mode)."""
            nonlocal vc_cap_sends
            q = waiting[lid]
            while q and link_free[lid] <= now:
                sent = False
                for i, code in enumerate(q):
                    ci = ci_route[code]
                    if credits[ci] > 0:
                        del q[i]
                        credits[ci] -= 1
                        il = rel_il[code]
                        if il >= 0:  # leaves a router: release upstream
                            blocked[il] = False
                            credits[rel_ci[code]] += 1
                            if waiting[il] and not wake_scheduled[il]:
                                wake_scheduled[il] = True
                                t = link_free[il]
                                if t < now:
                                    t = now
                                wake_buckets[t].append(il)
                        nf = now + PS
                        link_free[lid] = nf
                        if obs_on and code % stride >= vmax:
                            vc_cap_sends += 1
                        arr_buckets[nf + LL].append(code + 1)
                        sent = True
                        break
                if not sent:
                    blocked[lid] = True
                    return
            if q and not wake_scheduled[lid]:
                wake_scheduled[lid] = True
                wake_buckets[link_free[lid]].append(lid)

        # ---- main loop: arrivals then wakes, cycle by cycle ---------------
        with obs.span("sim.packet.events"):
            for now in range(end_time + 1):
                al = arr_buckets[now]
                if al:
                    now_rl = now + RL
                    for code in al:
                        lid = lid_route[code]
                        if lid >= 0:
                            # Live hop: send inline or enqueue.  (The memo
                            # tally is recovered from the consumed buckets
                            # after the loop — see below.)
                            q = waiting[lid]
                            if not q and link_free[lid] <= now_rl:
                                ci = ci_route[code]
                                if credits[ci] > 0:
                                    credits[ci] -= 1
                                    il = rel_il[code]
                                    if il >= 0:
                                        blocked[il] = False
                                        credits[rel_ci[code]] += 1
                                        if waiting[il] and not wake_scheduled[il]:
                                            wake_scheduled[il] = True
                                            t = link_free[il]
                                            if t < now_rl:
                                                t = now_rl
                                            wake_buckets[t].append(il)
                                    nf = now_rl + PS
                                    link_free[lid] = nf
                                    if obs_on:
                                        depths.append(1)
                                        if code % stride >= vmax:
                                            vc_cap_sends += 1
                                    arr_buckets[nf + LL].append(code + 1)
                                else:
                                    # Free link but no credit: a sole-element
                                    # dispatch scan would fail (the release
                                    # wake revives it), so just enqueue and
                                    # record the failure.
                                    q.append(code)
                                    blocked[lid] = True
                                    if obs_on:
                                        depths.append(1)
                            else:
                                q.append(code)
                                if obs_on:
                                    depths.append(len(q))
                                lf = link_free[lid]
                                if lf <= now_rl:
                                    if not blocked[lid]:
                                        # Head dispatch inline (the common
                                        # scan outcome); fall back to the
                                        # full VC-lookahead scan otherwise.
                                        head = q[0]
                                        hci = ci_route[head]
                                        if credits[hci] > 0:
                                            del q[0]
                                            credits[hci] -= 1
                                            il = rel_il[head]
                                            if il >= 0:
                                                blocked[il] = False
                                                credits[rel_ci[head]] += 1
                                                if (
                                                    waiting[il]
                                                    and not wake_scheduled[il]
                                                ):
                                                    wake_scheduled[il] = True
                                                    t = link_free[il]
                                                    if t < now_rl:
                                                        t = now_rl
                                                    wake_buckets[t].append(il)
                                            nf = now_rl + PS
                                            link_free[lid] = nf
                                            if (
                                                obs_on
                                                and head % stride >= vmax
                                            ):
                                                vc_cap_sends += 1
                                            arr_buckets[nf + LL].append(head + 1)
                                            if q and not wake_scheduled[lid]:
                                                wake_scheduled[lid] = True
                                                wake_buckets[nf].append(lid)
                                        else:
                                            try_dispatch_pure(lid, now_rl)
                                    elif credits[ci_route[code]] > 0:
                                        # Everything ahead is provably
                                        # credit-blocked, so the reference
                                        # scan would send exactly this new
                                        # tail element.
                                        del q[-1]
                                        credits[ci_route[code]] -= 1
                                        il = rel_il[code]
                                        if il >= 0:
                                            blocked[il] = False
                                            credits[rel_ci[code]] += 1
                                            if (
                                                waiting[il]
                                                and not wake_scheduled[il]
                                            ):
                                                wake_scheduled[il] = True
                                                t = link_free[il]
                                                if t < now_rl:
                                                    t = now_rl
                                                wake_buckets[t].append(il)
                                        nf = now_rl + PS
                                        link_free[lid] = nf
                                        if obs_on and code % stride >= vmax:
                                            vc_cap_sends += 1
                                        arr_buckets[nf + LL].append(code + 1)
                                        if q and not wake_scheduled[lid]:
                                            wake_scheduled[lid] = True
                                            wake_buckets[nf].append(lid)
                                    # else: still blocked — the reference
                                    # scan would fail without arming a wake.
                                else:
                                    if blocked[lid] and credits[ci_route[code]] > 0:
                                        # An eligible packet parked behind
                                        # the blocked set while the link is
                                        # busy: the next scan can succeed.
                                        blocked[lid] = False
                                    if not wake_scheduled[lid]:
                                        wake_scheduled[lid] = True
                                        wake_buckets[lf].append(lid)
                        else:
                            # Delivered: ejection frees the buffer.  A
                            # delivery is always at hop >= 1, so the
                            # release tables are valid unconditionally.
                            # Latency / hop accounting is deferred to the
                            # vectorized pass below — the delivery cycle
                            # is just this code's bucket index.
                            credits[rel_ci[code]] += 1
                            il = rel_il[code]
                            blocked[il] = False
                            if waiting[il] and not wake_scheduled[il]:
                                wake_scheduled[il] = True
                                t = link_free[il]
                                if t < now:
                                    t = now
                                wake_buckets[t].append(il)
                wl = wake_buckets[now]
                if wl:
                    # Same-cycle wake arms append to wl while this loop
                    # runs; the index-based list iterator picks them up in
                    # push order, matching the reference heap.
                    for lid in wl:
                        wake_scheduled[lid] = False
                        # Inline head dispatch: the dominant wake outcome is
                        # "send the queue head" — handle it without the
                        # generic scan, falling back for VC lookahead.
                        q = waiting[lid]
                        if not q:
                            continue
                        lf = link_free[lid]
                        if lf > now:
                            # The link was re-claimed since this wake was
                            # set: re-arm at the new link_free (tail rule).
                            wake_scheduled[lid] = True
                            wake_buckets[lf].append(lid)
                            continue
                        if blocked[lid]:
                            # The scan provably fails (no release since the
                            # last failure): the reference would scan, fail,
                            # and arm nothing — same end state.
                            continue
                        code = q[0]
                        ci = ci_route[code]
                        if credits[ci] > 0:
                            del q[0]
                            credits[ci] -= 1
                            il = rel_il[code]
                            if il >= 0:
                                blocked[il] = False
                                credits[rel_ci[code]] += 1
                                if waiting[il] and not wake_scheduled[il]:
                                    wake_scheduled[il] = True
                                    t = link_free[il]
                                    if t < now:
                                        t = now
                                    wake_buckets[t].append(il)
                            nf = now + PS
                            link_free[lid] = nf
                            if obs_on and code % stride >= vmax:
                                vc_cap_sends += 1
                            arr_buckets[nf + LL].append(code + 1)
                            if q:  # more waiting: re-arm at new link_free
                                wake_scheduled[lid] = True
                                wake_buckets[nf].append(lid)
                            continue
                        try_dispatch_pure(lid, now)

        # ---- deferred accounting (vectorized) -----------------------------
        # The buckets up to end_time hold exactly the codes the loop
        # consumed; the slack slots hold sends the reference would have
        # dropped on push.  Every send pushed one arrival code whose
        # ``rel_il`` is the link it went out on (hop-0 injection codes sit
        # at -1), so per-link busy time is a single bincount over all
        # bucket codes — dropped-push sends included, since they claimed
        # the wire before the horizon cut them off.  Delivery accounting
        # (latency, hops, measured count) is likewise recovered here: a
        # delivered code's ejection cycle is its bucket index, rebuilt
        # with one ``np.repeat`` over per-bucket lengths.
        link_busy_arr = np.zeros(m, dtype=np.int64)
        latencies = np.zeros(0, dtype=np.int64)
        hop_total = 0
        delivered_measured = 0
        if pid:
            from itertools import chain

            nbuckets = end_time + 1
            lens = np.fromiter(
                map(len, arr_buckets[:nbuckets]), dtype=np.int64, count=nbuckets
            )
            ncodes = int(lens.sum())
            codes = np.fromiter(
                chain.from_iterable(arr_buckets[:nbuckets]),
                dtype=np.int64,
                count=ncodes,
            )
            late = [
                np.asarray(b, dtype=np.int64)
                for b in arr_buckets[nbuckets:]
                if b
            ]
            sent_codes = np.concatenate([codes, *late]) if late else codes
            if sent_codes.size:
                rel_np = np.empty_like(lid_flat)
                rel_np[0] = -1
                rel_np[1:] = lid_flat[:-1]
                out_links = rel_np[sent_codes]
                out_links = out_links[out_links >= 0]
                if out_links.size:
                    link_busy_arr = np.bincount(out_links, minlength=m) * PS
            if codes.size:
                lids = lid_flat[codes]
                dmask = lids < 0
                dcodes = codes[dmask]
                if dcodes.size:
                    times = np.repeat(
                        np.arange(nbuckets, dtype=np.int64), lens
                    )
                    dtimes = times[dmask]
                    bb = births[dcodes // stride]
                    in_win = (bb >= warm) & (bb < horizon)
                    latencies = dtimes[in_win] - bb[in_win]
                    hop_total = int((dcodes[in_win] % stride).sum())
                    delivered_measured = int(np.count_nonzero(in_win))
                # The reference memo counts one miss per first touch of a
                # (router, dest) key and a hit per later touch; the split
                # only depends on which keys were touched, not when, so it
                # is recoverable from the consumed codes after the fact —
                # one concatenate + unique instead of per-arrival
                # bookkeeping.
                if obs_on:
                    live = codes[~dmask]
                    if live.size:
                        keys = key_flat[live]
                        seen_np = np.frombuffer(seen, dtype=np.uint8)
                        uniq = np.unique(keys)
                        new = uniq[seen_np[uniq] == 0]
                        nh_misses += int(new.size)
                        nh_hits += int(keys.size) - int(new.size)
                        seen_np[new] = 1
                    if dcodes.size:
                        mh = int((dcodes % stride).max())
                        if mh > max_hops_seen:
                            max_hops_seen = mh

        # ---- flush + result (identical arithmetic to the reference) -------
        self._nh_hits += nh_hits
        self._nh_misses += nh_misses
        if obs_on:
            qdepth.observe_many(depths)
            self._flush_metrics(
                reg,
                link_busy=link_busy_arr,
                latencies=latencies,
                injected=injected_measured,
                delivered=delivered_measured,
                ugal=(0, 0),
                vc_cap_sends=vc_cap_sends,
                max_hops=max_hops_seen,
                nh_delta=(nh_hits, nh_misses),
                horizon=horizon,
                faults=None,
            )

        avg_lat = float(np.mean(latencies)) if latencies.size else float("inf")
        p99 = float(np.percentile(latencies, 99)) if latencies.size else float("inf")
        thr = (
            delivered_measured
            * cfg.packet_size
            / max(topo.num_endpoints * cfg.measure_cycles, 1)
        )
        stable = latencies.size > 0 and delivered_measured >= 0.85 * max(
            injected_measured, 1
        )
        return PacketSimResult(
            offered_load=load,
            avg_latency=avg_lat,
            p99_latency=p99,
            throughput=thr,
            delivered=delivered_measured,
            injected=injected_measured,
            stable=stable,
            avg_hops=hop_total / delivered_measured if delivered_measured else 0.0,
            max_link_utilization=float(link_busy_arr.max() / max(horizon, 1))
            if self.num_links
            else 0.0,
            delivered_fraction=(
                delivered_measured / injected_measured if injected_measured else 1.0
            ),
            dropped=0,
            reroutes=0,
            drop_causes={},
        )

    # -- the SoA engine ----------------------------------------------------

    def _run_soa(self, load: float) -> PacketSimResult:
        cfg = self.cfg
        topo = self.topology
        rng = np.random.default_rng(cfg.seed)
        horizon = cfg.warmup_cycles + cfg.measure_cycles
        end_time = horizon + cfg.drain_cycles
        warm = cfg.warmup_cycles
        n = topo.num_routers

        reg = self.metrics if self.metrics is not None else obs.get_registry()
        obs_on = reg.enabled
        ugal_minimal = 0
        ugal_nonminimal = 0
        vc_cap_sends = 0
        max_hops_seen = 0
        nh_hits = 0
        nh_misses = 0
        depths: list[int] = [] if obs_on else []
        if obs_on:
            qdepth = reg.histogram(
                "sim.packet.queue_depth",
                help="output-queue depth observed at each packet enqueue",
                bounds=(0, 1, 2, 4, 8, 16, 32, 64, 128),
            )

        # ---- fault state ---------------------------------------------------
        health = self.health
        faults_on = health is not None
        adaptive = self.adaptive
        if faults_on and self.faults is not None:
            health.reset()
        reroutes = 0
        dropped_measured = 0
        drop_causes: dict[str, int] = {}
        applied_events: dict[str, int] = {}
        nh_memo: dict[tuple[int, int], int] = {}
        if faults_on:
            self._nh_cache.clear()
            rungs0 = dict(self.router.rung_counts)
            eager0, lazy0 = self.router.recompute_eager, self.router.recompute_lazy
            batches0 = len(self.router.recompute_batches)

        # ---- routing tables ------------------------------------------------
        from repro.routing.table import next_hop_table

        # Tables are built from the *inner* (pristine-topology) router: on a
        # clean health mask the fault-aware wrapper delegates to it, so the
        # table answers equal the wrapper's — dirty epochs never use tables.
        inner = self.router.inner if faults_on else self.router
        # Adaptive (UGAL) decisions interleave RNG draws with live queue
        # occupancy, so adaptive runs use scalar per-arrival routing: table
        # lookups when fault-free, real router calls (ladder, recompute
        # accounting) whenever a health mask exists.
        scalar_router = faults_on and adaptive
        nh_tab = None if scalar_router else next_hop_table(inner)
        lid_tab = build_link_id_table(n, self.link_id)
        nh_flat: list[int] | None = None
        dist_flat: list[int] | None = None
        lid_flat: list[int] | None = None
        if adaptive and not faults_on:
            nh_flat = nh_tab.ravel().tolist()
            dist_flat = _distance_table(inner)
            lid_flat = lid_tab.ravel().tolist()
        # Memo-effectiveness state (reference `_nh_cache` hit/miss parity).
        if adaptive and not faults_on:
            if self._pair_seen_list is None:
                self._pair_seen_list = [False] * (n * n)
            pair_seen_list = self._pair_seen_list
        else:
            pair_seen_list = None
        if not adaptive:
            if self._pair_seen is None or faults_on:
                self._pair_seen = np.zeros(n * n, dtype=bool)
            pair_seen = self._pair_seen
        else:
            pair_seen = None
        epoch_clean = (not faults_on) or health.clean

        # ---- pre-generated open-loop injections (scalar: RNG parity) ------
        rate = load / cfg.packet_size
        injected_measured = 0
        arr_buckets: list = make_buckets(end_time)
        wake_buckets: list = make_buckets(end_time)
        fault_lists: dict[int, list] = {}
        if self.faults is not None:
            for ev in self.faults:
                if ev.time <= end_time:
                    fault_lists.setdefault(ev.time, []).append(ev)
        src_l: list[int] = []
        dest_l: list[int] = []
        birth_l: list[int] = []
        pid = 0
        if rate > 0:
            with obs.span("sim.packet.inject"):
                pattern_dest = self.pattern.dest_endpoint
                endpoint_router = topo.endpoint_router
                exponential = rng.exponential
                scale = 1.0 / rate
                for e in range(topo.num_endpoints):
                    src_r = int(endpoint_router[e])
                    t = exponential(scale)
                    while t < horizon:
                        dest_e = pattern_dest(e, rng)
                        birth = int(t)
                        t += exponential(scale)
                        if dest_e == e:
                            continue
                        dest_r = int(endpoint_router[dest_e])
                        if dest_r == src_r:
                            continue
                        src_l.append(src_r)
                        dest_l.append(dest_r)
                        birth_l.append(birth)
                        b = arr_buckets[birth]
                        if b is None:
                            arr_buckets[birth] = [pid]
                        else:
                            b.append(pid)
                        pid += 1
                        if warm <= birth < horizon:
                            injected_measured += 1
        arrays = PacketArrays(src_l, dest_l, birth_l)

        # ---- link state (hot Python-list mirrors) -------------------------
        links = LinkState(self.ends, cfg.packet_size, cfg.num_vcs, cfg.buffer_packets)
        if faults_on:
            links.refresh_health(self.ends, cfg.packet_size, health)
        V = cfg.num_vcs
        vmax = V - 1
        RL = cfg.router_latency
        LL = cfg.link_latency
        esc_timeout = cfg.escape_timeout
        ttl_hops = cfg.ttl_hops
        max_retries = cfg.max_retries
        ends = self.ends
        ends_v = links.ends_v
        ends_v_arr = np.asarray(ends_v, dtype=np.int64)
        link_free = links.link_free
        link_busy = links.link_busy
        link_ok = links.link_ok
        link_ser = links.link_ser
        credits = links.credits
        waiting = links.waiting
        wake_scheduled = links.wake_scheduled
        escape_at = links.escape_at
        pkt_router = arrays.router
        pkt_dest = arrays.dest
        pkt_inter = arrays.intermediate
        pkt_birth = arrays.birth
        pkt_vc = arrays.vc
        pkt_in_link = arrays.in_link
        pkt_hops = arrays.hops
        pkt_retries = arrays.retries
        pkt_src = arrays.src

        latencies: list[int] = []
        hop_total = 0
        delivered_measured = 0

        # Buffered send effects, flushed by kernel.record_sends per cycle
        # (fields are disjoint from same-cycle enqueue writes, and a packet
        # sends at most once per cycle, so the scatter is exact).
        w_pid: list[int] = []
        w_vc: list[int] = []
        w_lid: list[int] = []

        # ---- scalar helpers (faults, UGAL, dispatch interleave) -----------

        def next_hop_memo(u: int, t: int) -> int:
            """Reference `_next_hop` clone for dirty-epoch routing: dict
            memo over the fault-aware router, miss counted even when the
            lookup raises."""
            nonlocal nh_hits, nh_misses
            key = (u, t)
            hop = nh_memo.get(key)
            if hop is None:
                nh_misses += 1
                hop = self.router.next_hop(u, t)
                nh_memo[key] = hop
            else:
                nh_hits += 1
            return hop

        def next_hop_table_scalar(u: int, t: int) -> int:
            """Fault-free scalar lookup (UGAL path): dense-table read with
            the memo's hit/miss accounting semantics."""
            nonlocal nh_hits, nh_misses
            k = u * n + t
            if pair_seen_list[k]:
                nh_hits += 1
            else:
                nh_misses += 1
                pair_seen_list[k] = True
            return nh_flat[k]

        def route_next_scalar(p: int, rr: int, inter: int, dst: int,
                              exclude: tuple[int, ...] = ()) -> tuple[int, int]:
            """Reference `route_next` clone; returns (next_hop, intermediate)
            with the midpoint-degradation retry applied to the arrays."""
            while True:
                target = inter if inter >= 0 else dst
                try:
                    if exclude:
                        return (
                            self.router.route_hops(rr, target, exclude)[0][0],
                            inter,
                        )
                    return next_hop_memo(rr, target), inter
                except RouteUnavailableError:
                    if inter < 0:
                        raise
                    inter = -1
                    pkt_inter[p] = -1

        def drop_entry(p: int, vc: int, il: int, cause: str, now: int) -> None:
            """Reference `drop` clone: free the held slot, account the loss."""
            nonlocal dropped_measured
            if il >= 0:
                credits[il * V + vc] += 1
                if waiting[il] and not wake_scheduled[il]:
                    wake_scheduled[il] = True
                    t = link_free[il]
                    if t < now:
                        t = now
                    if t <= end_time:
                        wb = wake_buckets[t]
                        if wb is None:
                            wake_buckets[t] = [il]
                        else:
                            wb.append(il)
            b = int(pkt_birth[p])
            if warm <= b < horizon:
                dropped_measured += 1
                drop_causes[cause] = drop_causes.get(cause, 0) + 1

        def reroute_entry(entry: tuple[int, int, int, int], blocked: int,
                          now: int) -> None:
            """Reference `reroute` clone for a displaced waiting-queue entry."""
            nonlocal reroutes
            p, vc, il = entry[0], entry[1], entry[2]
            rr = int(pkt_router[p])
            if not health.node_up(rr):
                drop_entry(p, vc, il, "node_down", now)
                return
            retr = int(pkt_retries[p]) + 1
            pkt_retries[p] = retr
            if retr > max_retries:
                drop_entry(p, vc, il, "retries", now)
                return
            reroutes += 1
            try:
                nxt, _ = route_next_scalar(
                    p, rr, int(pkt_inter[p]), int(pkt_dest[p]), exclude=(blocked,)
                )
            except RouteUnavailableError:
                drop_entry(p, vc, il, "unreachable", now)
                return
            lid = self.link_id[(rr, nxt)]
            pkt_enq[p] = now
            q = waiting[lid]
            q.append((p, vc, il, now))
            if obs_on:
                depths.append(len(q))
            try_dispatch(lid, now + RL)

        pkt_enq = arrays.enq

        def try_dispatch(lid: int, now: int) -> None:
            """Reference `try_dispatch` clone over the list mirrors (FIFO
            with VC lookahead, escape timeout, wake scheduling)."""
            nonlocal vc_cap_sends
            if faults_on and not link_ok[lid]:
                return
            q = waiting[lid]
            while q and link_free[lid] <= now:
                sent = False
                for i in range(len(q)):
                    entry = q[i]
                    wvc = entry[1]
                    nvc = wvc + 1
                    if nvc > vmax:
                        nvc = vmax
                    ci = lid * V + nvc
                    if credits[ci] > 0:
                        del q[i]
                        credits[ci] -= 1
                        wil = entry[2]
                        if wil >= 0:  # leaves the current router: release
                            credits[wil * V + wvc] += 1
                            if waiting[wil] and not wake_scheduled[wil]:
                                wake_scheduled[wil] = True
                                t = link_free[wil]
                                if t < now:
                                    t = now
                                if t <= end_time:
                                    wb = wake_buckets[t]
                                    if wb is None:
                                        wake_buckets[t] = [wil]
                                    else:
                                        wb.append(wil)
                        ser = link_ser[lid]
                        link_free[lid] = now + ser
                        link_busy[lid] += ser
                        if obs_on and wvc >= vmax:
                            vc_cap_sends += 1
                        arrive = now + ser + LL
                        p = entry[0]
                        w_pid.append(p)
                        w_vc.append(nvc)
                        w_lid.append(lid)
                        if arrive <= end_time:
                            ab = arr_buckets[arrive]
                            if ab is None:
                                arr_buckets[arrive] = [p]
                            else:
                                ab.append(p)
                        sent = True
                        break
                if not sent:
                    if faults_on and q:
                        head_wait = now - q[0][3]
                        if head_wait >= esc_timeout:
                            head = q.pop(0)
                            reroute_entry(head, ends_v[lid], now)
                            continue
                        if escape_at[lid] <= now:
                            when = now + esc_timeout - head_wait
                            escape_at[lid] = when
                            if when <= end_time:
                                wb = wake_buckets[when]
                                if wb is None:
                                    wake_buckets[when] = [lid]
                                else:
                                    wb.append(lid)
                    return
            if q and not wake_scheduled[lid]:
                wake_scheduled[lid] = True
                t = link_free[lid]
                if t <= end_time:
                    wb = wake_buckets[t]
                    if wb is None:
                        wake_buckets[t] = [lid]
                    else:
                        wb.append(lid)

        def choose_route_scalar(p: int, src: int, dst: int) -> int:
            """Reference `choose_route` clone (UGAL-L at injection); returns
            the chosen intermediate and tallies the decision."""
            nonlocal ugal_minimal, ugal_nonminimal
            if faults_on:
                min_next = next_hop_memo(src, dst)
                d0 = self.router.distance(src, dst)
            else:
                min_next = next_hop_table_scalar(src, dst)
                d0 = dist_flat[src * n + dst]
            if faults_on:
                occ0 = float(len(waiting[self.link_id[(src, min_next)]]))
            else:
                occ0 = float(len(waiting[lid_flat[src * n + min_next]]))
            best_cost = d0 * (1.0 + occ0)
            best_mid = -1
            for _ in range(cfg.ugal_samples):
                mid = int(rng.integers(0, n))
                if mid == src or mid == dst:
                    continue
                if faults_on:
                    hops = self.router.distance(src, mid) + self.router.distance(
                        mid, dst
                    )
                else:
                    hops = dist_flat[src * n + mid] + dist_flat[mid * n + dst]
                if hops >= UNREACHABLE:
                    continue
                if faults_on:
                    occ = float(len(waiting[self.link_id[(src, next_hop_memo(src, mid))]]))
                else:
                    occ = float(
                        len(waiting[lid_flat[src * n + next_hop_table_scalar(src, mid)]])
                    )
                cost = hops * (1.0 + occ)
                if cost < best_cost:
                    best_cost, best_mid = cost, mid
            pkt_inter[p] = best_mid
            if best_mid < 0:
                ugal_minimal += 1
            else:
                ugal_nonminimal += 1
            return best_mid

        def apply_fault(ev, now: int) -> None:
            """Reference `apply_fault` clone: mask update, cache + memo
            invalidation, health mirror refresh, dead-queue displacement."""
            nonlocal epoch_clean
            health.apply(ev)
            applied_events[ev.kind] = applied_events.get(ev.kind, 0) + 1
            nh_memo.clear()
            if pair_seen is not None:
                pair_seen[:] = False
            self.router.sync()
            links.refresh_health(ends, cfg.packet_size, health)
            epoch_clean = health.clean
            for lid in range(links.num_links):
                if link_ok[lid] or not waiting[lid]:
                    continue
                displaced = waiting[lid]
                waiting[lid] = []
                blocked = ends[lid][1]
                for entry in displaced:
                    reroute_entry(entry, blocked, now)

        # ---- main loop: one bucket triplet per cycle ----------------------
        with obs.span("sim.packet.events"):
            for now in range(end_time + 1):
                if fault_lists:
                    evs = fault_lists.pop(now, None)
                    if evs is not None:
                        for ev in evs:
                            apply_fault(ev, now)
                arr = arr_buckets[now]
                if arr:
                    now_rl = now + RL
                    if not adaptive and epoch_clean:
                        # -- vectorized fast path (history-free routing) --
                        ids = np.asarray(arr, dtype=np.int64)
                        router_b, target_b, delivered, nxt, lids = (
                            kernel.resolve_arrivals(arrays, ids, nh_tab, lid_tab)
                        )
                        live = ~delivered
                        if faults_on:
                            # TTL-expired packets drop before routing in the
                            # reference loop, so they never touch the memo.
                            hops_b = arrays.hops[ids]
                            route_mask = live & (hops_b < ttl_hops)
                        else:
                            route_mask = live
                        h, m = kernel.tally_pair_cache(
                            pair_seen, (router_b * n + target_b)[route_mask]
                        )
                        nh_hits += h
                        nh_misses += m
                        if faults_on and m:
                            # clean-epoch misses go through the wrapper's
                            # fast path in the reference engine, which
                            # tallies one primary-rung decision per miss
                            self.router.rung_counts["primary"] += m
                        kernel.write_enqueue_times(arrays, ids, delivered, now)
                        lat, hsum, dcount, mx = kernel.account_deliveries(
                            arrays, ids, delivered, now, warm, horizon, obs_on
                        )
                        if dcount or lat:
                            latencies.extend(lat)
                            hop_total += hsum
                            delivered_measured += dcount
                        if mx > max_hops_seen:
                            max_hops_seen = mx
                        dl = delivered.tolist()
                        lid_l = lids.tolist()
                        vc_l = pkt_vc[ids].tolist()
                        il_l = pkt_in_link[ids].tolist()
                        if not faults_on:
                            # The dominant case — empty queue, idle link,
                            # credit in hand — sends inline: identical to
                            # enqueue + try_dispatch immediately popping
                            # the sole entry, minus the round-trip.
                            for p, dflag, lid, vc, il in zip(
                                arr, dl, lid_l, vc_l, il_l
                            ):
                                if dflag:
                                    # ejection frees the buffer (a delivered
                                    # packet always holds one: src != dest
                                    # means it crossed >= 1 link)
                                    credits[il * V + vc] += 1
                                    if waiting[il] and not wake_scheduled[il]:
                                        wake_scheduled[il] = True
                                        t = link_free[il]
                                        if t < now:
                                            t = now
                                        if t <= end_time:
                                            wb = wake_buckets[t]
                                            if wb is None:
                                                wake_buckets[t] = [il]
                                            else:
                                                wb.append(il)
                                    continue
                                q = waiting[lid]
                                if not q and link_free[lid] <= now_rl:
                                    nvc = vc + 1
                                    if nvc > vmax:
                                        nvc = vmax
                                    ci = lid * V + nvc
                                    if credits[ci] > 0:
                                        credits[ci] -= 1
                                        credits[il * V + vc] += 1
                                        if waiting[il] and not wake_scheduled[il]:
                                            wake_scheduled[il] = True
                                            t = link_free[il]
                                            if t < now_rl:
                                                t = now_rl
                                            if t <= end_time:
                                                wb = wake_buckets[t]
                                                if wb is None:
                                                    wake_buckets[t] = [il]
                                                else:
                                                    wb.append(il)
                                        ser = link_ser[lid]
                                        link_free[lid] = now_rl + ser
                                        link_busy[lid] += ser
                                        if obs_on:
                                            depths.append(1)
                                            if vc >= vmax:
                                                vc_cap_sends += 1
                                        arrive = now_rl + ser + LL
                                        w_pid.append(p)
                                        w_vc.append(nvc)
                                        w_lid.append(lid)
                                        if arrive <= end_time:
                                            ab = arr_buckets[arrive]
                                            if ab is None:
                                                arr_buckets[arrive] = [p]
                                            else:
                                                ab.append(p)
                                        continue
                                q.append((p, vc, il, now))
                                if obs_on:
                                    depths.append(len(q))
                                lf = link_free[lid]
                                if lf <= now_rl:
                                    try_dispatch(lid, now_rl)
                                elif not wake_scheduled[lid]:
                                    # busy link: dispatch can't run before
                                    # link_free — schedule the wake inline
                                    wake_scheduled[lid] = True
                                    if lf <= end_time:
                                        wb = wake_buckets[lf]
                                        if wb is None:
                                            wake_buckets[lf] = [lid]
                                        else:
                                            wb.append(lid)
                        else:
                            hops_l = hops_b.tolist()
                            for i in range(len(arr)):
                                vc = vc_l[i]
                                il = il_l[i]
                                if dl[i]:
                                    if il >= 0:  # ejection frees the buffer
                                        credits[il * V + vc] += 1
                                        if waiting[il] and not wake_scheduled[il]:
                                            wake_scheduled[il] = True
                                            t = link_free[il]
                                            if t < now:
                                                t = now
                                            if t <= end_time:
                                                wb = wake_buckets[t]
                                                if wb is None:
                                                    wake_buckets[t] = [il]
                                                else:
                                                    wb.append(il)
                                    continue
                                if hops_l[i] >= ttl_hops:
                                    drop_entry(arr[i], vc, il, "ttl", now)
                                    continue
                                lid = lid_l[i]
                                q = waiting[lid]
                                if (
                                    not q
                                    and link_ok[lid]
                                    and link_free[lid] <= now_rl
                                ):
                                    nvc = vc + 1
                                    if nvc > vmax:
                                        nvc = vmax
                                    ci = lid * V + nvc
                                    if credits[ci] > 0:
                                        # inline send (see fault-free loop)
                                        credits[ci] -= 1
                                        if il >= 0:
                                            credits[il * V + vc] += 1
                                            if (
                                                waiting[il]
                                                and not wake_scheduled[il]
                                            ):
                                                wake_scheduled[il] = True
                                                t = link_free[il]
                                                if t < now_rl:
                                                    t = now_rl
                                                if t <= end_time:
                                                    wb = wake_buckets[t]
                                                    if wb is None:
                                                        wake_buckets[t] = [il]
                                                    else:
                                                        wb.append(il)
                                        ser = link_ser[lid]
                                        link_free[lid] = now_rl + ser
                                        link_busy[lid] += ser
                                        if obs_on:
                                            depths.append(1)
                                            if vc >= vmax:
                                                vc_cap_sends += 1
                                        arrive = now_rl + ser + LL
                                        w_pid.append(arr[i])
                                        w_vc.append(nvc)
                                        w_lid.append(lid)
                                        if arrive <= end_time:
                                            ab = arr_buckets[arrive]
                                            if ab is None:
                                                arr_buckets[arrive] = [arr[i]]
                                            else:
                                                ab.append(arr[i])
                                        continue
                                q.append((arr[i], vc, il, now))
                                if obs_on:
                                    depths.append(len(q))
                                if not link_ok[lid]:
                                    continue  # dead link: no dispatch, no wake
                                lf = link_free[lid]
                                if lf <= now_rl:
                                    try_dispatch(lid, now_rl)
                                elif not wake_scheduled[lid]:
                                    wake_scheduled[lid] = True
                                    if lf <= end_time:
                                        wb = wake_buckets[lf]
                                        if wb is None:
                                            wake_buckets[lf] = [lid]
                                        else:
                                            wb.append(lid)
                    else:
                        # -- scalar path (UGAL and/or dirty health mask) --
                        ids = np.asarray(arr, dtype=np.int64)
                        r_l = pkt_router[ids].tolist()
                        d_l = pkt_dest[ids].tolist()
                        inter_l = pkt_inter[ids].tolist()
                        vc_l = pkt_vc[ids].tolist()
                        il_l = pkt_in_link[ids].tolist()
                        b_l = pkt_birth[ids].tolist()
                        hops_l = pkt_hops[ids].tolist()
                        s_l = pkt_src[ids].tolist() if adaptive else None
                        for i in range(len(arr)):
                            p = arr[i]
                            rr = r_l[i]
                            il = il_l[i]
                            if faults_on and not health.node_up(rr):
                                drop_entry(p, vc_l[i], il, "node_down", now)
                                continue
                            inter = inter_l[i]
                            if il < 0 and adaptive and rr == s_l[i]:
                                if faults_on:
                                    try:
                                        inter = choose_route_scalar(p, rr, d_l[i])
                                    except RouteUnavailableError:
                                        drop_entry(p, vc_l[i], il, "unreachable", now)
                                        continue
                                else:
                                    inter = choose_route_scalar(p, rr, d_l[i])
                            if inter == rr:
                                inter = -1
                                pkt_inter[p] = -1
                            if rr == d_l[i]:
                                if il >= 0:  # ejection frees the buffer
                                    credits[il * V + vc_l[i]] += 1
                                    if waiting[il] and not wake_scheduled[il]:
                                        wake_scheduled[il] = True
                                        t = link_free[il]
                                        if t < now:
                                            t = now
                                        if t <= end_time:
                                            wb = wake_buckets[t]
                                            if wb is None:
                                                wake_buckets[t] = [il]
                                            else:
                                                wb.append(il)
                                b = b_l[i]
                                if warm <= b < horizon:
                                    latencies.append(now - b)
                                    hop_total += hops_l[i]
                                    delivered_measured += 1
                                if obs_on and hops_l[i] > max_hops_seen:
                                    max_hops_seen = hops_l[i]
                                continue
                            if faults_on:
                                if hops_l[i] >= ttl_hops:
                                    drop_entry(p, vc_l[i], il, "ttl", now)
                                    continue
                                try:
                                    nxt, inter = route_next_scalar(
                                        p, rr, inter, d_l[i]
                                    )
                                except RouteUnavailableError:
                                    drop_entry(p, vc_l[i], il, "unreachable", now)
                                    continue
                                lid = self.link_id[(rr, nxt)]
                            else:
                                target = inter if inter >= 0 else d_l[i]
                                nxt = next_hop_table_scalar(rr, target)
                                lid = lid_flat[rr * n + nxt]
                            pkt_enq[p] = now
                            q = waiting[lid]
                            if (
                                not q
                                and link_free[lid] <= now_rl
                                and (not faults_on or link_ok[lid])
                            ):
                                vc = vc_l[i]
                                nvc = vc + 1
                                if nvc > vmax:
                                    nvc = vmax
                                ci = lid * V + nvc
                                if credits[ci] > 0:
                                    # inline send: empty queue, usable idle
                                    # link, credit in hand — identical to
                                    # enqueue + try_dispatch popping the
                                    # sole entry immediately
                                    credits[ci] -= 1
                                    if il >= 0:
                                        credits[il * V + vc] += 1
                                        if waiting[il] and not wake_scheduled[il]:
                                            wake_scheduled[il] = True
                                            t = link_free[il]
                                            if t < now_rl:
                                                t = now_rl
                                            if t <= end_time:
                                                wb = wake_buckets[t]
                                                if wb is None:
                                                    wake_buckets[t] = [il]
                                                else:
                                                    wb.append(il)
                                    ser = link_ser[lid]
                                    link_free[lid] = now_rl + ser
                                    link_busy[lid] += ser
                                    if obs_on:
                                        depths.append(1)
                                        if vc >= vmax:
                                            vc_cap_sends += 1
                                    arrive = now_rl + ser + LL
                                    w_pid.append(p)
                                    w_vc.append(nvc)
                                    w_lid.append(lid)
                                    if arrive <= end_time:
                                        ab = arr_buckets[arrive]
                                        if ab is None:
                                            arr_buckets[arrive] = [p]
                                        else:
                                            ab.append(p)
                                    continue
                            q.append((p, vc_l[i], il, now))
                            if obs_on:
                                depths.append(len(q))
                            if faults_on and not link_ok[lid]:
                                continue  # dead link: no dispatch, no wake
                            lf = link_free[lid]
                            if lf <= now_rl:
                                try_dispatch(lid, now_rl)
                            elif not wake_scheduled[lid]:
                                wake_scheduled[lid] = True
                                if lf <= end_time:
                                    wb = wake_buckets[lf]
                                    if wb is None:
                                        wake_buckets[lf] = [lid]
                                    else:
                                        wb.append(lid)
                wl = wake_buckets[now]
                if wl:
                    i = 0
                    while i < len(wl):
                        lid = wl[i]
                        i += 1
                        wake_scheduled[lid] = False
                        try_dispatch(lid, now)
                if w_pid:
                    kernel.record_sends(arrays, w_pid, w_vc, w_lid, ends_v_arr)
                    w_pid.clear()
                    w_vc.clear()
                    w_lid.clear()

        # ---- flush + result (identical arithmetic to the reference) -------
        self._nh_hits += nh_hits
        self._nh_misses += nh_misses
        link_busy_arr = links.busy_array()
        if obs_on:
            qdepth.observe_many(depths)
            faults_bundle = None
            if faults_on:
                faults_bundle = {
                    "links_down": health.links_down_count(),
                    "nodes_down": health.nodes_down_count(),
                    "events": applied_events,
                    "drop_causes": drop_causes,
                    "reroutes": reroutes,
                    "rungs": {
                        r: c - rungs0.get(r, 0)
                        for r, c in self.router.rung_counts.items()
                    },
                    "recompute_eager": self.router.recompute_eager - eager0,
                    "recompute_lazy": self.router.recompute_lazy - lazy0,
                    "recompute_batches": self.router.recompute_batches[batches0:],
                }
            self._flush_metrics(
                reg,
                link_busy=link_busy_arr,
                latencies=latencies,
                injected=injected_measured,
                delivered=delivered_measured,
                ugal=(ugal_minimal, ugal_nonminimal),
                vc_cap_sends=vc_cap_sends,
                max_hops=max_hops_seen,
                nh_delta=(nh_hits, nh_misses),
                horizon=horizon,
                faults=faults_bundle,
            )

        avg_lat = float(np.mean(latencies)) if latencies else float("inf")
        p99 = float(np.percentile(latencies, 99)) if latencies else float("inf")
        thr = (
            delivered_measured
            * cfg.packet_size
            / max(topo.num_endpoints * cfg.measure_cycles, 1)
        )
        stable = bool(latencies) and delivered_measured >= 0.85 * max(injected_measured, 1)
        return PacketSimResult(
            offered_load=load,
            avg_latency=avg_lat,
            p99_latency=p99,
            throughput=thr,
            delivered=delivered_measured,
            injected=injected_measured,
            stable=stable,
            avg_hops=hop_total / delivered_measured if delivered_measured else 0.0,
            max_link_utilization=float(link_busy_arr.max() / max(horizon, 1))
            if self.num_links
            else 0.0,
            delivered_fraction=(
                delivered_measured / injected_measured if injected_measured else 1.0
            ),
            dropped=dropped_measured,
            reroutes=reroutes,
            drop_causes=dict(sorted(drop_causes.items())),
        )


def latency_load_sweep(
    topology: Topology,
    router: Router,
    pattern: TrafficPattern,
    loads,
    config: PacketSimConfig | None = None,
    adaptive: bool = False,
    faults: FaultSchedule | None = None,
    engine: str = "soa",
) -> list[PacketSimResult]:
    """Simulate increasing offered loads, stopping after the first unstable
    point (beyond it the network is saturated and latency diverges, §9.5)."""
    out = []
    for load in loads:
        sim = PacketSimulator(
            topology, router, pattern, config, adaptive, faults=faults, engine=engine
        )
        res = sim.run(float(load))
        out.append(res)
        if not res.stable:
            break
    return out
