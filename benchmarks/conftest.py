"""Shared benchmark utilities.

Every benchmark regenerates one paper artifact (table or figure), prints
the same rows/series the paper reports, and archives them under
``benchmarks/results/`` for EXPERIMENTS.md.  Benchmarks run the experiment
once (``pedantic`` with a single round) — the interesting output is the
data, not the wall-clock.

Each archived ``<name>.txt`` is stamped with a sibling
``<name>.manifest.json`` — a :class:`repro.obs.RunManifest` recording the
git revision, interpreter, wall-clock duration, quick-mode flag, and any
seed / topology parameters the benchmark passes — so ``benchmarks/results``
entries are self-describing.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.obs import RunManifest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)
    last_save = time.perf_counter()

    def _save(name: str, text: str, seed: int | None = None, **params) -> None:
        nonlocal last_save
        now = time.perf_counter()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        manifest = RunManifest.capture(
            seed=seed,
            benchmark=name,
            duration_s=round(now - last_save, 3),
            quick_mode=quick_mode(),
            **params,
        )
        (RESULTS_DIR / f"{name}.manifest.json").write_text(manifest.to_json() + "\n")
        last_save = now
        print(f"\n===== {name} =====")
        print(text)

    return _save


def quick_mode() -> bool:
    """Set REPRO_QUICK=1 to shrink the heavy sweeps (CI-sized runs)."""
    return os.environ.get("REPRO_QUICK", "0") == "1"
