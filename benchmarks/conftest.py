"""Shared benchmark utilities.

Every benchmark regenerates one paper artifact (table or figure), prints
the same rows/series the paper reports, and archives them under
``benchmarks/results/`` for EXPERIMENTS.md.  Benchmarks run the experiment
once (``pedantic`` with a single round) — the interesting output is the
data, not the wall-clock.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n===== {name} =====")
        print(text)

    return _save


def quick_mode() -> bool:
    """Set REPRO_QUICK=1 to shrink the heavy sweeps (CI-sized runs)."""
    return os.environ.get("REPRO_QUICK", "0") == "1"
