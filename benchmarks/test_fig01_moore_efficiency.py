"""Fig. 1: Moore-bound efficiency of diameter-3 topologies.

Regenerates the scalability sweep and the §1.3 headline geometric-mean
ratios (paper: 1.3x over Bundlefly, 1.9x over Dragonfly, 6.7x over 3-D
HyperX).
"""

from repro.experiments import fig01
from benchmarks.conftest import quick_mode


def test_fig01(benchmark, save_result):
    hi = 32 if quick_mode() else 64
    ratio_hi = 64 if quick_mode() else 128
    result = benchmark.pedantic(
        fig01.run,
        kwargs={"radix_lo": 8, "radix_hi": hi, "ratio_hi": ratio_hi},
        rounds=1,
        iterations=1,
    )
    save_result("fig01_moore_efficiency", fig01.format_figure(result))

    g = result["geomean_ratios"]
    # Paper: 1.3x / 1.9x / 6.7x geometric-mean scale gains.
    assert 1.15 < g["bundlefly"] < 1.45
    assert 1.7 < g["dragonfly"] < 2.1
    assert 6.0 < g["hyperx"] < 7.5
    # PolarStar below StarMax, above every rival, at every radix.
    for row in result["rows"]:
        assert row["polarstar"] <= row["starmax"] <= row["moore"]
        assert row["polarstar"] >= row["dragonfly"]
        assert row["polarstar"] >= row["hyperx"]
