"""Fig. 14: diameter and APL under random link failures."""

from repro.experiments import fig14
from benchmarks.conftest import quick_mode


def test_fig14(benchmark, save_result):
    if quick_mode():
        names, scenarios = ("PS-IQ", "BF", "DF"), 6
    else:
        names, scenarios = ("PS-IQ", "BF", "DF", "HX", "SF", "MF", "FT"), 20
    result = benchmark.pedantic(
        fig14.run, kwargs={"names": names, "scenarios": scenarios}, rounds=1, iterations=1
    )
    save_result(
        "fig14_fault_tolerance",
        fig14.format_figure(result),
        topologies=list(names),
        scenarios=scenarios,
    )

    # §11.2: PolarStar and Bundlefly disconnect around 60% failed links;
    # Dragonfly a bit higher (~65%).
    assert 0.45 < result["PS-IQ"]["median_disconnection_ratio"] < 0.75
    assert abs(
        result["PS-IQ"]["median_disconnection_ratio"]
        - result["BF"]["median_disconnection_ratio"]
    ) < 0.12
    assert (
        result["DF"]["median_disconnection_ratio"]
        >= result["PS-IQ"]["median_disconnection_ratio"] - 0.05
    )
    # Dragonfly's diameter grows faster at low failure ratios than PS.
    ps, df = result["PS-IQ"], result["DF"]
    common = min(len(ps["diameters"]), len(df["diameters"]))
    assert df["diameters"][common - 1] >= ps["diameters"][common - 1]
    # Degradation is monotone-ish: APL at the last point exceeds pristine.
    for name in names:
        apl = result[name]["avg_path_lengths"]
        assert apl[-1] >= apl[0]
