"""Ablations of PolarStar's design choices (DESIGN.md §5)."""

from repro.experiments import ablations
from benchmarks.conftest import quick_mode


def test_supernode_kind(benchmark, save_result):
    result = benchmark.pedantic(
        ablations.supernode_kind_ablation, kwargs={"q": 7, "dprime": 4}, rounds=1, iterations=1
    )
    save_result("ablation_supernode_kind", ablations.format_supernode_kind(result))

    rows = {r["kind"]: r for r in result["rows"] if r["feasible"]}
    # All kinds give diameter <= 3 on the same ER structure ...
    for r in rows.values():
        assert r["diameter"] <= 3
    # ... but IQ yields the largest network (2d'+2 > 2d'+1 > 2d' > d'+1).
    orders = [rows[k]["order"] for k in ("inductive-quad", "paley", "bdf", "complete")]
    assert orders == sorted(orders, reverse=True)


def test_degree_split(benchmark, save_result):
    result = benchmark.pedantic(
        ablations.degree_split_ablation, kwargs={"radix": 16}, rounds=1, iterations=1
    )
    save_result("ablation_degree_split", ablations.format_degree_split(result))

    rows = result["rows"]
    # Eq. 1: order is maximized near q ≈ 2·radix/3 ≈ 10.7 -> best feasible q=11.
    best = max(rows, key=lambda r: r["order"])
    assert best["q"] == 11
    # Order falls off on both sides of the optimum.
    qs = [r["q"] for r in rows]
    orders = [r["order"] for r in rows]
    peak = orders.index(max(orders))
    assert all(orders[i] <= orders[i + 1] for i in range(peak))
    assert all(orders[i] >= orders[i + 1] for i in range(peak, len(orders) - 1))


def test_minpath_diversity(benchmark, save_result):
    names = ("PS-IQ", "BF") if quick_mode() else ("PS-IQ", "BF", "SF")
    result = benchmark.pedantic(
        ablations.minpath_diversity_ablation, kwargs={"names": names}, rounds=1, iterations=1
    )
    save_result("ablation_minpath_diversity", ablations.format_minpath(result))

    rows = {r["topology"]: r for r in result["rows"]}
    # §9.3: SF/BF lose substantially when restricted to one minpath on
    # uniform traffic; PolarStar's single-path penalty is smaller.
    ps_penalty = rows["PS-IQ"]["uniform_all"] / max(rows["PS-IQ"]["uniform_single"], 1e-9)
    bf_penalty = rows["BF"]["uniform_all"] / max(rows["BF"]["uniform_single"], 1e-9)
    assert bf_penalty >= ps_penalty * 0.9
    for r in rows.values():
        assert r["uniform_all"] >= r["uniform_single"] - 1e-9
        assert r["perm_all"] >= r["perm_single"] - 1e-9


def test_ugal_samples(benchmark, save_result):
    result = benchmark.pedantic(
        ablations.ugal_samples_ablation, kwargs={"samples": (1, 4, 8)}, rounds=1, iterations=1
    )
    save_result("ablation_ugal_samples", ablations.format_ugal_samples(result))

    rows = result["rows"]
    # More Valiant samples never hurt adversarial throughput much; 4 (the
    # paper's pick) performs within 10% of 8.
    thr = {r["samples"]: r["throughput"] for r in rows}
    assert thr[4] >= thr[1] * 0.9
    assert thr[4] >= thr[8] * 0.9


def test_routing_storage(benchmark, save_result):
    """§9.3: PolarStar's analytic routing needs far less state than the
    all-minpath tables SF and BF require."""
    result = benchmark.pedantic(
        ablations.routing_storage_comparison,
        kwargs={"names": ("PS-IQ", "BF", "DF")},
        rounds=1,
        iterations=1,
    )
    save_result("ablation_routing_storage", ablations.format_routing_storage(result))

    rows = {r["topology"]: r for r in result["rows"]}
    # PS analytic state is at least 5x smaller than full minpath tables.
    assert rows["PS-IQ"]["ratio"] > 5
    # DF's gateway table is tiny too (hierarchical routing).
    assert rows["DF"]["ratio"] > 5
    # BF has no analytic scheme: it pays the full table cost.
    assert rows["BF"]["ratio"] == 1.0


def test_collective_algorithms(benchmark, save_result):
    """Extension: Allreduce algorithm x topology interaction (Rabenseifner
    2004, cited in §10.1)."""
    from repro.experiments import collectives

    ranks = 512 if quick_mode() else 1024
    result = benchmark.pedantic(
        collectives.run, kwargs={"ranks": ranks, "iterations": 2}, rounds=1, iterations=1
    )
    save_result("ablation_collectives", collectives.format_figure(result))

    for row in result["rows"]:
        # At 1 MiB messages the bandwidth-optimal algorithms beat
        # recursive doubling on every topology.
        assert min(row["ring"], row["rabenseifner"]) < row["recursive-doubling"]


def test_diameter2_context(benchmark, save_result):
    """§2.3: diameter-2 networks top out near d²; diameter-3 PolarStar
    scales ~d³/3 beyond them at every radix."""
    from repro.experiments import diameter2

    result = benchmark.pedantic(diameter2.run, rounds=1, iterations=1)
    save_result("ablation_diameter2_context", diameter2.format_figure(result))

    for row in result["rows"]:
        assert row["polarstar"] <= row["moore3"]
        if row["polarfly"]:
            assert row["polarfly"] <= row["moore2"]
            # the scalability gap grows with radix
            if row["radix"] >= 18:
                assert row["polarstar"] > 4 * row["polarfly"]
            if row["radix"] >= 48:
                assert row["polarstar"] > 12 * row["polarfly"]
    # PolarFly performs well — scale, not performance, is its limit.
    assert result["polarfly_uniform_saturation_analytic"] > 0.6
