"""Fig. 4: diameter-2 graph families vs the Moore bound.

The structure-graph choice: ER is the largest known family at almost all
degrees and asymptotically reaches the diameter-2 Moore bound.
"""

from repro.experiments import fig04


def test_fig04(benchmark, save_result):
    result = benchmark.pedantic(fig04.run, kwargs={"degree_hi": 64}, rounds=1, iterations=1)
    save_result("fig04_diameter2_families", fig04.format_figure(result))

    # ER dominates MMS and Paley at "almost all" degrees (Fig. 4): the only
    # exception in range is degree 6, where MMS(4) has 32 > 31 vertices.
    for row in result["rows"]:
        if row["er"]:
            if row["mms"] and row["degree"] > 6:
                assert row["er"] >= row["mms"]
            if row["paley"]:
                assert row["er"] >= row["paley"]
            assert row["er"] <= row["moore2"]
    # asymptotic Moore efficiency: q²+q+1 vs q²+2q+2 -> ~1 at the top
    assert result["er_efficiency_tail"] > 0.95
