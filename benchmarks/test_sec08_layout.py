"""§8: layout and bundling arithmetic measured on real PolarStar graphs."""

from repro.experiments import sec08


def test_sec08(benchmark, save_result):
    result = benchmark.pedantic(sec08.run, rounds=1, iterations=1)
    save_result("sec08_layout", sec08.format_figure(result))

    for row in result["rows"]:
        # 2(d* - q) parallel links between adjacent supernodes.
        assert row["links_per_pair"] == row["expected_links_per_pair"]
        # MCF bundles = structure-graph edges = q(q+1)²/2 (undirected).
        assert row["bundles"] == row["expected_bundles"]
        # Bundling cuts global cables by the links-per-pair factor ≈ 2d*/3.
        assert abs(row["cable_reduction"] - row["links_per_pair"]) < 1e-9
        # q+1 supernode clusters with ≈ q bundles between pairs.
        assert row["clusters"] == row["q"] + 1
        assert 0.5 * row["q"] <= row["mean_cluster_bundles"] <= 1.5 * row["q"]
