"""Fig. 13: PolarStar bisection — Inductive-Quad vs Paley supernodes."""

from repro.experiments import fig13
from benchmarks.conftest import quick_mode


def test_fig13(benchmark, save_result):
    radixes = (8, 12, 16) if quick_mode() else (8, 10, 12, 14, 16, 18, 20)
    result = benchmark.pedantic(
        fig13.run, kwargs={"radixes": radixes}, rounds=1, iterations=1
    )
    save_result("fig13_polarstar_bisection", fig13.format_figure(result))

    m = result["means"]
    # Both supernode kinds give substantial bisections (paper: IQ 29.5% /
    # Paley 26.6% via METIS; our stronger estimator lands lower for both —
    # see EXPERIMENTS.md).
    assert 0.12 < m["iq"] < 0.45
    assert 0.12 < m["paley"] < 0.45
    # The *stability* claim (§11.1): IQ's denser feasible-degree lattice
    # yields more configurations per radix than Paley, hence better radix
    # splits and a smoother Fig. 13 curve.
    from repro.core.polarstar import design_space

    iq_cfgs = sum(len(design_space(r, kinds=("iq",))) for r in range(8, 129))
    pal_cfgs = sum(len(design_space(r, kinds=("paley",))) for r in range(8, 129))
    assert iq_cfgs > 1.5 * pal_cfgs
