"""Fig. 11: Allreduce and Sweep3D motifs (SST/Ember substitute)."""

from repro.experiments import fig11
from benchmarks.conftest import quick_mode


def test_fig11(benchmark, save_result):
    ranks = 1024 if quick_mode() else 4096
    iters = 4 if quick_mode() else 10
    result = benchmark.pedantic(
        fig11.run, kwargs={"ranks": ranks, "iterations": iters}, rounds=1, iterations=1
    )
    save_result("fig11_motifs", fig11.format_figure(result))

    rows = {r["topology"]: r for r in result["rows"]}
    # §10.2: UGAL helps the direct low-diameter networks on Allreduce ...
    for name in ("PS-IQ", "DF", "HX"):
        assert rows[name]["allreduce_ugal"] <= rows[name]["allreduce_min"] * 1.3
    # ... and PolarStar beats Dragonfly (paper: 2.4x MIN, 1.4x UGAL).
    assert rows["PS-IQ"]["allreduce_min"] <= rows["DF"]["allreduce_min"]
    assert rows["PS-IQ"]["allreduce_ugal"] <= rows["DF"]["allreduce_ugal"] * 1.1
    # Sweep3D: PolarStar within a small margin of Dragonfly (paper:
    # "marginally faster" with MIN; our message-level engine lands within
    # ~20% either way on this nearest-neighbor-dominated motif).
    assert rows["PS-IQ"]["sweep3d_min"] <= rows["DF"]["sweep3d_min"] * 1.25
