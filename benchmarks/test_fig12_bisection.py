"""Fig. 12: fraction of links crossing the estimated minimum bisection."""

from repro.experiments import fig12
from benchmarks.conftest import quick_mode


def test_fig12(benchmark, save_result):
    radixes = (8, 12, 16) if quick_mode() else (8, 10, 12, 14, 16, 18, 20, 22, 24)
    result = benchmark.pedantic(
        fig12.run, kwargs={"radixes": radixes}, rounds=1, iterations=1
    )
    save_result("fig12_bisection", fig12.format_figure(result))

    m = result["means"]
    # Fig. 12 orderings that are stable under a consistent estimator at the
    # radixes we can afford (see EXPERIMENTS.md: our spectral+FM finds
    # *smaller* PolarStar bisections than the METIS estimates the paper
    # plots, cross-checked against NetworkX Kernighan-Lin):
    # Jellyfish (random graph) highest among direct networks; the star
    # products and Megafly beat Dragonfly; everything is far from a random
    # cut (0.5).
    assert m["Jellyfish"] >= m["PolarStar"]
    assert m["Jellyfish"] >= m["Dragonfly"]
    assert m["PolarStar"] >= m["Dragonfly"]
    assert m["Megafly"] > m["Dragonfly"]
    assert 0.12 < m["PolarStar"] < 0.45
    assert 0.12 < m["Bundlefly"] < 0.45
