"""Table 2: supernode-family comparison with verified properties."""

from repro.experiments import tab02


def test_tab02(benchmark, save_result):
    result = benchmark.pedantic(tab02.run, rounds=1, iterations=1)
    save_result("tab02_supernodes", tab02.format_figure(result))

    fam = result["families"]
    # Property columns of Table 2.
    assert fam["Inductive-Quad"]["rstar"]
    assert fam["Paley"]["r1"]
    assert fam["BDF"]["rstar"]
    assert fam["Complete"]["rstar"] and fam["Complete"]["r1"]
    # Order ranking at any common degree: IQ (2d'+2) > Paley (2d'+1) > BDF (2d').
    iq = fam["Inductive-Quad"]["orders"]
    pal = fam["Paley"]["orders"]
    bdf = fam["BDF"]["orders"]
    for d, n in iq.items():
        assert n == 2 * d + 2
    for d, n in pal.items():
        assert n == 2 * d + 1
    for d, n in bdf.items():
        assert n == 2 * d
