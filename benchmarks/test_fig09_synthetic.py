"""Fig. 9: synthetic traffic — saturation at full scale plus packet-level
latency curves at reduced scale.

Shape checks follow §9.5: PS-* sustain > 75% on uniform MIN; UGAL holds
0.4–0.6 across patterns; DF/MF collapse on bit shuffle (single link per
group pair) while the star products hold.
"""

import pytest

from repro.experiments import fig09
from benchmarks.conftest import quick_mode


@pytest.fixture(scope="module")
def flow_result(save_result):
    names = ("PS-IQ", "PS-Pal", "BF", "DF") if quick_mode() else (
        "PS-IQ", "PS-Pal", "BF", "HX", "DF", "MF", "FT", "SF"
    )
    result = fig09.run(names=names)
    save_result(
        "fig09_synthetic_saturation",
        fig09.format_figure(result),
        topologies=list(names),
    )
    return result


def _sat(result, topo, pattern, routing="min"):
    for r in result["rows"]:
        if r["topology"] == topo and r["pattern"] == pattern:
            return r[f"{routing}_saturation"]
    raise KeyError((topo, pattern))


def test_fig09_flow_level(benchmark, flow_result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    r = flow_result
    # §9.5: PS-* sustain more than 75% injection on uniform with MIN.
    assert _sat(r, "PS-IQ", "uniform") > 0.75
    assert _sat(r, "PS-Pal", "uniform") > 0.75
    # UGAL sustains a healthy fraction on every pattern for PS-*.
    for pattern in ("uniform", "permutation", "bitreverse", "bitshuffle"):
        assert _sat(r, "PS-IQ", pattern, "ugal") > 0.2
    # Bit shuffle: star products (multiple inter-supernode links) beat DF
    # (single link per group pair) under minimal routing — the §9.5
    # star-product headline ("this pattern highlights the benefits of
    # star-product topologies over DF and MF").  UGAL largely equalizes
    # the pattern via Valiant spreading, as in Fig. 9f's converged curves.
    assert _sat(r, "PS-IQ", "bitshuffle") > 2.0 * _sat(r, "DF", "bitshuffle")
    assert _sat(r, "BF", "bitshuffle") > 2.0 * _sat(r, "DF", "bitshuffle")
    # Bit reverse is more balanced — DF recovers there (§9.5).
    assert _sat(r, "DF", "bitreverse") > _sat(r, "DF", "bitshuffle")


def test_fig09_packet_sim_uniform(benchmark, save_result):
    """Reduced-scale cycle-mechanics validation: latency rises with load and
    PS saturates above 0.6 on uniform traffic with MIN routing."""
    from repro.sim.packet import PacketSimConfig

    cfg = PacketSimConfig(warmup_cycles=400, measure_cycles=1600, drain_cycles=2000)
    loads = (0.2, 0.4, 0.6) if quick_mode() else (0.1, 0.3, 0.5, 0.7, 0.9)
    curves = benchmark.pedantic(
        fig09.packet_sim_curves,
        kwargs={"names": ("PS-IQ", "DF"), "loads": loads, "config": cfg},
        rounds=1,
        iterations=1,
    )
    lines = []
    for name, pts in curves.items():
        for p in pts:
            lines.append(
                f"{name:6s} load={p['load']:.2f} latency={p['latency']:8.1f} "
                f"thr={p['throughput']:.3f} stable={p['stable']}"
            )
    save_result(
        "fig09_packet_sim_uniform",
        "\n".join(lines),
        seed=cfg.seed,
        config=cfg,
        topologies=["PS-IQ", "DF"],
        loads=list(loads),
    )

    ps = curves["PS-IQ"]
    stable = [p for p in ps if p["stable"]]
    assert stable and stable[-1]["load"] >= 0.5
    lats = [p["latency"] for p in stable]
    assert lats == sorted(lats)
