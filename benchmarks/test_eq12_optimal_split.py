"""Eq. 1 / Eq. 2: scaling laws vs the exhaustive design-space search."""

from repro.experiments import eq12


def test_eq12(benchmark, save_result):
    result = benchmark.pedantic(eq12.run, rounds=1, iterations=1)
    save_result("eq12_optimal_split", eq12.format_figure(result))

    for row in result["rows"]:
        # Eq. 1: best feasible q lies near the analytic optimum (prime-power
        # gaps allowing).
        assert abs(row["q_best"] - row["q_eq1"]) <= 6
        # Eq. 2: closed form tracks the exhaustive maximum within 10%.
        assert 0.90 <= row["order_best"] / row["order_eq2"] <= 1.10
        # The Moore fraction approaches 8/27 from above.
        assert 0.27 < row["moore_fraction"] < 0.36
