"""Table 1: network-property assessment, computed on the Table 3 instances."""

from repro.experiments import tab01


def test_tab01(benchmark, save_result):
    result = benchmark.pedantic(tab01.run, rounds=1, iterations=1)
    save_result("tab01_properties", tab01.format_figure(result))

    rows = {r["name"]: r for r in result["rows"]}
    # Directness (Table 1 column 1): FT and MF are indirect, the rest direct.
    for name in ("PS-IQ", "PS-Pal", "BF", "HX", "DF"):
        assert rows[name]["direct"]
    for name in ("MF", "FT"):
        assert not rows[name]["direct"]
    # Scalability: PolarStar has the best Moore efficiency of the family.
    ps = rows["PS-IQ"]["efficiency"]
    for name in ("BF", "DF", "HX"):
        assert ps > rows[name]["efficiency"]
    # Diameter <= 3 for endpoint traffic everywhere.
    for r in result["rows"]:
        assert r["endpoint_diameter"] <= 3 or r["name"] == "FT" and r["endpoint_diameter"] <= 4
    # Bundlability: star products have many parallel inter-group links,
    # DF and MF exactly one.
    assert rows["PS-IQ"]["max_parallel_group_links"] >= 8
    assert rows["BF"]["max_parallel_group_links"] >= 8
    assert rows["DF"]["max_parallel_group_links"] == 1
    assert rows["MF"]["max_parallel_group_links"] == 1
