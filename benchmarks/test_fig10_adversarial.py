"""Fig. 10: adversarial group-to-group traffic."""

from repro.experiments import fig10


def test_fig10(benchmark, save_result):
    result = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    save_result("fig10_adversarial", fig10.format_figure(result))

    sat = {r["topology"]: r for r in result["rows"]}
    # DF and MF saturate lowest: a single link per group pair (§9.6).
    assert sat["DF"]["min_saturation"] < sat["PS-IQ"]["min_saturation"]
    assert sat["MF"]["min_saturation"] < sat["PS-IQ"]["min_saturation"]
    assert sat["DF"]["min_saturation"] < sat["BF"]["min_saturation"]
    # PS-IQ beats PS-Pal and BF (§9.6: larger share of global links).
    assert sat["PS-IQ"]["min_saturation"] >= sat["PS-Pal"]["min_saturation"]
    assert sat["PS-IQ"]["min_saturation"] >= sat["BF"]["min_saturation"] * 0.9
    # UGAL recovers substantial load everywhere.
    for name, row in sat.items():
        assert row["ugal_saturation"] >= row["min_saturation"]
