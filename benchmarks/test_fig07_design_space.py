"""Fig. 7: feasible (radix, order) combinations of PolarStar."""

from repro.experiments import fig07


def test_fig07(benchmark, save_result):
    result = benchmark.pedantic(
        fig07.run, kwargs={"radix_lo": 8, "radix_hi": 128}, rounds=1, iterations=1
    )
    save_result("fig07_design_space", fig07.format_figure(result))

    rows = result["rows"]
    # §1.3: configurations exist for every radix in [8, 128] ...
    assert {r["radix"] for r in rows} == set(range(8, 129))
    # ... with a wide range of orders per radix.
    assert all(r["num_configs"] >= 2 for r in rows)
    assert all(r["max_order"] > 2 * r["min_order"] for r in rows if r["radix"] >= 12)
    # §7.2: Paley wins exactly at k = 23, 50, 56, 80.
    assert result["paley_win_radixes"] == [23, 50, 56, 80]
