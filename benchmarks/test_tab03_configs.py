"""Table 3: simulated network configurations, rebuilt and cross-checked."""

from repro.experiments import tab03


def test_tab03(benchmark, save_result):
    result = benchmark.pedantic(tab03.run, rounds=1, iterations=1)
    save_result("tab03_configs", tab03.format_figure(result))

    rows = {r["name"]: r for r in result["rows"]}
    # Everything except PS-Pal matches the printed table exactly; PS-Pal's
    # stated construction gives 949 routers (the printed 993 is unreachable
    # by any (q²+q+1)(2d'+1) product at radix 15 — see table3.py).
    for name, r in rows.items():
        if name == "PS-Pal":
            assert r["routers"] == 949 and r["radix"] == 15
        else:
            assert r["match"], name
