#!/usr/bin/env python
"""Which Allreduce algorithm suits which topology?

Runs recursive doubling, ring, and Rabenseifner Allreduce (plus a binomial
broadcast and pairwise all-to-all for flavor) over PolarStar and Dragonfly
at full Table 3 scale — the algorithm-level sequel to the paper's §10
motif study.

Run:  python examples/collectives_comparison.py [ranks] [size_kib]
"""

import sys

from repro.experiments.common import table3_instance, table3_router
from repro.sim.motif import MotifEngine, MotifNetworkConfig
from repro.traffic.collectives import (
    alltoall_events,
    broadcast_events,
    rabenseifner_allreduce_events,
    recursive_doubling_allreduce,
    ring_allreduce_events,
)

CFG = MotifNetworkConfig(link_bw=4e9, link_latency=20e-9, router_latency=20e-9)


def main() -> None:
    ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    size = (int(sys.argv[2]) if len(sys.argv) > 2 else 1024) * 1024

    print(f"=== Collectives on {ranks} ranks, {size // 1024} KiB buffers ===\n")
    algos = {
        "allreduce/recursive-doubling": lambda n: recursive_doubling_allreduce(n, size),
        "allreduce/ring": lambda n: ring_allreduce_events(n, size),
        "allreduce/rabenseifner": lambda n: rabenseifner_allreduce_events(n, size),
        "broadcast/binomial": lambda n: broadcast_events(n, size),
        "alltoall/pairwise": lambda n: alltoall_events(n, max(1024, size // n)),
    }
    names = ("PS-IQ", "DF")
    header = f"{'collective':30s}" + "".join(f"{n:>12s}" for n in names)
    print(header)
    print("-" * len(header))
    for label, gen in algos.items():
        cells = []
        for name in names:
            topo = table3_instance(name)
            router, _ = table3_router(name)
            n = min(ranks, topo.num_endpoints)
            t = MotifEngine(topo, router, CFG).run(gen(n))
            cells.append(f"{t * 1e3:10.2f}ms")
        print(f"{label:30s}" + "".join(f"{c:>12s}" for c in cells))

    print("\nShape to notice: ring wins at large buffers (bandwidth-optimal),")
    print("recursive doubling wins at small ones (fewest rounds), and the")
    print("low-diameter PolarStar narrows every gap relative to Dragonfly.")


if __name__ == "__main__":
    main()
