#!/usr/bin/env python
"""Traffic simulation: latency-vs-load on PolarStar vs Dragonfly.

Exercises both simulation substrates on the same workload:

1. the flow-level model at full Table 3 scale — exact saturation loads;
2. the event-driven packet simulator (VCs + credit flow control) at
   reduced scale — real queueing latency curves.

This reproduces the Fig. 9 methodology end to end for one pattern.

Run:  python examples/traffic_simulation.py [uniform|permutation|bitshuffle|bitreverse]
"""

import sys

from repro.experiments.common import table3_instance, table3_router
from repro.experiments.fig09 import PATTERNS
from repro.sim.flow import link_loads, saturation_load, ugal_saturation_load
from repro.sim.packet import PacketSimConfig, latency_load_sweep

TOPOLOGIES = ("PS-IQ", "DF")


def main() -> None:
    pattern = sys.argv[1] if len(sys.argv) > 1 else "uniform"
    if pattern not in PATTERNS:
        raise SystemExit(f"unknown pattern {pattern!r}; options: {list(PATTERNS)}")

    print(f"=== {pattern} traffic: PolarStar (PS-IQ) vs Dragonfly ===\n")

    print("-- flow-level model, full Table 3 scale --")
    for name in TOPOLOGIES:
        topo = table3_instance(name)
        router, mode = table3_router(name)
        demand = PATTERNS[pattern](topo).router_demand()
        sat = saturation_load(topo, router, demand, mode=mode)
        ugal = ugal_saturation_load(topo, router, demand, mode=mode)
        print(f"  {name:6s} ({topo.num_routers} routers): "
              f"MIN saturates at {sat:.2f}, UGAL at {ugal:.2f} "
              f"of full injection bandwidth")

    print("\n-- packet-level simulation, reduced scale --")
    cfg = PacketSimConfig(warmup_cycles=400, measure_cycles=1600, drain_cycles=2000)
    for name in TOPOLOGIES:
        topo = table3_instance(name, scale="reduced")
        router, _ = table3_router(name, scale="reduced")
        pat = PATTERNS[pattern](topo)
        print(f"  {name} ({topo.num_routers} routers, "
              f"{topo.num_endpoints} endpoints):")
        results = latency_load_sweep(
            topo, router, pat, loads=[0.1, 0.3, 0.5, 0.7, 0.9], config=cfg
        )
        for r in results:
            status = "stable" if r.stable else "SATURATED"
            print(f"    load {r.offered_load:.1f}: avg latency "
                  f"{r.avg_latency:7.1f} cycles, throughput {r.throughput:.3f}  "
                  f"[{status}]")


if __name__ == "__main__":
    main()
