#!/usr/bin/env python
"""Quickstart: build a PolarStar network and inspect its guarantees.

Constructs the paper's Table 3 PS-IQ instance (1064 routers of radix 15 =
ER_11 * IQ_3), verifies the diameter-3 guarantee, routes a few packets with
the analytic §9.2 router, and prints the design space at this radix.

Run:  python examples/quickstart.py
"""

from repro import best_config, build_polarstar, design_space
from repro.analysis import average_path_length, diameter
from repro.routing import PolarStarRouter, TableRouter, route_path

RADIX = 15


def main() -> None:
    print(f"=== PolarStar quickstart (network radix {RADIX}) ===\n")

    print("Design space at this radix:")
    for cfg in design_space(RADIX):
        print(f"  {cfg.name:32s} -> {cfg.order:5d} routers")

    cfg = best_config(RADIX)
    print(f"\nLargest configuration: {cfg.name} with {cfg.order} routers")
    print(f"  structure graph: ER_{cfg.q} ({cfg.structure_order} supernodes)")
    print(f"  supernode:       IQ_{cfg.dprime} ({cfg.supernode_order} routers each)")

    star = build_polarstar(cfg)
    g = star.graph
    print(f"\nBuilt {g.name}: {g.n} routers, {g.m} links, "
          f"{'regular' if g.is_regular() else 'irregular'} degree {g.max_degree}")

    d = diameter(g)
    apl = average_path_length(g, sample=128)
    print(f"diameter = {d:.0f} (paper guarantee: 3), avg path length = {apl:.2f}")

    print("\nAnalytic routing (§9.2) — a few sample routes:")
    router = PolarStarRouter(star)
    oracle = TableRouter(g)
    for src, dst in [(0, g.n - 1), (17, 803), (5, 5 + star.supernode.n)]:
        path = route_path(router, src, dst)
        labeled = " -> ".join(str(star.split(v)) for v in path)
        print(f"  {labeled}   ({len(path) - 1} hops; BFS optimum "
              f"{oracle.distance(src, dst)})")

    print(f"\nrouting state: analytic router {router.table_bytes / 1024:.0f} KiB "
          f"vs full tables {oracle.table_bytes / 1024:.0f} KiB")


if __name__ == "__main__":
    main()
