#!/usr/bin/env python
"""Design-space exploration: size a diameter-3 network for a target system.

Scenario from the paper's introduction: you are planning a co-packaged
system that must reach a target number of endpoints with the smallest
switch radix (radix drives cost and power).  For each candidate topology
family this script reports the minimum radix that reaches the target and
the concrete configuration — the Fig. 1 story as a planning tool.

Run:  python examples/design_space_explorer.py [target_endpoints]
"""

import sys

from repro.core.moore import moore_bound_diameter3
from repro.core.polarstar import best_config, polarstar_order
from repro.topologies.bundlefly import bundlefly_max_order
from repro.topologies.dragonfly import dragonfly_max_order
from repro.topologies.hyperx import hyperx_max_order

FAMILIES = {
    "PolarStar": polarstar_order,
    "Bundlefly": bundlefly_max_order,
    "Dragonfly": dragonfly_max_order,
    "3-D HyperX": hyperx_max_order,
}


def min_radix_for(order_fn, target_routers: int, max_radix: int = 160) -> int | None:
    for radix in range(4, max_radix + 1):
        if order_fn(radix) >= target_routers:
            return radix
    return None


def main() -> None:
    target_endpoints = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000

    print(f"=== Sizing a diameter-3 network for {target_endpoints:,} endpoints ===\n")
    print("Rule of thumb (paper §9.1): endpoints per router p = radix / 3,")
    print("so routers needed ~ 3 * endpoints / radix at each candidate radix.\n")

    print(f"{'family':12s} {'min radix':>9s} {'routers':>9s} {'endpoints':>10s} "
          f"{'Moore eff':>9s}")
    for name, order_fn in FAMILIES.items():
        found = None
        for radix in range(8, 160):
            p = max(1, radix // 3)
            routers_needed = -(-target_endpoints // p)  # ceil
            if order_fn(radix) >= routers_needed:
                found = (radix, order_fn(radix), p)
                break
        if found is None:
            print(f"{name:12s} {'-':>9s}")
            continue
        radix, order, p = found
        eff = order / moore_bound_diameter3(radix)
        print(f"{name:12s} {radix:9d} {order:9,d} {order * p:10,d} {eff:9.1%}")

    print("\nPolarStar configurations near the winning radix:")
    radix = min_radix_for(
        lambda r: polarstar_order(r) * max(1, r // 3), target_endpoints
    )
    if radix:
        for r in range(radix, radix + 3):
            cfg = best_config(r)
            if cfg:
                p = max(1, r // 3)
                print(f"  radix {r}: {cfg.name:34s} {cfg.order:7,d} routers x "
                      f"{p} endpoints = {cfg.order * p:9,d} endpoints")


if __name__ == "__main__":
    main()
