#!/usr/bin/env python
"""Fault resilience: how PolarStar degrades under random link failures.

Reproduces the §11.2 methodology on a configurable PolarStar instance:
random links fail cumulatively; we track diameter and average shortest-path
length, and estimate the disconnection ratio over many scenarios — then
compare against Dragonfly at matched radix.

Run:  python examples/fault_resilience.py [radix]
"""

import sys

import numpy as np

from repro.analysis.faults import disconnection_ratio, link_failure_sweep
from repro.topologies import dragonfly_topology, polarstar_topology

FRACTIONS = (0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5)


def report(name: str, graph, scenarios: int = 15) -> None:
    ratios = [disconnection_ratio(graph, seed=s) for s in range(scenarios)]
    print(f"\n{name}: {graph.n} routers, {graph.m} links")
    print(f"  median disconnection ratio over {scenarios} scenarios: "
          f"{np.median(ratios):.0%}")
    sweep = link_failure_sweep(graph, FRACTIONS, seed=int(np.argsort(ratios)[len(ratios) // 2]))
    print(f"  {'failed':>8s} {'diameter':>9s} {'avg path':>9s}")
    for frac, d, apl in zip(sweep.fractions, sweep.diameters, sweep.avg_path_lengths):
        print(f"  {frac:8.0%} {d:9.0f} {apl:9.2f}")


def main() -> None:
    radix = int(sys.argv[1]) if len(sys.argv) > 1 else 12

    ps = polarstar_topology(radix, p=1)
    report(f"PolarStar (radix {radix})", ps.graph)

    # Dragonfly at the same network radix: a - 1 + h = radix, a = 2h-ish.
    h = max(1, (radix + 1) // 3)
    a = radix + 1 - h
    df = dragonfly_topology(a=a, h=h, p=1)
    report(f"Dragonfly (a={a}, h={h})", df.graph)

    print("\nNote the Fig. 14 signature: Dragonfly tolerates slightly more "
          "failures before disconnecting, but its diameter and path lengths "
          "blow up much earlier — each failed global link forces detours "
          "through third groups.")


if __name__ == "__main__":
    main()
