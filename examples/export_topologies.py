#!/usr/bin/env python
"""Export the Table 3 networks to external simulator formats.

Writes, for each Table 3 topology:

* a Booksim2 ``anynet`` file (usable with the original simulator of §9),
* SST-style link/endpoint CSVs,
* a plain edge list,

into an output directory (default ``./exported_topologies``).

Run:  python examples/export_topologies.py [outdir] [names...]
"""

import sys
from pathlib import Path

from repro.graphs.io import write_edgelist
from repro.topologies import TABLE3_BUILDERS, build_table3_topology
from repro.topologies.export import write_booksim_anynet, write_sst_edge_csv


def main() -> None:
    outdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("exported_topologies")
    names = sys.argv[2:] or [n for n in TABLE3_BUILDERS if n != "SF"] + ["SF"]
    outdir.mkdir(parents=True, exist_ok=True)

    for name in names:
        topo = build_table3_topology(name)
        base = outdir / name.lower().replace("-", "_")
        write_booksim_anynet(topo, base.with_suffix(".anynet"))
        write_sst_edge_csv(topo, base.with_suffix(".links.csv"), base.with_suffix(".endpoints.csv"))
        write_edgelist(topo.graph, base.with_suffix(".edges"))
        print(f"{name:7s} -> {base}.{{anynet,links.csv,endpoints.csv,edges}} "
              f"({topo.num_routers} routers, {topo.graph.m} links)")


if __name__ == "__main__":
    main()
