#!/usr/bin/env python
"""§8 walk-through: modular layout and multi-core-fiber bundling.

Shows, for a PolarStar of your chosen radix, how the deployment story of
§8 plays out: supernodes as blades, parallel links per adjacent supernode
pair (one MCF), supernode clusters, and the resulting cable-count
reduction.

Run:  python examples/bundling_layout.py [radix]
"""

import sys

from repro.core.polarstar import best_config
from repro.layout import bundling_report
from repro.topologies import polarstar_topology


def main() -> None:
    radix = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    cfg = best_config(radix)
    if cfg is None:
        raise SystemExit(f"no PolarStar at radix {radix}")
    topo = polarstar_topology(cfg, p=1)
    rep = bundling_report(topo)
    q, dstar = cfg.q, cfg.radix

    print(f"=== {cfg.name}: {cfg.order} routers of radix {radix} ===\n")
    print(f"building block (blade): one {('IQ' if cfg.supernode_kind == 'iq' else 'Paley')}"
          f"_{cfg.dprime} supernode of {cfg.supernode_order} routers,")
    print(f"replicated {cfg.structure_order} times (once per ER_{q} vertex).\n")

    print(f"links between adjacent supernodes : {rep.links_per_supernode_pair}"
          f"   (paper: 2(d*-q) = {2 * (dstar - q)})")
    print(f"multi-core fibers needed          : {rep.num_bundles}"
          f"   (= ER_{q} edges = q(q+1)^2/2 = {q * (q + 1) ** 2 // 2})")
    print(f"global links before bundling      : {rep.total_global_links}")
    print(f"cable-count reduction             : {rep.cable_reduction:.1f}x"
          f"   (paper: ~2d*/3 = {2 * dstar / 3:.1f})")
    print(f"supernode clusters (racks)        : {rep.num_clusters} (= q+1)")
    print(f"bundles between cluster pairs     : {rep.mean_bundles_between_clusters:.1f}"
          f"   (paper: ~q = {q})")


if __name__ == "__main__":
    main()
