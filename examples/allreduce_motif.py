#!/usr/bin/env python
"""Distributed-training Allreduce on diameter-3 networks (§10 scenario).

The paper's intro motivates low-diameter networks with large-scale ML and
HPC workloads; this example replays the Allreduce collective (recursive
doubling, 64 KB messages, 10 iterations — the §10.1 setup) and the Sweep3D
wavefront over PolarStar, Dragonfly, HyperX and Fat-tree at full Table 3
scale, with both MIN and UGAL routing.

Run:  python examples/allreduce_motif.py [ranks]
"""

import sys

from repro.experiments.common import table3_instance, table3_router
from repro.sim.motif import MotifEngine, MotifNetworkConfig
from repro.traffic import allreduce_events, sweep3d_events

CFG = MotifNetworkConfig(link_bw=4e9, link_latency=20e-9, router_latency=20e-9)


def main() -> None:
    ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 4096

    print(f"=== Allreduce (64 KB) and Sweep3D on {ranks} ranks ===")
    print("link bandwidth 4 GB/s, link/router latency 20 ns, 10 iterations\n")

    header = f"{'topology':9s} {'routing':8s} {'allreduce':>12s} {'sweep3d':>12s}"
    print(header)
    print("-" * len(header))
    for name in ("PS-IQ", "DF", "HX", "FT"):
        topo = table3_instance(name)
        router, _ = table3_router(name)
        n = min(ranks, topo.num_endpoints)
        nx = int(n**0.5)
        while n % nx:
            nx -= 1
        ar = allreduce_events(n, size=64 * 1024, iterations=10)
        sw = sweep3d_events(nx, n // nx, size=32 * 1024, iterations=10)
        for label, adaptive in (("MIN", False), ("UGAL", True)):
            t_ar = MotifEngine(topo, router, CFG, adaptive=adaptive).run(ar)
            t_sw = MotifEngine(topo, router, CFG, adaptive=adaptive).run(sw)
            print(f"{name:9s} {label:8s} {t_ar * 1e3:10.2f}ms {t_sw * 1e3:10.2f}ms")


if __name__ == "__main__":
    main()
