"""Command-line entry point and programmatic runner for repro-lint.

``python -m tools.lint src tests benchmarks examples`` walks the given
files/directories, runs every enabled rule in scope for each file, prints
violations sorted by location, and exits nonzero iff any *error*-severity
violation survives suppression filtering.

``--program`` additionally runs the whole-program passes
(:mod:`tools.lint.program`): alias-aware contract enforcement, layering,
determinism taint and concurrency safety.  ``--format json|sarif`` emits
machine-readable output; both formats are byte-deterministic (findings
sorted by path/line/col/rule) regardless of filesystem or argument order.
"""

from __future__ import annotations

import argparse
import ast
import sys
from collections import Counter
from pathlib import Path
from typing import Sequence

from tools.lint.config import ALWAYS_EXCLUDE, LintConfig, load_config, path_in_scope
from tools.lint.core import (
    ModuleContext,
    Rule,
    Suppressions,
    Violation,
    all_rules,
    get_rule,
)
from tools.lint.output import format_json, format_sarif, sort_violations

__all__ = ["discover_files", "lint_file", "run_paths", "main"]


def discover_files(paths: Sequence[str], config: LintConfig) -> list[Path]:
    """Expand CLI path arguments into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_file() and p.suffix == ".py":
            out.add(p)
        elif p.is_dir():
            out.update(f for f in p.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    kept = []
    for f in sorted(out):
        rel = _relative(f, config.root)
        parts = Path(rel).parts
        if any(part in ALWAYS_EXCLUDE or part.endswith(".egg-info") for part in parts):
            continue
        if any(path_in_scope(rel, (ex,)) for ex in config.exclude):
            continue
        kept.append(f)
    return kept


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _build_rules(config: LintConfig, select: set[str], ignore: set[str]) -> list[Rule]:
    rules: list[Rule] = []
    for cls in all_rules():
        options = config.options_for(cls.code, cls.name)
        if select and cls.code not in select and cls.name not in select:
            continue
        if cls.code in ignore or cls.name in ignore:
            continue
        if not options.get("enabled", True):
            continue
        rule = cls(options)
        if "severity" in options:
            rule.severity = options["severity"]
        rules.append(rule)
    return rules


def lint_file(path: Path, rules: Sequence[Rule], config: LintConfig) -> list[Violation]:
    """Run every in-scope rule on one file; returns surviving violations."""
    rel = _relative(path, config.root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                rule="RL000",
                name="parse-error",
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"cannot parse: {exc.msg}",
            )
        ]
    ctx = ModuleContext(str(path), source, tree)
    suppressions = Suppressions(source, tree)
    found: list[Violation] = []
    for rule in rules:
        prefixes = rule.options.get("paths")
        scope = tuple(prefixes) if prefixes is not None else rule.default_paths
        if not path_in_scope(rel, scope):
            continue
        for violation in rule.check(ctx):
            if not suppressions.is_suppressed(violation):
                found.append(violation.with_severity(rule.severity))
    return found


def run_paths(
    paths: Sequence[str],
    root: Path | None = None,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    program: bool = False,
    use_cache: bool = True,
) -> tuple[list[Violation], int]:
    """Lint *paths*; returns ``(violations, files_checked)``.

    This is the programmatic API the test suite uses; ``main`` is a thin
    argv/printing wrapper around it.  With ``program=True`` the
    whole-program passes run after the per-file rules; findings both
    engines report at the same (path, line, col, rule) are de-duplicated
    in favor of the per-file one.
    """
    root = root or Path.cwd()
    config = load_config(root)
    rules = _build_rules(config, select or set(), ignore or set())
    files = discover_files(paths, config)
    violations: list[Violation] = []
    for f in files:
        violations.extend(lint_file(f, rules, config))
    if program:
        from tools.lint.program.engine import analyze_program

        seen = {(v.path, v.line, v.col, v.rule) for v in violations}
        for v in analyze_program(
            files, root, config, select, ignore, use_cache=use_cache
        ):
            if (v.path, v.line, v.col, v.rule) not in seen:
                violations.append(v)
    violations = sort_violations(violations)
    return violations, len(files)


def _print_rule_catalog() -> None:
    from tools.lint.program.base import all_program_rules

    for cls in all_rules():
        scope = ", ".join(cls.default_paths) if cls.default_paths else "all files"
        print(f"{cls.code}  {cls.name}  [{cls.severity}]  (scope: {scope})")
        print(f"       {cls.description}")
    print("\nwhole-program passes (--program):")
    for cls in all_program_rules():
        scope = ", ".join(cls.default_paths) if cls.default_paths else "all files"
        print(f"{cls.code}  {cls.name}  [{cls.severity}]  (scope: {scope})")
        print(f"       {cls.description}")


def _known_rule(name: str) -> bool:
    try:
        get_rule(name)
        return True
    except KeyError:
        pass
    from tools.lint.program.base import get_program_rule

    try:
        get_program_rule(name)
        return True
    except KeyError:
        return False


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="repro-lint: domain-aware static analysis for this repo",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--select",
        default="",
        help="comma-separated rule codes/names to run exclusively",
    )
    parser.add_argument(
        "--ignore", default="", help="comma-separated rule codes/names to skip"
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print a per-rule violation count summary",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root holding pyproject.toml (default: cwd)",
    )
    parser.add_argument(
        "--program",
        action="store_true",
        help="also run the whole-program passes (call graph, layering, "
        "determinism taint, concurrency safety)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (json/sarif are byte-deterministic)",
    )
    parser.add_argument(
        "--output",
        default="",
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the whole-program analysis cache",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rule_catalog()
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m tools.lint src tests)")

    select = {s.strip() for s in args.select.split(",") if s.strip()}
    ignore = {s.strip() for s in args.ignore.split(",") if s.strip()}
    for name in select | ignore:
        if not _known_rule(name):
            parser.error(f"unknown rule {name!r} (see --list-rules)")

    root = Path(args.root)
    # Relative path arguments are relative to --root, so the CI invocation
    # works unchanged from any working directory.
    paths = [p if Path(p).is_absolute() else str(root / p) for p in args.paths]
    try:
        violations, files_checked = run_paths(
            paths,
            root=root,
            select=select,
            ignore=ignore,
            program=args.program,
            use_cache=not args.no_cache,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    errors = sum(1 for v in violations if v.severity == "error")
    warnings = len(violations) - errors

    if args.format == "json":
        report = format_json(violations, files_checked)
    elif args.format == "sarif":
        report = format_sarif(violations, root=root)
    else:
        lines = [v.format() for v in violations]
        if args.statistics and violations:
            counts = Counter(f"{v.rule} [{v.name}]" for v in violations)
            lines.append("\nper-rule counts:")
            for key, count in counts.most_common():
                lines.append(f"  {count:4d}  {key}")
        lines.append(
            f"repro-lint: {files_checked} files checked, "
            f"{errors} errors, {warnings} warnings"
        )
        report = "\n".join(lines) + "\n"

    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
        if args.format == "text":
            print(f"repro-lint: report written to {args.output}")
    else:
        sys.stdout.write(report)

    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
