"""Domain contract rules (RL1xx).

The constructions in this repository are only defined for particular
number-theoretic parameters: :math:`ER_q` needs a prime power ``q``
(Theorem 1), Paley supernodes a prime power ``q ≡ 1 (mod 4)`` (Theorem 5),
Inductive-Quad a degree ``d' ≡ 0,3 (mod 4)`` (Proposition 2), and the
PolarStar radix split must satisfy Eq. 1.  A constructor that silently
accepts a bad parameter builds a *wrong graph* — no exception, no test
failure, just an object violating Property R/R*/R_1 downstream.  These
rules force every graph/topology factory to validate-or-delegate.

RL105 guards the fault-injection subsystem (``repro.faults``): fault
scenarios must be bit-reproducible (seeded ``np.random`` Generators only —
never the stdlib ``random`` module or an unseeded ``default_rng()``) and
fault handling must be explicit — a broad ``except`` that swallows an
error *inside the failure model itself* turns an injected fault into a
silently wrong result, so RL105 forbids it outright (no logging escape
hatch, unlike the repo-wide RL202).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import (
    ModuleContext,
    Rule,
    Violation,
    dotted_name,
    matches_any,
    register,
)

__all__ = [
    "ContractValidation",
    "DurabilityDiscipline",
    "FaultDiscipline",
    "HotLoopDiscipline",
    "ProcessDiscipline",
    "RetryDiscipline",
    "ServeDiscipline",
    "StoreDiscipline",
]

#: Function-name patterns treated as graph/topology factories.
FACTORY_PATTERNS = (
    "*_graph",
    "*_supernode",
    "*_topology",
    "build_*",
    "inductive_quad",
    "star_product",
)

#: Callee-name patterns that count as precondition validation.
VALIDATOR_PATTERNS = (
    "is_prime_power",
    "prime_power_root",
    "validate*",
    "_validate*",
    "check_*",
    "_check*",
    "require_*",
)

#: Constructor method names checked inside classes.
CONSTRUCTOR_METHODS = ("__init__", "__post_init__")


def _calls(node: ast.AST) -> Iterator[str]:
    """Names of every function called anywhere inside *node* (last attribute
    segment for dotted calls, so ``repro.fields.is_prime_power`` → the
    pattern match sees both the full chain and ``is_prime_power``)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            full = dotted_name(sub.func)
            if full is not None:
                yield full
                if "." in full:
                    yield full.rsplit(".", 1)[1]


def _validates(fn: ast.FunctionDef, factories: tuple[str, ...], validators: tuple[str, ...]) -> bool:
    for sub in ast.walk(fn):
        if isinstance(sub, ast.Raise):
            return True
    for callee in _calls(fn):
        if matches_any(callee, validators) or matches_any(callee, factories):
            return True
    return False


@register
class ContractValidation(Rule):
    """Graph/topology factories must validate their preconditions.

    A factory (function matching ``FACTORY_PATTERNS``, or an ``__init__`` /
    ``__post_init__`` in a contract module) passes if its body contains a
    ``raise`` statement, a call to a validator (``is_prime_power``,
    ``validate_*``, ``check_*``, ...), or a delegation to another factory
    that does.  ``assert`` does **not** count: it disappears under
    ``python -O`` and a production-scale deployment will run optimized.
    """

    code = "RL101"
    name = "contract-validation"
    severity = "error"
    default_paths = (
        "src/repro/graphs",
        "src/repro/topologies",
        "src/repro/core",
    )
    description = (
        "graph/topology constructors must validate number-theoretic "
        "preconditions (prime-power q, degree residues, radix split) or "
        "delegate to a factory that does"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        factories = tuple(self.option("factories", FACTORY_PATTERNS))
        validators = tuple(self.option("validators", VALIDATOR_PATTERNS))

        for node in ctx.top_level(ast.FunctionDef):
            if node.name.startswith("_"):
                continue
            if not matches_any(node.name, factories):
                continue
            if not _validates(node, factories, validators):
                yield self.flag(
                    ctx,
                    node,
                    f"factory {node.name!r} builds a graph/topology without "
                    "validating its preconditions (no raise, validator call, "
                    "or factory delegation)",
                )

        for cls in ctx.top_level(ast.ClassDef):
            for item in cls.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if item.name not in CONSTRUCTOR_METHODS:
                    continue
                if not _validates(item, factories, validators):
                    yield self.flag(
                        ctx,
                        item,
                        f"{cls.name}.{item.name} constructs a contract object "
                        "without validating its inputs (no raise, validator "
                        "call, or factory delegation)",
                    )


#: ``except`` types considered broad (swallow-everything) handlers.
_BROAD_EXCEPT_TYPES = ("Exception", "BaseException")


def _broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    for t in types:
        name = dotted_name(t)
        if name is not None and name.rsplit(".", 1)[-1] in _BROAD_EXCEPT_TYPES:
            return True
    return False


@register
class FaultDiscipline(Rule):
    """Fault-injection code: seeded RNGs only, no broad excepts. Ever.

    Stricter than the repo-wide rules on its home turf:

    * RL202 lets a broad handler off with a log call or a re-raise; here a
      broad ``except`` is flagged unconditionally — inside the failure
      model, "handled" faults are corrupted experiments.
    * RL204/RL205 police NumPy RNG use; RL105 additionally bans the stdlib
      ``random`` module (process-global, unseedable per-scenario) and
      repeats the unseeded-``default_rng()`` check so the whole
      determinism contract for fault scenarios reads from one rule.
    """

    code = "RL105"
    name = "fault-discipline"
    severity = "error"
    default_paths = ("src/repro/faults",)
    description = (
        "fault code must draw randomness from seeded np.random Generators "
        "(no stdlib random, no unseeded default_rng) and must never use "
        "broad except handlers, even logged ones"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                if _broad_handler(node):
                    label = "bare except" if node.type is None else "broad except"
                    yield self.flag(
                        ctx,
                        node,
                        f"{label} in fault code: a swallowed error corrupts "
                        "the failure model; catch the specific exception",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None:
                continue
            parts = callee.split(".")
            if parts[0] == "random" and len(parts) == 2:
                yield self.flag(
                    ctx,
                    node,
                    f"stdlib {callee}() uses process-global unseeded state; "
                    "fault scenarios must come from np.random.default_rng(seed)",
                )
            elif parts[-1] == "default_rng" and not node.args and not node.keywords:
                yield self.flag(
                    ctx,
                    node,
                    "default_rng() without a seed makes the fault scenario "
                    "unreproducible; thread an explicit seed through",
                )


#: Modules whose import means "this code spawns or manages processes".
_PROCESS_MODULES = ("multiprocessing", "subprocess")

#: ``os.`` functions that fork/spawn/replace processes.
_OS_PROCESS_FNS = (
    "fork",
    "forkpty",
    "system",
    "popen",
    "spawnl",
    "spawnle",
    "spawnlp",
    "spawnlpe",
    "spawnv",
    "spawnve",
    "spawnvp",
    "spawnvpe",
    "posix_spawn",
    "posix_spawnp",
    "execl",
    "execle",
    "execlp",
    "execlpe",
    "execv",
    "execve",
    "execvp",
    "execvpe",
)


@register
class ProcessDiscipline(Rule):
    """Process management belongs to ``repro.runtime`` — nowhere else.

    The supervised worker pool (``docs/RUNTIME.md``) is the one place in
    the library allowed to spawn, fork or exec: it owns the spawn context,
    heartbeats, timeouts, retry/quarantine policy and the journal that
    makes runs resumable.  A stray ``multiprocessing`` pool or
    ``subprocess`` call elsewhere escapes all of that — no supervision, no
    checkpointing, orphaned children on interrupt.  Library code that
    needs parallelism goes through the runtime; intentional exceptions
    (e.g. ``repro.obs`` shelling out to ``git`` for the manifest) carry an
    explicit ``# repro-lint: disable=RL108`` with the reason.

    Inside the exempt runtime dirs the rule still polices worker
    determinism: stdlib ``random`` calls and unseeded ``default_rng()``
    are banned, so retry jitter and trial work stay reproducible across
    resumes (same checks RL105 applies to fault scenarios).
    """

    code = "RL108"
    name = "process-discipline"
    severity = "error"
    default_paths = ("src/repro",)
    description = (
        "multiprocessing/subprocess/os.fork-family calls are confined to "
        "repro.runtime (the supervised worker pool); runtime code itself "
        "must draw randomness from seeded np.random Generators"
    )

    #: path components exempt from the spawn ban: the runtime owns processes.
    DEFAULT_EXEMPT_DIRS = ("runtime",)

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        exempt = tuple(self.option("exempt-dirs", self.DEFAULT_EXEMPT_DIRS))
        parts = ctx.path.replace("\\", "/").split("/")
        if any(d in parts for d in exempt):
            yield from self._check_worker_determinism(ctx)
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _PROCESS_MODULES:
                        yield self.flag(
                            ctx,
                            node,
                            f"import of {alias.name!r} outside repro.runtime; "
                            "process management must go through the "
                            "supervised worker pool",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _PROCESS_MODULES:
                    yield self.flag(
                        ctx,
                        node,
                        f"import from {node.module!r} outside repro.runtime; "
                        "process management must go through the supervised "
                        "worker pool",
                    )
            elif isinstance(node, ast.Call):
                callee = dotted_name(node.func)
                if callee is None:
                    continue
                base, _, attr = callee.rpartition(".")
                if base == "os" and attr in _OS_PROCESS_FNS:
                    yield self.flag(
                        ctx,
                        node,
                        f"{callee}() outside repro.runtime; forked/spawned "
                        "processes escape the supervisor's heartbeats, "
                        "timeouts and checkpoint journal",
                    )

    def _check_worker_determinism(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None:
                continue
            parts = callee.split(".")
            if parts[0] == "random" and len(parts) == 2:
                yield self.flag(
                    ctx,
                    node,
                    f"stdlib {callee}() in runtime code: worker results must "
                    "be reproducible across resumes; use "
                    "np.random.default_rng(seed)",
                )
            elif parts[-1] == "default_rng" and not node.args and not node.keywords:
                yield self.flag(
                    ctx,
                    node,
                    "default_rng() without a seed in runtime code breaks the "
                    "byte-identical resume contract; thread an explicit seed",
                )


#: Callee-name patterns that construct topologies / routing state directly.
STORE_CONSTRUCTOR_PATTERNS = (
    "TableRouter",
    "*_topology",
    "build_table3_topology",
    "build_reduced_topology",
    "build_distance_table",
    "min_bisection",
)

#: Dotted-prefix allowance: resolutions through the artifact store are the
#: sanctioned path (``store.table3_topology`` ends in ``_topology`` too).
_STORE_PREFIXES = ("store.", "repro.store.", "provider.")


@register
class StoreDiscipline(Rule):
    """Expensive construction must flow through the artifact store.

    Topology builders, ``TableRouter`` / distance-table construction and
    bisection estimation are cacheable artifacts (``docs/ARCHITECTURE.md``);
    calling them directly from experiment drivers, the simulators or the
    CLI silently forfeits the content-addressed cache — a warm run rebuilds
    every BFS table it was supposed to skip.  Those layers must resolve
    through :mod:`repro.store` (``store.topology``, ``store.table_router``,
    ``store.min_bisection``, ...).  Intentional direct construction (e.g. a
    router built on a degraded ephemeral graph) gets an explicit
    ``# repro-lint: disable=RL107`` with a reason.
    """

    code = "RL107"
    name = "store-discipline"
    severity = "error"
    default_paths = (
        "src/repro/experiments",
        "src/repro/sim",
        "src/repro/cli.py",
    )
    description = (
        "experiments/sim/cli must resolve topologies, routing tables and "
        "bisection cuts via repro.store, not by calling builders directly"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        constructors = tuple(self.option("constructors", STORE_CONSTRUCTOR_PATTERNS))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None:
                continue
            if callee.startswith(_STORE_PREFIXES):
                continue
            last = callee.rsplit(".", 1)[-1]
            if matches_any(callee, constructors) or matches_any(last, constructors):
                yield self.flag(
                    ctx,
                    node,
                    f"direct construction call {callee!r} bypasses the "
                    "artifact store; resolve it through repro.store so warm "
                    "runs reuse the cached artifact",
                )


#: Event-loop entry points: only the serve server module may call these.
_LOOP_CALL_PATTERNS = (
    "asyncio.run",
    "asyncio.new_event_loop",
    "asyncio.get_event_loop",
    "asyncio.set_event_loop",
    "*.run_until_complete",
    "*.run_forever",
)

#: ``from asyncio import X`` names that create/fetch event loops.
_LOOP_IMPORT_NAMES = ("run", "new_event_loop", "get_event_loop", "set_event_loop")

#: Calls that block the event loop: store resolution (BFS builds, disk
#: I/O), raw table construction, shard loading, synchronous sleeps.
_BLOCKING_IN_ASYNC_PATTERNS = (
    "store.*",
    "repro.store.*",
    "build_distance_table",
    "bfs_distances",
    "*registry.load",
    "*.warm",
    "time.sleep",
)


@register
class ServeDiscipline(Rule):
    """The serving layer's two structural invariants (``docs/SERVING.md``).

    1. **Event-loop confinement** — only ``repro.serve.server`` may create
       or fetch an asyncio event loop (``asyncio.run``,
       ``new_event_loop``, ``run_until_complete``, ...).  Everything else
       in the library stays synchronous so it is callable from any
       context: the engine, client, bench, experiments, the CLI.
    2. **No blocking calls in async handlers** — inside an ``async def``
       in the serve package, store resolution (``store.*``), raw table
       builds (``build_distance_table`` / ``bfs_distances``), shard
       loading (``*registry.load``, ``*.warm``) and ``time.sleep`` are
       forbidden: tables are resolved on the synchronous startup/warm
       path, never while the loop should be answering queries.
    """

    code = "RL112"
    name = "serve-discipline"
    severity = "error"
    default_paths = ("src/repro",)
    description = (
        "event-loop creation is confined to repro.serve.server, and async "
        "handlers in the serve package must not block on store/BFS/sleep "
        "calls (tables load on the sync startup path)"
    )

    #: The one module allowed to own an event loop.
    DEFAULT_LOOP_OWNER = "src/repro/serve/server.py"

    #: Path components that mark serve-package modules (part 2 scope).
    DEFAULT_SERVE_DIRS = ("serve",)

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        path = ctx.path.replace("\\", "/")
        owner = self.option("loop-owner", self.DEFAULT_LOOP_OWNER)
        if not (path == owner or path.endswith("/" + owner)):
            yield from self._check_loop_confinement(ctx)
        serve_dirs = tuple(self.option("serve-dirs", self.DEFAULT_SERVE_DIRS))
        if any(d in path.split("/") for d in serve_dirs):
            yield from self._check_async_handlers(ctx)

    def _check_loop_confinement(self, ctx: ModuleContext) -> Iterator[Violation]:
        # Names bound by `from asyncio import run [as arun]`.
        bare: dict[str, str] = {}
        for node in ctx.tree.body:
            if isinstance(node, ast.ImportFrom) and node.module == "asyncio":
                for alias in node.names:
                    if alias.name in _LOOP_IMPORT_NAMES:
                        bare[alias.asname or alias.name] = alias.name
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None:
                continue
            offender = None
            if matches_any(callee, _LOOP_CALL_PATTERNS):
                offender = callee
            elif callee in bare:
                offender = f"asyncio.{bare[callee]}"
            if offender is not None:
                yield self.flag(
                    ctx,
                    node,
                    f"event-loop call {offender}() outside repro.serve.server; "
                    "the serving front end owns the loop — keep this module "
                    "synchronous",
                )

    def _check_async_handlers(self, ctx: ModuleContext) -> Iterator[Violation]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                callee = dotted_name(node.func)
                if callee is None:
                    continue
                if matches_any(callee, _BLOCKING_IN_ASYNC_PATTERNS):
                    yield self.flag(
                        ctx,
                        node,
                        f"blocking call {callee!r} inside async handler "
                        f"{fn.name!r}; resolve tables on the synchronous "
                        "startup/warm path, not in the event loop",
                    )


@register
class RetryDiscipline(Rule):
    """Retry loops belong to the reliability kit — nowhere else.

    An improvised ``while``/``for`` that catches an exception and sleeps
    before trying again has all the failure modes the kit exists to
    prevent: unseeded jitter (unreproducible load patterns, the same sin
    RL105 bans in fault scenarios), no deadline budget (unbounded hangs),
    no circuit breaker (thundering herds against a recovering server) and
    no retry accounting.  ``repro.serve.reliability`` packages all four;
    the supervised runtime pool carries its own seeded backoff.  Anywhere
    else, a loop that contains an ``except`` handler must not call
    ``time.sleep``, the stdlib ``random`` module, or an unseeded
    ``default_rng()`` — route the retry through
    :class:`~repro.serve.reliability.RetryingClient` (or the runtime's
    retry policy) instead.
    """

    code = "RL113"
    name = "retry-discipline"
    severity = "error"
    default_paths = ("src/repro",)
    description = (
        "ad-hoc retry loops (sleep or unseeded jitter inside a loop that "
        "catches exceptions) are confined to repro.serve.reliability and "
        "the supervised runtime"
    )

    #: Paths exempt from the ban: the sanctioned retry implementations.
    DEFAULT_EXEMPT_PATHS = ("src/repro/serve/reliability.py", "src/repro/runtime")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        path = ctx.path.replace("\\", "/")
        exempt = tuple(self.option("exempt-paths", self.DEFAULT_EXEMPT_PATHS))
        for p in exempt:
            if (
                path == p
                or path.endswith("/" + p)
                or path.startswith(p + "/")
                or "/" + p + "/" in path
            ):
                return
        flagged: set[int] = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.While, ast.For)):
                continue
            if not any(
                isinstance(sub, ast.ExceptHandler) for sub in ast.walk(loop)
            ):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call) or id(node) in flagged:
                    continue
                callee = dotted_name(node.func)
                if callee is None:
                    continue
                parts = callee.split(".")
                if callee == "time.sleep" or parts[-1] == "sleep" and parts[0] == "time":
                    flagged.add(id(node))
                    yield self.flag(
                        ctx,
                        node,
                        "ad-hoc retry loop: time.sleep inside a loop that "
                        "catches exceptions; use the reliability kit's "
                        "seeded BackoffPolicy/RetryingClient",
                    )
                elif parts[0] == "random" and len(parts) == 2:
                    flagged.add(id(node))
                    yield self.flag(
                        ctx,
                        node,
                        f"stdlib {callee}() as retry jitter is unseeded and "
                        "unreproducible; the reliability kit draws jitter "
                        "from a seeded np.random Generator",
                    )
                elif (
                    parts[-1] == "default_rng"
                    and not node.args
                    and not node.keywords
                ):
                    flagged.add(id(node))
                    yield self.flag(
                        ctx,
                        node,
                        "default_rng() without a seed in a retry loop makes "
                        "the retry timeline unreproducible; thread an "
                        "explicit seed through",
                    )


#: ``PacketArrays`` column names — an attribute chain touching one of
#: these inside a loop iterable marks the loop as per-packet.
_PACKET_COLUMNS = (
    "src",
    "dest",
    "router",
    "vc",
    "in_link",
    "intermediate",
    "birth",
    "hops",
    "retries",
    "enq",
)


@register
class HotLoopDiscipline(Rule):
    """Hot-loop discipline for the SoA packet kernels.

    ``repro.sim.packet.kernel`` exists so the per-cycle packet math runs
    as whole-batch NumPy passes; the perf trajectory guarded by
    ``repro bench packet`` depends on it staying that way.  Two regression
    shapes are banned:

    1. **Per-element loops over packet arrays** — a ``for`` loop (or
       comprehension) whose iterable reaches a :class:`PacketArrays`
       column (``src``/``dest``/``router``/...), including via
       ``range(len(col))``, ``zip(col, ...)``, ``enumerate(col)`` or
       ``col.tolist()``.  Each such loop reintroduces the per-packet
       Python interpreter cost the SoA refactor removed — gather, mask
       and scatter the whole batch instead.
    2. **Object-per-packet state** — any reference to a ``_Packet``-style
       class (the reference engine's per-packet objects).  Kernel code
       operates on columns keyed by packet slot; attribute-chasing packet
       objects must stay confined to the pinned scalar reference.
    """

    code = "RL114"
    name = "hot-loop-discipline"
    severity = "error"
    default_paths = ("src/repro/sim/packet/kernel.py",)
    description = (
        "SoA packet kernels must stay batched: no per-element Python "
        "loops over packet columns and no _Packet-style object state"
    )

    #: Class-name patterns treated as object-per-packet state.
    DEFAULT_PACKET_CLASSES = ("_Packet", "Packet")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        columns = tuple(self.option("packet-columns", _PACKET_COLUMNS))
        classes = tuple(
            self.option("packet-classes", self.DEFAULT_PACKET_CLASSES)
        )
        flagged: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                col = self._column_in(node.iter, columns)
                if col is not None:
                    yield self.flag(
                        ctx,
                        node,
                        f"per-element for loop over packet column {col!r}; "
                        "kernel passes must be whole-batch NumPy "
                        "(gather/mask/scatter), not per-packet Python",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    col = self._column_in(gen.iter, columns)
                    if col is not None:
                        yield self.flag(
                            ctx,
                            node,
                            f"per-element comprehension over packet column "
                            f"{col!r}; kernel passes must be whole-batch "
                            "NumPy, not per-packet Python",
                        )
                        break
            elif isinstance(node, (ast.Name, ast.Attribute)):
                if id(node) in flagged:
                    continue
                name = dotted_name(node)
                if name is None:
                    continue
                leaf = name.rsplit(".", 1)[-1]
                if leaf in classes:
                    for sub in ast.walk(node):
                        flagged.add(id(sub))
                    yield self.flag(
                        ctx,
                        node,
                        f"object-per-packet class {leaf!r} referenced in a "
                        "batched kernel; per-packet objects are confined "
                        "to the scalar reference engine",
                    )

    @staticmethod
    def _column_in(iter_node: ast.AST, columns: tuple[str, ...]) -> str | None:
        """The first packet-column attribute reached by a loop iterable."""
        for sub in ast.walk(iter_node):
            if isinstance(sub, ast.Attribute) and sub.attr in columns:
                return sub.attr
        return None


#: ``os``-level mutations that decide crash durability; outside the
#: sanctioned helpers each is a hand-rolled commit protocol.
_DURABILITY_OS_FNS = ("replace", "rename", "fsync", "fdatasync")

#: Raw temp-file factories (the O_EXCL temp + rename protocol lives in
#: ``repro.faults.io.DiskIo.exclusive_create``).
_DURABILITY_TEMP_FNS = ("mkstemp", "mktemp", "NamedTemporaryFile")

#: ``pathlib`` one-shot writers: atomic-looking, durable-on-crash never.
_PATH_WRITER_ATTRS = ("write_text", "write_bytes")


@register
class DurabilityDiscipline(Rule):
    """Raw write-path OS calls are confined to the sanctioned helpers.

    The durability layer has exactly four blessed write paths — the
    :class:`repro.faults.io.DiskIo` seam, ``ArtifactStore._atomic_write``
    built on it, ``Journal.append`` and ``atomic_write_text`` — and the
    crash-point explorer proves *those* recoverable at every operation
    boundary.  A raw ``open(..., "w")``, ``os.replace``, ``os.fsync`` or
    ``Path.write_text`` inside ``repro.store``/``repro.runtime`` is a
    write the explorer cannot see and fault tests cannot reach: it
    silently re-opens the torn-write/power-loss hole PR 10 closed.
    Genuinely read-only opens (``"r"``/``"rb"``) are fine; anything that
    must bypass the seam carries ``# repro-lint: disable=RL115`` with a
    reason.
    """

    code = "RL115"
    name = "durability-discipline"
    severity = "error"
    default_paths = ("src/repro/store", "src/repro/runtime")
    description = (
        "raw write-mode open/os.replace/os.fsync/Path.write_* in the "
        "durability layer; write through the repro.faults.io seam or the "
        "sanctioned helpers (_atomic_write, Journal.append, "
        "atomic_write_text) so crash-point exploration covers it"
    )

    @staticmethod
    def _mode_of(node: ast.Call) -> str | None:
        """The statically-known file mode of an ``open``-style call
        (``None`` = dynamic, treated as a write)."""
        for kw in node.keywords:
            if kw.arg == "mode":
                if isinstance(kw.value, ast.Constant) and isinstance(
                    kw.value.value, str
                ):
                    return kw.value.value
                return None
        if len(node.args) >= 2:
            arg = node.args[1]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
            return None
        return "r"

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        # Names bound by `from os import replace [as rp]` / `from tempfile
        # import mkstemp` — aliasing must not dodge the rule.
        bare: dict[str, str] = {}
        for node in ctx.tree.body:
            if not isinstance(node, ast.ImportFrom):
                continue
            if node.module == "os":
                for alias in node.names:
                    if alias.name in _DURABILITY_OS_FNS:
                        bare[alias.asname or alias.name] = f"os.{alias.name}"
            elif node.module == "tempfile":
                for alias in node.names:
                    if alias.name in _DURABILITY_TEMP_FNS:
                        bare[alias.asname or alias.name] = (
                            f"tempfile.{alias.name}"
                        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None:
                continue
            leaf = callee.rsplit(".", 1)[-1]
            offender: str | None = None
            if callee in ("open", "os.fdopen"):
                mode = self._mode_of(node)
                if mode is None or any(c in mode for c in "wax+"):
                    offender = (
                        f"{callee}(..., {mode!r})" if mode is not None
                        else f"{callee}(...) with a dynamic mode"
                    )
            elif callee in bare:
                offender = f"{bare[callee]}()"
            elif "." in callee:
                base = callee.rsplit(".", 1)[0]
                if base == "os" and leaf in _DURABILITY_OS_FNS:
                    offender = f"{callee}()"
                elif base == "tempfile" and leaf in _DURABILITY_TEMP_FNS:
                    offender = f"{callee}()"
                elif leaf in _PATH_WRITER_ATTRS:
                    offender = f"{callee}()"
            if offender is not None:
                yield self.flag(
                    ctx,
                    node,
                    f"raw durability-affecting call {offender} outside the "
                    "sanctioned helpers; route it through the "
                    "repro.faults.io seam (DiskIo/_atomic_write/"
                    "Journal.append/atomic_write_text) so crash-point "
                    "exploration and fault injection cover it",
                )
