"""Domain contract rules (RL1xx).

The constructions in this repository are only defined for particular
number-theoretic parameters: :math:`ER_q` needs a prime power ``q``
(Theorem 1), Paley supernodes a prime power ``q ≡ 1 (mod 4)`` (Theorem 5),
Inductive-Quad a degree ``d' ≡ 0,3 (mod 4)`` (Proposition 2), and the
PolarStar radix split must satisfy Eq. 1.  A constructor that silently
accepts a bad parameter builds a *wrong graph* — no exception, no test
failure, just an object violating Property R/R*/R_1 downstream.  These
rules force every graph/topology factory to validate-or-delegate.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import (
    ModuleContext,
    Rule,
    Violation,
    dotted_name,
    matches_any,
    register,
)

__all__ = ["ContractValidation"]

#: Function-name patterns treated as graph/topology factories.
FACTORY_PATTERNS = (
    "*_graph",
    "*_supernode",
    "*_topology",
    "build_*",
    "inductive_quad",
    "star_product",
)

#: Callee-name patterns that count as precondition validation.
VALIDATOR_PATTERNS = (
    "is_prime_power",
    "prime_power_root",
    "validate*",
    "_validate*",
    "check_*",
    "_check*",
    "require_*",
)

#: Constructor method names checked inside classes.
CONSTRUCTOR_METHODS = ("__init__", "__post_init__")


def _calls(node: ast.AST) -> Iterator[str]:
    """Names of every function called anywhere inside *node* (last attribute
    segment for dotted calls, so ``repro.fields.is_prime_power`` → the
    pattern match sees both the full chain and ``is_prime_power``)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            full = dotted_name(sub.func)
            if full is not None:
                yield full
                if "." in full:
                    yield full.rsplit(".", 1)[1]


def _validates(fn: ast.FunctionDef, factories: tuple[str, ...], validators: tuple[str, ...]) -> bool:
    for sub in ast.walk(fn):
        if isinstance(sub, ast.Raise):
            return True
    for callee in _calls(fn):
        if matches_any(callee, validators) or matches_any(callee, factories):
            return True
    return False


@register
class ContractValidation(Rule):
    """Graph/topology factories must validate their preconditions.

    A factory (function matching ``FACTORY_PATTERNS``, or an ``__init__`` /
    ``__post_init__`` in a contract module) passes if its body contains a
    ``raise`` statement, a call to a validator (``is_prime_power``,
    ``validate_*``, ``check_*``, ...), or a delegation to another factory
    that does.  ``assert`` does **not** count: it disappears under
    ``python -O`` and a production-scale deployment will run optimized.
    """

    code = "RL101"
    name = "contract-validation"
    severity = "error"
    default_paths = (
        "src/repro/graphs",
        "src/repro/topologies",
        "src/repro/core",
    )
    description = (
        "graph/topology constructors must validate number-theoretic "
        "preconditions (prime-power q, degree residues, radix split) or "
        "delegate to a factory that does"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        factories = tuple(self.option("factories", FACTORY_PATTERNS))
        validators = tuple(self.option("validators", VALIDATOR_PATTERNS))

        for node in ctx.top_level(ast.FunctionDef):
            if node.name.startswith("_"):
                continue
            if not matches_any(node.name, factories):
                continue
            if not _validates(node, factories, validators):
                yield self.flag(
                    ctx,
                    node,
                    f"factory {node.name!r} builds a graph/topology without "
                    "validating its preconditions (no raise, validator call, "
                    "or factory delegation)",
                )

        for cls in ctx.top_level(ast.ClassDef):
            for item in cls.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if item.name not in CONSTRUCTOR_METHODS:
                    continue
                if not _validates(item, factories, validators):
                    yield self.flag(
                        ctx,
                        item,
                        f"{cls.name}.{item.name} constructs a contract object "
                        "without validating its inputs (no raise, validator "
                        "call, or factory delegation)",
                    )
