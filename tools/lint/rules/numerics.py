"""Numerics and determinism rules (RL2xx).

The simulation and routing hot paths are NumPy-array code whose dtypes are
load-bearing (int64 vertex ids vs float64 loads), and every experiment must
be bit-reproducible from a seed — the benchmark suite diffs result files
verbatim.  These rules catch the Python footguns that silently break either
property.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import ModuleContext, Rule, Violation, dotted_name, register

__all__ = [
    "MutableDefaultArg",
    "BroadExcept",
    "ImplicitDtype",
    "LegacyRandom",
    "SeedlessRng",
    "RawWallClock",
]

_MUTABLE_NODES = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = ("list", "dict", "set", "bytearray", "defaultdict", "Counter")


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_NODES):
        return True
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        return callee is not None and callee.rsplit(".", 1)[-1] in _MUTABLE_CALLS
    return False


@register
class MutableDefaultArg(Rule):
    """Mutable default argument values are shared across calls."""

    code = "RL201"
    name = "mutable-default-arg"
    severity = "error"
    description = (
        "default argument values are evaluated once; a mutable default "
        "([] / {} / set() / ...) is shared state across every call"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                if _is_mutable_default(default):
                    yield self.flag(
                        ctx,
                        default,
                        f"mutable default argument in {node.name!r}; use None "
                        "and construct inside the function",
                    )


_LOGGING_METHODS = {
    "debug",
    "info",
    "warning",
    "warn",
    "error",
    "exception",
    "critical",
    "log",
}
_BROAD_TYPES = ("Exception", "BaseException")


def _handler_is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    for t in types:
        name = dotted_name(t)
        if name is not None and name.rsplit(".", 1)[-1] in _BROAD_TYPES:
            return True
    return False


def _handler_accounts_for_error(handler: ast.ExceptHandler) -> bool:
    for sub in ast.walk(handler):
        if isinstance(sub, ast.Raise):
            return True
        if isinstance(sub, ast.Call):
            callee = dotted_name(sub.func)
            if callee is not None and callee.rsplit(".", 1)[-1] in _LOGGING_METHODS:
                return True
        # `except Exception as exc:` followed by a real use of `exc`
        # (collected into a report, formatted into a message, ...) accounts
        # for the error; discarding the binding does not.
        if (
            handler.name is not None
            and isinstance(sub, ast.Name)
            and sub.id == handler.name
            and isinstance(sub.ctx, ast.Load)
        ):
            return True
    return False


@register
class BroadExcept(Rule):
    """Bare / ``except Exception`` without re-raise or logging.

    The spectral-bisection fallback bug: a broad handler that silently
    swaps in a different algorithm makes results quietly wrong instead of
    loudly broken.  Catch the specific exceptions, or at minimum log that
    the fallback path was taken.
    """

    code = "RL202"
    name = "broad-except"
    severity = "error"
    description = (
        "bare `except:` or `except Exception:` must re-raise or log; "
        "silent fallbacks corrupt results without failing tests"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _handler_is_broad(node) and not _handler_accounts_for_error(node):
                label = "bare except" if node.type is None else "broad except"
                yield self.flag(
                    ctx,
                    node,
                    f"{label} swallows errors silently; catch specific "
                    "exceptions, re-raise, or log the fallback",
                )


_NUMPY_ALIASES = ("np", "numpy")
_DEFAULT_ALLOCATORS = ("zeros", "ones", "empty", "full")


@register
class ImplicitDtype(Rule):
    """NumPy allocations in hot paths must pin their dtype.

    ``np.zeros(n)`` allocates float64; vertex ids, counts and credits in the
    simulators must be integral, and a silent float array both doubles
    memory traffic and hides truncation bugs.  Scoped to the simulation and
    routing hot paths by default.
    """

    code = "RL203"
    name = "implicit-dtype"
    severity = "error"
    default_paths = ("src/repro/sim", "src/repro/routing")
    description = (
        "np.zeros/ones/empty/full in sim/routing hot paths must pass an "
        "explicit dtype"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        allocators = tuple(self.option("functions", _DEFAULT_ALLOCATORS))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None or "." not in callee:
                continue
            base, _, attr = callee.rpartition(".")
            if base not in _NUMPY_ALIASES or attr not in allocators:
                continue
            # dtype may be the positional argument after the shape/fill.
            positional_dtype = {"zeros": 2, "ones": 2, "empty": 2, "full": 3}
            has_dtype = any(kw.arg == "dtype" for kw in node.keywords) or len(
                node.args
            ) >= positional_dtype.get(attr, 2)
            if not has_dtype:
                yield self.flag(
                    ctx,
                    node,
                    f"np.{attr}(...) without dtype allocates float64 by "
                    "default; pin the dtype in hot-path array code",
                )


#: numpy.random attributes that are fine: the Generator API.
_MODERN_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


@register
class LegacyRandom(Rule):
    """Module-level ``np.random.*`` calls break seed discipline.

    Legacy calls (``np.random.seed`` / ``rand`` / ``choice`` ...) mutate
    hidden global state, so two experiments in one process perturb each
    other's streams.  Construct ``np.random.default_rng(seed)`` and pass
    the ``Generator`` down instead.
    """

    code = "RL204"
    name = "legacy-random"
    severity = "error"
    description = (
        "np.random.<fn>() uses hidden global RNG state; pass a "
        "np.random.Generator built from an explicit seed"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None:
                continue
            parts = callee.split(".")
            if (
                len(parts) == 3
                and parts[0] in _NUMPY_ALIASES
                and parts[1] == "random"
                and parts[2] not in _MODERN_RANDOM
            ):
                yield self.flag(
                    ctx,
                    node,
                    f"legacy global-state RNG call {callee}(); use a passed "
                    "np.random.Generator (np.random.default_rng(seed))",
                )


@register
class SeedlessRng(Rule):
    """``default_rng()`` without a seed is nondeterministic.

    Every figure in the reproduction must be rebuildable bit-for-bit; an
    unseeded generator makes the run unrepeatable.
    """

    code = "RL205"
    name = "seedless-rng"
    severity = "error"
    description = (
        "np.random.default_rng() called without a seed; results become "
        "unreproducible"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None or callee.rsplit(".", 1)[-1] != "default_rng":
                continue
            if not node.args and not node.keywords:
                yield self.flag(
                    ctx,
                    node,
                    "default_rng() without a seed is nondeterministic; pass "
                    "an explicit seed (or a SeedSequence)",
                )


#: ``time`` module functions that read the wall clock (ns variants too).
_WALL_CLOCK_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
    }
)


@register
class RawWallClock(Rule):
    """Raw clock reads in library code bypass the profiling substrate.

    ``repro.obs.tracing`` owns the wall clock: phases timed through
    ``obs.span("phase")`` aggregate into the exported profile tree, and a
    disabled observability session keeps hot paths free of timing syscalls.
    A stray ``time.perf_counter()`` produces numbers nobody can find in the
    metrics artifact — and tempts ad-hoc printing.  Scoped to ``src/repro``
    with the ``obs`` package itself exempt (it is the one legitimate clock
    consumer).
    """

    code = "RL206"
    name = "raw-wall-clock"
    severity = "error"
    default_paths = ("src/repro",)
    description = (
        "raw time.time()/perf_counter()/monotonic() in library code; time "
        "phases with repro.obs.span so profiles land in the metrics export"
    )

    #: path components exempt by default: the obs package owns the clock.
    DEFAULT_EXEMPT_DIRS = ("obs",)

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        exempt = tuple(self.option("exempt-dirs", self.DEFAULT_EXEMPT_DIRS))
        parts = ctx.path.replace("\\", "/").split("/")
        if any(d in parts for d in exempt):
            return
        # Names bound by `from time import perf_counter [as pc]`.
        bare: dict[str, str] = {}
        for node in ctx.tree.body:
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_CLOCK_FNS:
                        bare[alias.asname or alias.name] = alias.name
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None:
                continue
            offender = None
            if "." in callee:
                base, _, attr = callee.rpartition(".")
                if base == "time" and attr in _WALL_CLOCK_FNS:
                    offender = callee
            elif callee in bare:
                offender = f"time.{bare[callee]}"
            if offender is not None:
                yield self.flag(
                    ctx,
                    node,
                    f"raw wall-clock call {offender}(); wrap the phase in "
                    "repro.obs.span(...) instead (only repro/obs may read "
                    "the clock directly)",
                )
