"""Public-API hygiene rules (RL3xx).

The package is star-imported by experiment drivers and the related-work
extensions keep adding supernodes and routing schemes; a module without an
explicit ``__all__`` or docstrings has no stable surface to extend against.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import ModuleContext, Rule, Violation, register

__all__ = [
    "MissingAll",
    "StaleAll",
    "UndocumentedPublic",
    "AssertInLib",
]


def _find_all_assignment(ctx: ModuleContext) -> ast.expr | None:
    """The value node of a top-level ``__all__ = ...`` (or annotated form)."""
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return node.value
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == "__all__"
                and node.value is not None
            ):
                return node.value
    return None


def _top_level_bindings(ctx: ModuleContext) -> set[str]:
    """Every name bound at module top level (defs, classes, assigns, imports)."""
    names: set[str] = set()
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
    return names


@register
class MissingAll(Rule):
    """Public modules must declare ``__all__``.

    An explicit export list is the module's API contract: it keeps
    ``from m import *`` bounded, makes the docs generator authoritative,
    and turns accidental exports into review-visible diffs.
    """

    code = "RL301"
    name = "missing-all"
    severity = "error"
    default_paths = ("src/repro",)
    description = "public library modules must declare an explicit __all__"

    #: module file names exempt by default (script entry points).
    DEFAULT_EXEMPT = ("__main__.py",)

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        filename = ctx.path.rsplit("/", 1)[-1]
        exempt = tuple(self.option("exempt-files", self.DEFAULT_EXEMPT))
        if filename in exempt:
            return
        if filename.startswith("_") and filename != "__init__.py":
            return
        if _find_all_assignment(ctx) is None:
            yield self.flag(
                ctx,
                ctx.tree.body[0] if ctx.tree.body else ctx.tree,
                "public module does not declare __all__; list the intended "
                "API surface explicitly",
            )


@register
class StaleAll(Rule):
    """Every ``__all__`` entry must resolve to a top-level binding."""

    code = "RL302"
    name = "stale-all"
    severity = "error"
    description = (
        "__all__ must be a literal list/tuple of strings naming objects "
        "actually defined or imported in the module"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        value = _find_all_assignment(ctx)
        if value is None:
            return
        if not isinstance(value, (ast.List, ast.Tuple)):
            yield self.flag(
                ctx,
                value,
                "__all__ is not a literal list/tuple; repro-lint (and "
                "readers) cannot verify the export surface",
            )
            return
        bound = _top_level_bindings(ctx)
        for elt in value.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                yield self.flag(ctx, elt, "__all__ entries must be string literals")
                continue
            if elt.value not in bound:
                yield self.flag(
                    ctx,
                    elt,
                    f"__all__ exports {elt.value!r} which is not defined or "
                    "imported at module top level",
                )


@register
class UndocumentedPublic(Rule):
    """Public functions and classes need docstrings.

    Scoped to the experiment drivers by default: each one reproduces a
    specific figure/table and the docstring is where the paper reference
    (figure number, section) lives.
    """

    code = "RL303"
    name = "undocumented-public"
    severity = "error"
    default_paths = ("src/repro/experiments",)
    description = (
        "public functions/classes must carry a docstring naming what they "
        "compute (for experiments: the figure/table reproduced)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ctx.top_level(ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef):
            if node.name.startswith("_"):
                continue
            if ast.get_docstring(node) is None:
                kind = "class" if isinstance(node, ast.ClassDef) else "function"
                yield self.flag(
                    ctx,
                    node,
                    f"public {kind} {node.name!r} has no docstring",
                )


@register
class AssertInLib(Rule):
    """``assert`` in library code disappears under ``python -O``.

    The production target runs optimized; an invariant worth asserting in
    ``src/`` is worth a real ``raise``.  Tests and benchmarks (pytest
    asserts) are out of scope by construction.
    """

    code = "RL304"
    name = "assert-in-lib"
    severity = "error"
    default_paths = ("src/repro",)
    description = (
        "assert statements are stripped under python -O; library "
        "invariants must raise explicitly"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.flag(
                    ctx,
                    node,
                    "assert in library code is removed by python -O; raise "
                    "ValueError/RuntimeError instead",
                )
