"""repro-lint rule catalog.

Importing this package registers every rule.  Codes are grouped by family:

* ``RL1xx`` — domain contract rules (graph/topology preconditions);
* ``RL2xx`` — numerics and determinism rules;
* ``RL3xx`` — public-API hygiene rules.
"""

from tools.lint.rules import contracts, hygiene, numerics

__all__ = ["contracts", "hygiene", "numerics"]
