"""Configuration loading for repro-lint.

Configuration lives in ``[tool.repro-lint]`` of the repo's
``pyproject.toml``::

    [tool.repro-lint]
    exclude = ["src/repro.egg-info"]

    [tool.repro-lint.rules.RL203]
    paths = ["src/repro/sim", "src/repro/routing"]
    severity = "error"
    functions = ["zeros", "ones", "empty", "full"]

Every rule table accepts ``enabled`` (bool), ``severity`` (``error`` /
``warning``) and ``paths`` (list of path prefixes the rule is restricted
to); remaining keys are rule-specific options handed to the rule instance.
Rules may also be addressed by slug (``rules.implicit-dtype``).

Malformed configuration raises :class:`ConfigError` with a message naming
the offending key — never a bare traceback from deep inside a rule.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Any

from tools.lint.core import SEVERITIES, all_rules

__all__ = ["ConfigError", "LintConfig", "load_config", "path_in_scope"]

#: Directories never linted regardless of configuration.
ALWAYS_EXCLUDE = (".git", "__pycache__", ".github", ".repro-lint-cache")

#: Keys recognized at the ``[tool.repro-lint]`` top level.
_TOP_LEVEL_KEYS = ("exclude", "rules")

#: Keys every rule table understands (anything else is a rule-specific
#: option — allowed, but its value must be a plain scalar or string list).
_COMMON_RULE_KEYS = ("enabled", "severity", "paths")


class ConfigError(ValueError):
    """A ``[tool.repro-lint]`` table failed validation."""


@dataclass
class LintConfig:
    """Materialized ``[tool.repro-lint]`` settings."""

    root: Path
    exclude: tuple[str, ...] = ()
    rule_options: dict[str, dict] = field(default_factory=dict)

    def options_for(self, code: str, slug: str) -> dict:
        merged: dict = {}
        merged.update(self.rule_options.get(code, {}))
        merged.update(self.rule_options.get(slug, {}))
        return merged


def _known_rule_ids() -> set[str]:
    """Codes and slugs of every rule: per-file catalog plus program passes."""
    known = {cls.code for cls in all_rules()} | {cls.name for cls in all_rules()}
    from tools.lint.program.base import all_program_rules

    known |= {cls.code for cls in all_program_rules()}
    known |= {cls.name for cls in all_program_rules()}
    return known


def _type_name(value: Any) -> str:
    return {
        str: "str",
        bool: "bool",
        int: "int",
        float: "float",
        list: "list",
        dict: "table",
    }.get(type(value), type(value).__name__)


def _require_str_list(value: Any, where: str) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise ConfigError(
            f"[tool.repro-lint] key {where!r}: expected a list of strings, "
            f"got {_type_name(value)}"
        )
    return tuple(value)


def _validate_rule_table(key: str, table: Any) -> dict:
    if not isinstance(table, dict):
        raise ConfigError(
            f"[tool.repro-lint.rules] key {key!r}: expected a table, "
            f"got {_type_name(table)}"
        )
    out: dict = {}
    for opt, value in table.items():
        where = f"rules.{key}.{opt}"
        if opt == "enabled":
            if not isinstance(value, bool):
                raise ConfigError(
                    f"[tool.repro-lint] key {where!r}: expected bool, "
                    f"got {_type_name(value)}"
                )
        elif opt == "severity":
            if not isinstance(value, str) or value not in SEVERITIES:
                raise ConfigError(
                    f"[tool.repro-lint] key {where!r}: expected one of "
                    f"{'/'.join(SEVERITIES)}, got {value!r}"
                )
        elif opt == "paths":
            value = list(_require_str_list(value, where))
        elif isinstance(value, dict):
            # A nested table under a rule is always a typo (e.g. a
            # mis-indented [tool.repro-lint.rules.RL203.paths] header).
            raise ConfigError(
                f"[tool.repro-lint] key {where!r}: rule options must be "
                "scalars or string lists, not tables"
            )
        elif isinstance(value, list):
            value = list(_require_str_list(value, where))
        elif not isinstance(value, (str, bool, int, float)):
            raise ConfigError(
                f"[tool.repro-lint] key {where!r}: unsupported value type "
                f"{_type_name(value)}"
            )
        out[opt] = value
    return out


def load_config(root: Path) -> LintConfig:
    """Read and validate ``[tool.repro-lint]`` from ``<root>/pyproject.toml``."""
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return LintConfig(root=root)
    with pyproject.open("rb") as fh:
        data = tomllib.load(fh)
    section = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(section, dict):
        raise ConfigError(
            f"[tool.repro-lint]: expected a table, got {_type_name(section)}"
        )
    for key in section:
        if key not in _TOP_LEVEL_KEYS:
            raise ConfigError(
                f"[tool.repro-lint] unknown key {key!r}; expected one of "
                f"{', '.join(_TOP_LEVEL_KEYS)}"
            )
    exclude = _require_str_list(section.get("exclude", []), "exclude")
    rule_tables = section.get("rules", {})
    if not isinstance(rule_tables, dict):
        raise ConfigError(
            f"[tool.repro-lint] key 'rules': expected a table of rule "
            f"tables, got {_type_name(rule_tables)}"
        )
    known = _known_rule_ids()
    rule_options: dict[str, dict] = {}
    for key, table in rule_tables.items():
        if key not in known:
            raise ConfigError(
                f"[tool.repro-lint.rules] refers to unknown rule {key!r}"
            )
        rule_options[key] = _validate_rule_table(key, table)
    return LintConfig(root=root, exclude=exclude, rule_options=rule_options)


def path_in_scope(rel_path: str, prefixes: tuple[str, ...] | None) -> bool:
    """Is *rel_path* (POSIX, repo-relative) under any of *prefixes*?

    ``None`` means unrestricted.  A prefix matches whole path components:
    ``src/repro/sim`` covers ``src/repro/sim/flow.py`` but not
    ``src/repro/simx.py``.
    """
    if prefixes is None:
        return True
    parts = PurePosixPath(rel_path).parts
    for prefix in prefixes:
        p = PurePosixPath(prefix).parts
        if parts[: len(p)] == p:
            return True
    return False
