"""Configuration loading for repro-lint.

Configuration lives in ``[tool.repro-lint]`` of the repo's
``pyproject.toml``::

    [tool.repro-lint]
    exclude = ["src/repro.egg-info"]

    [tool.repro-lint.rules.RL203]
    paths = ["src/repro/sim", "src/repro/routing"]
    severity = "error"
    functions = ["zeros", "ones", "empty", "full"]

Every rule table accepts ``enabled`` (bool), ``severity`` (``error`` /
``warning``) and ``paths`` (list of path prefixes the rule is restricted
to); remaining keys are rule-specific options handed to the rule instance.
Rules may also be addressed by slug (``rules.implicit-dtype``).
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from tools.lint.core import SEVERITIES, all_rules

__all__ = ["LintConfig", "load_config", "path_in_scope"]

#: Directories never linted regardless of configuration.
ALWAYS_EXCLUDE = (".git", "__pycache__", ".github")


@dataclass
class LintConfig:
    """Materialized ``[tool.repro-lint]`` settings."""

    root: Path
    exclude: tuple[str, ...] = ()
    rule_options: dict[str, dict] = field(default_factory=dict)

    def options_for(self, code: str, slug: str) -> dict:
        merged: dict = {}
        merged.update(self.rule_options.get(code, {}))
        merged.update(self.rule_options.get(slug, {}))
        return merged


def load_config(root: Path) -> LintConfig:
    """Read ``[tool.repro-lint]`` from ``<root>/pyproject.toml`` (if any)."""
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return LintConfig(root=root)
    with pyproject.open("rb") as fh:
        data = tomllib.load(fh)
    section = data.get("tool", {}).get("repro-lint", {})
    rule_tables = section.get("rules", {})
    known = {cls.code for cls in all_rules()} | {cls.name for cls in all_rules()}
    for key, table in rule_tables.items():
        if key not in known:
            raise ValueError(f"[tool.repro-lint.rules] refers to unknown rule {key!r}")
        sev = table.get("severity")
        if sev is not None and sev not in SEVERITIES:
            raise ValueError(f"rule {key}: unknown severity {sev!r}")
    return LintConfig(
        root=root,
        exclude=tuple(section.get("exclude", ())),
        rule_options={k: dict(v) for k, v in rule_tables.items()},
    )


def path_in_scope(rel_path: str, prefixes: tuple[str, ...] | None) -> bool:
    """Is *rel_path* (POSIX, repo-relative) under any of *prefixes*?

    ``None`` means unrestricted.  A prefix matches whole path components:
    ``src/repro/sim`` covers ``src/repro/sim/flow.py`` but not
    ``src/repro/simx.py``.
    """
    if prefixes is None:
        return True
    parts = PurePosixPath(rel_path).parts
    for prefix in prefixes:
        p = PurePosixPath(prefix).parts
        if parts[: len(p)] == p:
            return True
    return False
