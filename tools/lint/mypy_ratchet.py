"""Monotone mypy strictness ratchet.

Runs mypy over the configured files and compares the error count against
the committed baseline (``tools/lint/mypy_baseline.json``).  CI fails if
the count *increases* anywhere; decreases print a reminder to tighten the
baseline so strictness only ever ratchets down to zero.

Usage::

    python -m tools.lint.mypy_ratchet            # compare against baseline
    python -m tools.lint.mypy_ratchet --update   # rewrite the baseline

When mypy is not installed (the reproduction container ships without it),
the ratchet reports "skipped" and exits 0 — the gate is enforced wherever
mypy exists (CI), never silently wrong elsewhere.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess  # repro-lint: disable=RL108 -- dev tool, not library code
import sys
from pathlib import Path
from typing import Sequence

__all__ = ["parse_mypy_output", "compare_to_baseline", "main"]

BASELINE_PATH = Path(__file__).with_name("mypy_baseline.json")

_ERROR_RE = re.compile(r"^(?P<path>[^:\n]+):(?P<line>\d+):(?:\d+:)?\s*error:")


def parse_mypy_output(text: str) -> dict[str, int]:
    """Per-file error counts from mypy's normal-form output."""
    counts: dict[str, int] = {}
    for line in text.splitlines():
        m = _ERROR_RE.match(line)
        if m is not None:
            path = m.group("path").replace("\\", "/")
            counts[path] = counts.get(path, 0) + 1
    return counts


def compare_to_baseline(
    counts: dict[str, int], baseline: dict
) -> tuple[list[str], list[str]]:
    """(regressions, improvements) vs the committed baseline."""
    base_files: dict[str, int] = dict(baseline.get("by_file", {}))
    regressions: list[str] = []
    improvements: list[str] = []
    for path in sorted(set(counts) | set(base_files)):
        now = counts.get(path, 0)
        then = base_files.get(path, 0)
        if now > then:
            regressions.append(f"{path}: {then} -> {now} errors")
        elif now < then:
            improvements.append(f"{path}: {then} -> {now} errors")
    total_now = sum(counts.values())
    total_then = int(baseline.get("total", 0))
    if total_now > total_then and not regressions:
        regressions.append(f"total: {total_then} -> {total_now} errors")
    return regressions, improvements


def _run_mypy(root: Path) -> tuple[int, str] | None:
    try:
        import mypy  # noqa: F401
    except ImportError:
        return None
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary", "--no-color-output"],
        cwd=root,
        capture_output=True,
        text=True,
    )
    return proc.returncode, proc.stdout


def load_baseline(path: Path = BASELINE_PATH) -> dict:
    if not path.is_file():
        return {"total": 0, "by_file": {}}
    return json.loads(path.read_text(encoding="utf-8"))


def write_baseline(counts: dict[str, int], path: Path = BASELINE_PATH) -> None:
    payload = {
        "total": sum(counts.values()),
        "by_file": {k: counts[k] for k in sorted(counts)},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", "utf-8")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint.mypy_ratchet",
        description="compare mypy error counts against the committed baseline",
    )
    parser.add_argument(
        "--root", default=".", help="repo root holding pyproject.toml"
    )
    parser.add_argument(
        "--update", action="store_true", help="rewrite the baseline from this run"
    )
    args = parser.parse_args(argv)

    result = _run_mypy(Path(args.root))
    if result is None:
        print("mypy-ratchet: mypy not installed; skipped (gate enforced in CI)")
        return 0
    returncode, stdout = result
    counts = parse_mypy_output(stdout)

    if args.update:
        write_baseline(counts)
        print(
            f"mypy-ratchet: baseline updated "
            f"({sum(counts.values())} errors across {len(counts)} files)"
        )
        return 0

    baseline = load_baseline()
    regressions, improvements = compare_to_baseline(counts, baseline)
    if regressions:
        print("mypy-ratchet: FAIL — error counts may only decrease:")
        for line in regressions:
            print(f"  {line}")
        sys.stdout.write(stdout)
        return 1
    if improvements:
        print("mypy-ratchet: improved — tighten the baseline:")
        for line in improvements:
            print(f"  {line}")
        print("  (run `python -m tools.lint.mypy_ratchet --update` and commit)")
    total = sum(counts.values())
    print(f"mypy-ratchet: OK ({total} errors, baseline {baseline.get('total', 0)})")
    # mypy exiting nonzero is fine as long as the baseline covers it.
    return 0


if __name__ == "__main__":
    sys.exit(main())
