"""RL210: interprocedural determinism taint.

The runtime guarantees byte-identical resume and jobs-N == jobs-1 output;
both only hold if nothing on the path from a trial entry point to its
result record depends on wall clocks, unseeded RNGs, OS entropy or
filesystem iteration order.  This pass marks those *taint sources*,
propagates taint along the resolved call graph, and reports every trial
sink (``run_trial`` / ``plan_trials`` / ``merge_trials``) that can reach
one — with the call chain in the message so the fix site is obvious.

``repro.obs`` is exempt by design: it owns the clock, and its timing data
lands in the metrics sidecar, not in result payloads.  ``sorted(...)``
directly wrapping a globbing call neutralizes the iteration-order hazard.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from tools.lint.core import Violation

from tools.lint.program.base import ProgramRule, register_program
from tools.lint.program.callgraph import CallGraph, CallSite
from tools.lint.program.model import FunctionInfo, ProjectModel

__all__ = ["DeterminismTaint"]

#: Resolved callables that read the wall clock.
_WALL_CLOCK = frozenset(
    f"time.{fn}"
    for fn in (
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
        "thread_time", "thread_time_ns",
    )
)

#: Resolved callables that draw OS entropy / per-run identifiers.
_ENTROPY = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})

#: Resolved callables returning paths in filesystem iteration order.
_FS_ORDER = frozenset(
    {"glob.glob", "glob.iglob", "os.listdir", "os.scandir", "os.walk"}
)

#: Method names (receiver type unknown) returning fs-ordered iterables.
_FS_ORDER_METHODS = frozenset({"glob", "rglob", "iterdir"})

#: Wrappers that make iteration order irrelevant.
_ORDER_INSENSITIVE = frozenset({"sorted", "len", "sum", "min", "max", "any", "all"})


@dataclass
class _Taint:
    """Why a function is tainted: a source description plus a location."""

    description: str
    rel_path: str
    lineno: int
    chain: tuple[str, ...]  # function ids from the function down to the source


def _parent_map(fn_node: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(fn_node):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _sorted_wrapped(node: ast.Call, parents: dict[int, ast.AST]) -> bool:
    parent = parents.get(id(node))
    if isinstance(parent, ast.Starred):
        parent = parents.get(id(parent))
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id in _ORDER_INSENSITIVE
        and node in parent.args
    )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register_program
class DeterminismTaint(ProgramRule):
    """Trial sinks must be unreachable from nondeterministic sources."""

    code = "RL210"
    name = "determinism-taint"
    severity = "error"
    default_paths = ("src/repro",)
    description = (
        "interprocedural determinism taint: run_trial/plan_trials/"
        "merge_trials must not reach wall clocks, unseeded RNGs, OS "
        "entropy or filesystem-ordered iteration"
    )

    #: functions that feed trial results / journal records / --out artifacts.
    DEFAULT_SINKS = ("run_trial", "plan_trials", "merge_trials")
    #: modules whose internals are never treated as tainted.
    DEFAULT_EXEMPT_MODULES = ("repro.obs",)

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        sinks = tuple(self.option("sinks", self.DEFAULT_SINKS))
        exempt = tuple(self.option("exempt-modules", self.DEFAULT_EXEMPT_MODULES))
        memo: dict[str, _Taint | None] = {}

        def module_exempt(func_id: str) -> bool:
            return any(
                func_id == m or func_id.startswith(m + ".") for m in exempt
            )

        def direct_sources(fn: FunctionInfo) -> _Taint | None:
            mod = model.modules[fn.module]
            parents = _parent_map(fn.node)
            for site in graph.callees(fn.func_id):
                hit = self._classify_source(site, parents)
                if hit is not None:
                    return _Taint(hit, mod.rel_path, site.lineno, (fn.func_id,))
            for node in ast.walk(fn.node):
                target = None
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    target = node.iter
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                       ast.GeneratorExp)):
                    target = node.generators[0].iter
                if target is not None and _is_set_expr(target):
                    return _Taint(
                        "iteration over a set (order is hash-randomized "
                        "across processes)",
                        mod.rel_path,
                        node.lineno,
                        (fn.func_id,),
                    )
            return None

        def taint_of(func_id: str, stack: frozenset[str]) -> _Taint | None:
            if func_id in memo:
                return memo[func_id]
            if func_id in stack or module_exempt(func_id):
                return None
            fn = graph.functions.get(func_id)
            if fn is None:
                return None
            memo[func_id] = None  # cycle guard; refined below
            taint = direct_sources(fn)
            if taint is None:
                for site in graph.project_callees(func_id):
                    sub = taint_of(site.target.func_id, stack | {func_id})
                    if sub is not None:
                        taint = _Taint(
                            sub.description,
                            sub.rel_path,
                            sub.lineno,
                            (func_id, *sub.chain),
                        )
                        break
            memo[func_id] = taint
            return taint

        for func_id in sorted(graph.functions):
            fn = graph.functions[func_id]
            if fn.name not in sinks or fn.class_name is not None:
                continue
            mod = model.modules[fn.module]
            if not mod.rel_path.startswith("src/repro"):
                continue
            taint = taint_of(func_id, frozenset())
            if taint is None:
                continue
            chain = " -> ".join(taint.chain)
            yield self.flag(
                mod,
                fn.node,
                f"trial sink {fn.name!r} can reach a nondeterministic "
                f"source: {taint.description} at {taint.rel_path}:"
                f"{taint.lineno} (call chain {chain}); seed it, sort it, "
                "or route it through repro.obs",
            )

    @staticmethod
    def _classify_source(site: CallSite, parents: dict[int, ast.AST]) -> str | None:
        r = site.resolved
        unseeded = not site.node.args and not site.node.keywords
        if r is not None:
            if r in _WALL_CLOCK:
                return f"wall-clock read {r}()"
            if r in _ENTROPY:
                return f"OS entropy {r}()"
            if r.startswith("random.") and r.count(".") == 1:
                return f"stdlib global-state RNG {r}()"
            if r.split(".")[-1] == "default_rng" and unseeded:
                return "unseeded default_rng()"
            if r in _FS_ORDER and not _sorted_wrapped(site.node, parents):
                return f"filesystem-ordered {r}()"
        last = site.raw.rsplit(".", 1)[-1]
        if (
            "." in site.raw
            and last in _FS_ORDER_METHODS
            and not _sorted_wrapped(site.node, parents)
        ):
            return f"filesystem-ordered .{last}()"
        if r is None and last == "default_rng" and unseeded:
            return "unseeded default_rng()"
        return None
