"""Alias-aware contract passes: store/process discipline, layering, exports.

RL107/RL108 here share their codes with the per-file rules they
generalize: the per-file variants match call *syntax*, these match the
*resolved* callee, so ``from repro.topologies.table3 import
build_table3_topology as make; make(...)`` is caught even though no
pattern appears in the call text.  The engine de-duplicates findings that
both variants report at the same location.

RL109 enforces the architecture layering (``docs/ARCHITECTURE.md``): a
module may only import modules at its own layer or below, and the
module-top-level import graph must stay acyclic (function-level lazy
imports are the sanctioned cycle breaker and are exempt from the cycle
check, but not from the hard low-layer -> runtime ban).

RL110 checks the ``__all__`` export lists against actual cross-module use:
an export nobody imports or references is dead API surface.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import Violation, dotted_name, matches_any
from tools.lint.rules.contracts import _OS_PROCESS_FNS, STORE_CONSTRUCTOR_PATTERNS

from tools.lint.program.base import ProgramRule, register_program
from tools.lint.program.callgraph import CallGraph
from tools.lint.program.model import ModuleInfo, ProjectModel

__all__ = [
    "AliasedStoreDiscipline",
    "AliasedProcessDiscipline",
    "Layering",
    "DeadExport",
]


def _in_dirs(mod: ModuleInfo, dirs: tuple[str, ...]) -> bool:
    parts = mod.rel_path.split("/")
    return any(d in parts for d in dirs)


@register_program
class AliasedStoreDiscipline(ProgramRule):
    """RL107 on the call graph: resolved builder calls outside the store."""

    code = "RL107"
    name = "store-discipline"
    severity = "error"
    default_paths = (
        "src/repro/experiments",
        "src/repro/sim",
        "src/repro/cli.py",
    )
    description = (
        "alias-aware store discipline: calls that resolve to topology/"
        "router/bisection builders outside repro.store bypass the artifact "
        "cache no matter how they are spelled"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        constructors = tuple(self.option("constructors", STORE_CONSTRUCTOR_PATTERNS))
        for caller, sites in sorted(graph.calls.items()):
            for site in sites:
                if site.resolved is None:
                    continue
                mod_name, rest = model.split_module_prefix(site.resolved)
                if mod_name is None or not rest:
                    continue
                # Resolution through the store front door is the sanctioned path.
                if mod_name == "repro.store" or mod_name.startswith("repro.store."):
                    continue
                last = rest.rsplit(".", 1)[-1]
                if not (
                    matches_any(last, constructors)
                    or matches_any(site.resolved, constructors)
                ):
                    continue
                mod = self._caller_module(model, caller)
                if mod is None:
                    continue
                yield self.flag(
                    mod,
                    site.node,
                    f"call {site.raw!r} resolves to {site.resolved!r}, "
                    "bypassing the artifact store; resolve it through "
                    "repro.store so warm runs reuse the cached artifact",
                )

    @staticmethod
    def _caller_module(model: ProjectModel, caller: str) -> ModuleInfo | None:
        # caller is "<module path>.<qualname or <module>>"; peel suffixes
        # until a known module name remains.
        name = caller
        while name and name not in model.modules:
            if "." not in name:
                return None
            name = name.rsplit(".", 1)[0]
        return model.modules.get(name)


def _caller_module(model: ProjectModel, caller: str) -> ModuleInfo | None:
    return AliasedStoreDiscipline._caller_module(model, caller)


@register_program
class AliasedProcessDiscipline(ProgramRule):
    """RL108 on the call graph: resolved process calls outside the runtime."""

    code = "RL108"
    name = "process-discipline"
    severity = "error"
    default_paths = ("src/repro",)
    description = (
        "alias-aware process discipline: calls resolving to multiprocessing/"
        "subprocess/os.fork-family outside repro.runtime escape the "
        "supervised worker pool however they are aliased"
    )

    DEFAULT_EXEMPT_DIRS = ("runtime",)

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        exempt = tuple(self.option("exempt-dirs", self.DEFAULT_EXEMPT_DIRS))
        for caller, sites in sorted(graph.calls.items()):
            mod = _caller_module(model, caller)
            if mod is None or _in_dirs(mod, exempt):
                continue
            for site in sites:
                if site.resolved is None:
                    continue
                r = site.resolved
                offender = None
                if r.startswith("multiprocessing.") or r == "multiprocessing":
                    offender = r
                elif r.startswith("subprocess."):
                    offender = r
                elif r.startswith("os.") and r.split(".", 1)[1] in _OS_PROCESS_FNS:
                    offender = r
                if offender is not None:
                    yield self.flag(
                        mod,
                        site.node,
                        f"call {site.raw!r} resolves to {offender!r} outside "
                        "repro.runtime; processes spawned here escape the "
                        "supervisor's heartbeats, timeouts and journal",
                    )


#: Architecture layers, lowest first.  Rank lookup is by longest dotted
#: prefix, so leaf interface modules (``repro.store.registry``,
#: ``repro.topologies.base``) can sit below their parent package.
DEFAULT_LAYERS: tuple[tuple[str, ...], ...] = (
    ("repro.fields", "repro.obs"),
    ("repro.graphs",),
    ("repro.core", "repro.store.registry", "repro.topologies.base",
     "repro.routing.base"),
    ("repro.analysis",),
    ("repro.topologies", "repro.routing"),
    ("repro.layout", "repro.traffic", "repro.faults"),
    ("repro.sim", "repro.store", "repro.experiments.common"),
    ("repro.experiments",),
    ("repro.runtime",),
    ("repro.serve",),
    ("repro", "repro.cli", "repro.__main__"),
)

#: Layers that must never be imported (even lazily) from the low layers.
_HIGH_LAYER_PREFIXES = ("repro.experiments", "repro.cli", "repro.runtime")
_LOW_LAYER_PREFIXES = ("repro.core", "repro.graphs", "repro.topologies")


@register_program
class Layering(ProgramRule):
    """RL109: imports must point downward in the architecture stack."""

    code = "RL109"
    name = "layering"
    severity = "error"
    default_paths = ("src/repro",)
    description = (
        "architecture layering: a module may import only modules at its own "
        "layer or below; the top-level import graph must stay acyclic"
    )

    def _rank(self, name: str) -> int | None:
        best: tuple[int, int] | None = None  # (prefix length, rank)
        for rank, prefixes in enumerate(DEFAULT_LAYERS):
            for prefix in prefixes:
                if name == prefix or name.startswith(prefix + "."):
                    if best is None or len(prefix) > best[0]:
                        best = (len(prefix), rank)
        return None if best is None else best[1]

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for name in sorted(model.modules):
            mod = model.modules[name]
            if not mod.rel_path.startswith("src/repro"):
                continue
            src_rank = self._rank(name)
            if src_rank is None:
                continue
            for edge in mod.top_imports:
                target_dotted = (
                    edge.target
                    if edge.symbol in (None, "*")
                    else f"{edge.target}.{edge.symbol}"
                )
                target_mod, _ = model.split_module_prefix(target_dotted)
                if target_mod is None or target_mod == name:
                    continue
                dst_rank = self._rank(target_mod)
                if dst_rank is None or dst_rank <= src_rank:
                    continue
                yield self.flag(
                    mod,
                    None,
                    f"layer violation: {name} (layer {src_rank}) imports "
                    f"{target_mod} (layer {dst_rank}); dependencies must "
                    "point downward — move shared code below both, or use "
                    "a registry/callback inversion",
                    line=edge.lineno,
                    col=1,
                )
            # Hard ban: low layers must not touch the orchestration layers
            # even through function-level lazy imports.
            if name.startswith(_LOW_LAYER_PREFIXES):
                for edge in mod.deferred_imports:
                    target_mod, _ = model.split_module_prefix(edge.target)
                    if target_mod is not None and target_mod.startswith(
                        _HIGH_LAYER_PREFIXES
                    ):
                        yield self.flag(
                            mod,
                            None,
                            f"layer violation: {name} lazily imports "
                            f"{target_mod}; core/graphs/topologies must never "
                            "depend on experiments/cli/runtime",
                            line=edge.lineno,
                            col=1,
                        )
        for cycle in model.import_cycles():
            members = [m for m in cycle if m in model.modules]
            if not members:
                continue
            first = model.modules[members[0]]
            lineno = min(
                (e.lineno for e in first.top_imports), default=1
            )
            yield self.flag(
                first,
                None,
                "import cycle among modules: " + " -> ".join(cycle) +
                "; break it with a function-level lazy import or by "
                "extracting the shared interface downward",
                line=lineno,
                col=1,
            )


@register_program
class DeadExport(ProgramRule):
    """RL110: ``__all__`` entries nobody imports or references."""

    code = "RL110"
    name = "dead-export"
    severity = "warning"
    default_paths = ("src/repro",)
    description = (
        "__all__ exports that no other module imports, re-exports or "
        "references are dead API surface"
    )

    #: Packages whose exports serve external consumers, not this repo.
    DEFAULT_EXEMPT_MODULES = ("repro",)
    #: Trial-API names dispatched dynamically (importlib / getattr) by the
    #: runtime plan layer — those edges are invisible to the static graph.
    DEFAULT_EXEMPT_NAMES = (
        "run_trial", "plan_trials", "merge_trials", "format_figure",
        "format_table", "TRIAL_FIDELITY",
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        exempt = tuple(self.option("exempt-modules", self.DEFAULT_EXEMPT_MODULES))
        exempt_names = tuple(self.option("exempt-names", self.DEFAULT_EXEMPT_NAMES))
        check_packages = bool(self.option("check-packages", False))
        used: set[tuple[str, str]] = set()

        def mark_chain(dotted: str) -> None:
            cur = dotted
            for _ in range(16):
                mod_name, rest = model.split_module_prefix(cur)
                if mod_name is None or not rest:
                    return
                head = rest.split(".")[0]
                used.add((mod_name, head))
                mod = model.modules[mod_name]
                if head in mod.bindings:
                    tail = rest[len(head):]
                    nxt = mod.bindings[head] + tail
                    if nxt == cur:
                        return
                    cur = nxt
                    continue
                return

        for mod in model.modules.values():
            for edge in mod.top_imports + mod.deferred_imports:
                if edge.symbol == "*":
                    target = model.modules.get(edge.target)
                    if target is not None and target.exports:
                        for export_name, _ in target.exports:
                            mark_chain(f"{edge.target}.{export_name}")
                    continue
                if edge.symbol is not None:
                    mark_chain(f"{edge.target}.{edge.symbol}")
                else:
                    # `import a.b.c` marks nothing by itself; attribute
                    # references below pick up actual use.
                    pass
            # Every resolvable dotted reference anywhere in the module.
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                    chain = dotted_name(node)
                    if chain is None or "." not in chain:
                        continue
                    resolved = graph.resolve_chain(chain, mod)
                    if resolved is not None:
                        mark_chain(chain if mod.name != "" else resolved)
                        # Mark through the module's own bindings first, then
                        # the canonical target.
                        head = chain.split(".")[0]
                        if head in mod.bindings:
                            mark_chain(
                                mod.bindings[head] + chain[len(head):]
                            )
                        mark_chain(resolved)

        # Calls resolved through function-local imports/aliases (the
        # attribute walk above only sees module-level bindings).
        for sites in graph.calls.values():
            for site in sites:
                if site.resolved is not None:
                    mark_chain(site.resolved)

        for name in sorted(model.modules):
            mod = model.modules[name]
            if not mod.rel_path.startswith("src/repro"):
                continue
            if name in exempt:
                continue
            if mod.is_package and not check_packages:
                # Package __init__ re-export lists are the outward API
                # surface; external consumers are invisible to this scan.
                continue
            if not mod.exports:
                continue
            same_module_uses = self._same_module_uses(mod)
            for export_name, lineno in mod.exports:
                if (name, export_name) in used:
                    continue
                if export_name in exempt_names:
                    continue
                if export_name in same_module_uses:
                    continue
                yield self.flag(
                    mod,
                    None,
                    f"__all__ exports {export_name!r} but no module imports "
                    "or references it; drop the export or the symbol",
                    line=lineno,
                    col=1,
                )

    @staticmethod
    def _same_module_uses(mod: ModuleInfo) -> set[str]:
        """Names read (Load context) anywhere in the module itself."""
        uses: set[str] = set()
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                uses.add(node.id)
        return uses
