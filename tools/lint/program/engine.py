"""Whole-program engine: orchestration, suppression filtering, caching.

:func:`analyze_program` builds the project model and call graph over the
discovered files, runs every enabled program pass, filters findings
through the same suppression comments the per-file rules honor, and
returns them sorted by location.

Because model + call-graph construction reads every file, results are
cached under ``<root>/.repro-lint-cache/`` keyed by a content hash over
(engine version, per-file source digests, effective rule options,
select/ignore sets).  Any edit to any analyzed file, to the configuration,
or to the engine itself changes the key; stale entries are pruned.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Sequence

from tools.lint.config import LintConfig, path_in_scope
from tools.lint.core import Suppressions, Violation

from tools.lint.program.base import ProgramRule, all_program_rules
from tools.lint.program.callgraph import CallGraph
from tools.lint.program.model import build_project_model

__all__ = ["ENGINE_VERSION", "analyze_program", "build_program_rules"]

#: Bump when pass semantics change: invalidates every cache entry.
ENGINE_VERSION = 1

#: How many cache entries to keep (newest first).
_CACHE_KEEP = 8


def build_program_rules(
    config: LintConfig, select: set[str], ignore: set[str]
) -> list[ProgramRule]:
    """Instantiate enabled program passes, mirroring the per-file builder."""
    rules: list[ProgramRule] = []
    for cls in all_program_rules():
        options = config.options_for(cls.code, cls.name)
        if select and cls.code not in select and cls.name not in select:
            continue
        if cls.code in ignore or cls.name in ignore:
            continue
        if not options.get("enabled", True):
            continue
        rule = cls(options)
        if "severity" in options:
            rule.severity = options["severity"]
        rules.append(rule)
    return rules


def _cache_key(
    files: Sequence[Path],
    config: LintConfig,
    rules: Sequence[ProgramRule],
    select: set[str],
    ignore: set[str],
) -> str:
    digests = []
    for f in sorted(files):
        try:
            digest = hashlib.sha256(f.read_bytes()).hexdigest()
        except OSError:
            digest = "unreadable"
        digests.append([f.as_posix(), digest])
    payload = {
        "engine": ENGINE_VERSION,
        "files": digests,
        "options": {r.code: r.options for r in rules},
        "severities": {r.code: r.severity for r in rules},
        "select": sorted(select),
        "ignore": sorted(ignore),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _cache_load(cache_file: Path) -> list[Violation] | None:
    try:
        data = json.loads(cache_file.read_text(encoding="utf-8"))
        return [Violation(**entry) for entry in data["violations"]]
    except (OSError, ValueError, KeyError, TypeError):
        return None


def _cache_store(cache_dir: Path, key: str, violations: list[Violation]) -> None:
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "engine": ENGINE_VERSION,
            "violations": [vars(v) for v in violations],
        }
        tmp = cache_dir / f".tmp-{key}"
        tmp.write_text(json.dumps(payload, indent=0), encoding="utf-8")
        tmp.replace(cache_dir / f"program-{key}.json")
        entries = sorted(
            cache_dir.glob("program-*.json"),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        )
        for stale in entries[_CACHE_KEEP:]:
            stale.unlink(missing_ok=True)
    except OSError:
        pass  # caching is best-effort; analysis results already exist


def analyze_program(
    files: Sequence[Path],
    root: Path,
    config: LintConfig,
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    use_cache: bool = True,
) -> list[Violation]:
    """Run every enabled program pass over *files*; returns sorted findings."""
    select = select or set()
    ignore = ignore or set()
    rules = build_program_rules(config, select, ignore)
    if not rules:
        return []
    cache_dir = root / ".repro-lint-cache"
    key = _cache_key(files, config, rules, select, ignore)
    if use_cache:
        cached = _cache_load(cache_dir / f"program-{key}.json")
        if cached is not None:
            return cached

    model = build_project_model(root, list(files))
    graph = CallGraph(model)
    suppressions: dict[str, Suppressions] = {}

    def suppressed(v: Violation) -> bool:
        if v.path not in suppressions:
            mod = next(
                (m for m in model.modules.values() if m.path == v.path), None
            )
            suppressions[v.path] = Suppressions(
                mod.source if mod else "", mod.tree if mod else None
            )
        return suppressions[v.path].is_suppressed(v)

    found: list[Violation] = []
    for rule in rules:
        prefixes = rule.options.get("paths")
        scope = tuple(prefixes) if prefixes is not None else rule.default_paths
        for violation in rule.check(model, graph):
            mod = model.module_for_path(_relative(Path(violation.path), root))
            rel = mod.rel_path if mod else _relative(Path(violation.path), root)
            if not path_in_scope(rel, scope):
                continue
            if suppressed(violation):
                continue
            found.append(violation.with_severity(rule.severity))

    seen: set[tuple[str, int, int, str]] = set()
    unique: list[Violation] = []
    for v in sorted(found, key=lambda v: (v.path, v.line, v.col, v.rule)):
        ident = (v.path, v.line, v.col, v.rule)
        if ident in seen:
            continue
        seen.add(ident)
        unique.append(v)
    if use_cache:
        _cache_store(cache_dir, key, unique)
    return unique


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()
