"""Whole-program analysis layer for repro-lint.

Where the per-file rules in :mod:`tools.lint.rules` see one module at a
time, this package builds a *project model* — module and symbol tables, an
import graph with cycle detection, and an approximate call graph with alias
resolution — and runs cross-module passes over it:

- alias-aware contract enforcement (RL107/RL108 on the call graph, RL109
  layering, RL110 dead exports),
- interprocedural determinism taint (RL210),
- concurrency safety for the spawn-based worker pool (RL310-RL312).

Entry point: :func:`tools.lint.program.engine.analyze_program`.
"""

from __future__ import annotations

from tools.lint.program.base import (
    ProgramRule,
    all_program_rules,
    get_program_rule,
    register_program,
)
from tools.lint.program.callgraph import CallGraph
from tools.lint.program.engine import analyze_program
from tools.lint.program.model import ModuleInfo, ProjectModel, build_project_model

__all__ = [
    "ProgramRule",
    "all_program_rules",
    "get_program_rule",
    "register_program",
    "CallGraph",
    "analyze_program",
    "ModuleInfo",
    "ProjectModel",
    "build_project_model",
]
