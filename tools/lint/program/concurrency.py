"""Concurrency-safety passes for the spawn-based worker pool (RL31x).

The runtime (PR 5) executes trials in ``spawn`` workers: each worker is a
fresh interpreter, module globals are re-initialized per process, and
anything crossing the process boundary must pickle.  Three passes police
that architecture:

- RL310 ``worker-shared-state``: a function reachable from a worker entry
  point mutates module-level mutable state.  Under ``spawn`` each worker
  mutates its *own* copy — the write is silently lost to the parent and to
  sibling workers, and results depend on which process ran what.
- RL311 ``fork-unsafe``: process primitives that default to (or request)
  the ``fork`` start method, which clones lock and RNG state mid-flight.
- RL312 ``spawn-unsafe-capture``: worker targets / pool submissions that
  capture unpicklable callables (lambdas, nested functions) and therefore
  cannot cross a spawn boundary at all.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import Violation

from tools.lint.program.base import ProgramRule, register_program
from tools.lint.program.callgraph import CallGraph, _local_shadows
from tools.lint.program.model import ProjectModel

__all__ = ["WorkerSharedState", "ForkUnsafe", "SpawnUnsafeCapture"]

#: Fully-qualified functions that enter worker processes.
_ENTRYPOINT_IDS = ("repro.runtime.pool.worker_main", "repro.runtime.plan.execute_trial")
#: Function names that are worker entry points wherever they live (the
#: plan layer dispatches to per-experiment run_trial via importlib, so the
#: call edge is invisible to the static graph).
_ENTRYPOINT_NAMES = ("run_trial",)

#: Mutating method names on lists/dicts/sets.
_MUTATORS = frozenset(
    {"append", "add", "update", "extend", "insert", "setdefault",
     "pop", "popitem", "remove", "discard", "clear", "appendleft"}
)

_POOL_SUBMIT = frozenset(
    {"apply", "apply_async", "map", "map_async", "starmap", "starmap_async",
     "imap", "imap_unordered", "submit"}
)


def worker_reachable(model: ProjectModel, graph: CallGraph,
                     extra_entrypoints: tuple[str, ...] = ()) -> set[str]:
    """Function ids reachable from the worker entry points."""
    roots: list[str] = []
    for func_id, fn in graph.functions.items():
        if func_id in _ENTRYPOINT_IDS or func_id in extra_entrypoints:
            roots.append(func_id)
        elif fn.name in _ENTRYPOINT_NAMES and fn.class_name is None:
            roots.append(func_id)
    seen: set[str] = set()
    stack = list(roots)
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        for site in graph.project_callees(cur):
            if site.target is not None and site.target.func_id not in seen:
                stack.append(site.target.func_id)
    return seen


def _declared_globals(fn_node: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return names


@register_program
class WorkerSharedState(ProgramRule):
    """RL310: worker-reachable code mutating module-level state."""

    code = "RL310"
    name = "worker-shared-state"
    severity = "error"
    default_paths = ("src/repro",)
    description = (
        "functions reachable from worker entry points must not mutate "
        "module-level mutable state; spawn workers each mutate a private "
        "copy and the write never reaches the parent or siblings"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        extra = tuple(self.option("entrypoints", ()))
        reachable = worker_reachable(model, graph, extra)
        for func_id in sorted(reachable):
            fn = graph.functions.get(func_id)
            if fn is None:
                continue
            mod = model.modules[fn.module]
            if not mod.rel_path.startswith("src/repro"):
                continue
            declared = _declared_globals(fn.node)
            shadows = _local_shadows(fn.node) - declared
            for node in ast.walk(fn.node):
                hit = self._mutation(node, mod.mutable_globals, shadows, declared,
                                     mod.toplevel_names)
                if hit is None:
                    continue
                name, verb = hit
                origin = mod.mutable_globals.get(name)
                defined = f" (defined at line {origin[0]})" if origin else ""
                yield self.flag(
                    mod,
                    node,
                    f"worker-reachable function {fn.qualname!r} {verb} "
                    f"module-level state {name!r}{defined}; under spawn each "
                    "worker mutates a private copy — pass state through "
                    "task payloads or the artifact store instead",
                )

    @staticmethod
    def _mutation(
        node: ast.AST,
        mutable_globals: dict[str, tuple[int, str]],
        shadows: set[str],
        declared: set[str],
        toplevel: set[str],
    ) -> tuple[str, str] | None:
        def is_global(name: str) -> bool:
            if name in declared:
                return name in toplevel or name in mutable_globals
            return name in mutable_globals and name not in shadows

        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            recv = node.func.value
            if (
                isinstance(recv, ast.Name)
                and node.func.attr in _MUTATORS
                and is_global(recv.id)
            ):
                return recv.id, f"calls .{node.func.attr}() on"
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                if isinstance(t, ast.Subscript) and isinstance(t.value, ast.Name):
                    if is_global(t.value.id):
                        return t.value.id, "assigns into"
                if isinstance(t, ast.Name) and t.id in declared and (
                    t.id in toplevel or t.id in mutable_globals
                ):
                    return t.id, "rebinds (via `global`)"
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                if isinstance(t, ast.Subscript) and isinstance(t.value, ast.Name):
                    if is_global(t.value.id):
                        return t.value.id, "deletes from"
        return None


@register_program
class ForkUnsafe(ProgramRule):
    """RL311: process primitives that use (or allow) the fork start method."""

    code = "RL311"
    name = "fork-unsafe"
    severity = "error"
    default_paths = ("src/repro",)
    description = (
        "process creation must request the spawn start method explicitly; "
        "fork clones locks, RNG streams and file descriptors mid-flight"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for caller in sorted(graph.calls):
            mod = self._module_of(model, caller)
            if mod is None or not mod.rel_path.startswith("src/repro"):
                continue
            for site in graph.calls[caller]:
                r = site.resolved
                if r is None:
                    continue
                msg = None
                if r == "multiprocessing.get_context":
                    method = self._start_method(site.node)
                    if method is None:
                        msg = (
                            "get_context() without a method defaults to fork "
                            'on Linux; request get_context("spawn")'
                        )
                    elif method != "spawn":
                        msg = (
                            f"get_context({method!r}) clones locks and RNG "
                            'state; the runtime contract is get_context("spawn")'
                        )
                elif r in ("multiprocessing.Pool", "multiprocessing.Process"):
                    msg = (
                        f"{r}() uses the default start method (fork on "
                        'Linux); build it from get_context("spawn")'
                    )
                elif r in ("os.fork", "os.forkpty"):
                    msg = f"{r}() is fork-unsafe by definition"
                elif r == "concurrent.futures.ProcessPoolExecutor":
                    if not any(kw.arg == "mp_context" for kw in site.node.keywords):
                        msg = (
                            "ProcessPoolExecutor without mp_context forks on "
                            "Linux; pass mp_context=get_context(\"spawn\")"
                        )
                if msg is not None:
                    yield self.flag(mod, site.node, msg)

    @staticmethod
    def _module_of(model: ProjectModel, caller: str):
        name = caller
        while name and name not in model.modules:
            if "." not in name:
                return None
            name = name.rsplit(".", 1)[0]
        return model.modules.get(name)

    @staticmethod
    def _start_method(node: ast.Call) -> str | None:
        for kw in node.keywords:
            if kw.arg == "method" and isinstance(kw.value, ast.Constant):
                return str(kw.value.value)
        if node.args and isinstance(node.args[0], ast.Constant):
            return str(node.args[0].value)
        return None


@register_program
class SpawnUnsafeCapture(ProgramRule):
    """RL312: worker targets that cannot pickle across a spawn boundary."""

    code = "RL312"
    name = "spawn-unsafe-capture"
    severity = "error"
    default_paths = ("src/repro",)
    description = (
        "Process targets and pool submissions must be module-level "
        "callables; lambdas and nested functions cannot pickle into a "
        "spawn worker"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for func_id in sorted(graph.functions):
            fn = graph.functions[func_id]
            mod = model.modules[fn.module]
            if not mod.rel_path.startswith("src/repro"):
                continue
            local_lambdas = self._local_lambdas(fn.node)
            nested_defs = {
                n.name
                for n in ast.walk(fn.node)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and n is not fn.node
            }
            for site in graph.callees(func_id):
                last = site.raw.rsplit(".", 1)[-1]
                candidates: list[ast.expr] = []
                if last == "Process" or (
                    site.resolved is not None
                    and site.resolved.endswith(".Process")
                ):
                    for kw in site.node.keywords:
                        if kw.arg == "target":
                            candidates.append(kw.value)
                elif last in _POOL_SUBMIT and "." in site.raw and site.node.args:
                    candidates.append(site.node.args[0])
                for value in candidates:
                    reason = None
                    if isinstance(value, ast.Lambda):
                        reason = "a lambda"
                    elif isinstance(value, ast.Name):
                        if value.id in local_lambdas:
                            reason = f"local lambda {value.id!r}"
                        elif value.id in nested_defs:
                            reason = f"nested function {value.id!r}"
                    if reason is not None:
                        yield self.flag(
                            mod,
                            value,
                            f"worker target is {reason}, which cannot pickle "
                            "into a spawn worker; use a module-level function",
                        )

    @staticmethod
    def _local_lambdas(fn_node: ast.AST) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(fn_node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Lambda)
            ):
                names.add(node.targets[0].id)
        return names
